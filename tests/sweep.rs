//! The sweep engine's two contracts, end to end:
//!
//! 1. **Determinism** — a sweep over N scenarios is bit-identical to N
//!    independent `run` calls on the resolved configs (same derived
//!    seeds), shared substrate or not, at any thread count.
//! 2. **Resume** — a checkpointed sweep stopped partway picks up
//!    exactly where it left off: completed runs are loaded from the
//!    manifest (not re-executed) and the final report matches an
//!    uninterrupted sweep, even with a corrupted manifest line in the
//!    way.

use rootcast::{
    output_digest, run, run_sweep, run_sweep_with, ConfigPatch, Letter, ScenarioConfig, SeedMode,
    SimTime, SiteOverride, SiteTuning, SweepAxis, SweepOptions, SweepPlan, SweepRun,
};
use std::path::PathBuf;

fn base() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small();
    // Short horizon: these tests exercise sweep plumbing, not the
    // event-window analysis (tier-1 covers that on the full small run).
    cfg.horizon = SimTime::from_hours(2);
    cfg.pipeline.horizon = cfg.horizon;
    cfg
}

fn grid() -> SweepPlan {
    SweepPlan::grid(
        "itest",
        base(),
        &[
            SweepAxis::new(
                "legit",
                vec![
                    ("low", ConfigPatch::none().with_legit_total_qps(200_000.0)),
                    ("base", ConfigPatch::none()),
                ],
            ),
            SweepAxis::new(
                "klhr",
                vec![
                    ("base", ConfigPatch::none()),
                    (
                        "thin",
                        ConfigPatch::none().with_site_override(SiteOverride::new(
                            Letter::K,
                            "LHR",
                            SiteTuning::none().with_capacity(20_000.0),
                        )),
                    ),
                ],
            ),
        ],
    )
}

fn manifest_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rootcast-sweep-{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn sweep_is_bit_identical_to_independent_runs() {
    let plan = grid();
    let report = run_sweep(&plan).expect("sweep runs");
    assert_eq!(report.records.len(), 4);
    // Shared seed mode: one substrate serves all four variants.
    assert_eq!(report.n_substrates, 1);
    for (i, rec) in report.records.iter().enumerate() {
        let cfg = plan.resolve(i);
        assert_eq!(rec.seed, cfg.seed, "record must carry the resolved seed");
        let standalone = run(&cfg).expect("standalone run");
        assert_eq!(
            rec.output_digest,
            output_digest(&standalone),
            "sweep run {:?} diverged from a standalone run of its config",
            rec.label
        );
    }
}

#[test]
fn per_run_seeds_replicate_like_independent_runs() {
    // PerRun mode re-derives the whole world per label, so each run is
    // its own shard. The small() topology is tuned to the canonical
    // seed — deployment wants every paper city hosted — so the
    // replication base enlarges it enough that arbitrary derived seeds
    // hold all sites.
    let mut cfg = base();
    cfg.topology.n_tier2 = 60;
    cfg.topology.n_stub = 1200;
    let plan = SweepPlan::explicit(
        "replicate",
        cfg,
        vec![
            SweepRun::new("a", ConfigPatch::none()),
            SweepRun::new("b", ConfigPatch::none()),
        ],
    )
    .with_seed_mode(SeedMode::PerRun);
    let report = run_sweep(&plan).expect("sweep runs");
    assert_eq!(report.n_substrates, 2, "one shard per derived seed");
    for (i, rec) in report.records.iter().enumerate() {
        let cfg = plan.resolve(i);
        assert_eq!(rec.seed, plan.derived_seed(&plan.runs[i].label));
        let standalone = run(&cfg).expect("standalone run");
        assert_eq!(
            rec.output_digest,
            output_digest(&standalone),
            "replicate run {:?} diverged from a standalone run",
            rec.label
        );
    }
}

#[test]
fn shared_substrate_matches_naive_rebuild() {
    let plan = grid();
    let shared = run_sweep(&plan).expect("shared sweep");
    // Shared seed mode: one substrate serves all four variants.
    assert_eq!(shared.n_substrates, 1);
    let naive = run_sweep_with(
        &plan,
        &SweepOptions {
            no_substrate_reuse: true,
            ..SweepOptions::default()
        },
    )
    .expect("naive sweep");
    for (a, b) in shared.records.iter().zip(&naive.records) {
        assert_eq!(a.label, b.label);
        assert_eq!(
            a.output_digest, b.output_digest,
            "substrate sharing changed the output of {:?}",
            a.label
        );
    }
}

#[test]
fn checkpointed_sweep_resumes_without_rerunning() {
    let plan = grid();
    let path = manifest_path("resume");
    let full = run_sweep(&plan).expect("reference sweep");

    // "Kill" the sweep after two runs: cooperative stop, deterministic
    // regardless of thread timing.
    let partial = run_sweep_with(
        &plan,
        &SweepOptions {
            checkpoint: Some(path.clone()),
            stop_after: Some(2),
            ..SweepOptions::default()
        },
    )
    .expect("partial sweep");
    assert!(partial.is_partial());
    assert_eq!(partial.records.len(), 2);
    assert_eq!(partial.pending.len(), 2);
    assert_eq!(partial.n_resumed, 0);

    // A torn write from the kill must not poison the manifest.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("manifest exists");
        writeln!(f, "{{\"label\":\"torn").expect("append");
    }

    // Resume: the two completed runs load from the manifest, the other
    // two execute, and the result matches the uninterrupted sweep.
    let resumed = run_sweep_with(
        &plan,
        &SweepOptions {
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        },
    )
    .expect("resumed sweep");
    assert!(!resumed.is_partial());
    assert_eq!(resumed.n_resumed, 2, "completed runs must not re-run");
    for (a, b) in resumed.records.iter().zip(&full.records) {
        assert_eq!(a.label, b.label);
        assert_eq!(
            a.output_digest, b.output_digest,
            "resume changed the output of {:?}",
            a.label
        );
        assert_eq!(a.headline, b.headline);
        assert_eq!(a.counters, b.counters, "rollup inputs must survive resume");
    }
    assert_eq!(
        resumed.rollup.counters, full.rollup.counters,
        "sweep-level rollup must be resume-stable"
    );

    // A third pass finds everything done.
    let done = run_sweep_with(
        &plan,
        &SweepOptions {
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        },
    )
    .expect("no-op sweep");
    assert_eq!(done.n_resumed, 4);
    assert_eq!(done.n_substrates, 0, "nothing pending, nothing built");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn changed_config_invalidates_only_its_manifest_entry() {
    let path = manifest_path("invalidate");
    let plan = SweepPlan::explicit(
        "inval",
        base(),
        vec![
            SweepRun::new("a", ConfigPatch::none()),
            SweepRun::new("b", ConfigPatch::none().with_legit_total_qps(150_000.0)),
        ],
    );
    let opts = SweepOptions {
        checkpoint: Some(path.clone()),
        ..SweepOptions::default()
    };
    let first = run_sweep_with(&plan, &opts).expect("first sweep");
    assert_eq!(first.n_resumed, 0);

    // Change run b's patch: its config hash moves, a's stays.
    let plan2 = SweepPlan::explicit(
        "inval",
        base(),
        vec![
            SweepRun::new("a", ConfigPatch::none()),
            SweepRun::new("b", ConfigPatch::none().with_legit_total_qps(175_000.0)),
        ],
    );
    let second = run_sweep_with(&plan2, &opts).expect("second sweep");
    assert_eq!(second.n_resumed, 1, "only the unchanged run resumes");
    assert_eq!(
        first.records[0].output_digest,
        second.records[0].output_digest
    );
    let _ = std::fs::remove_file(&path);
}
