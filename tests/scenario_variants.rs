//! Scenario-level sanity: vary one knob, check the outcome moves the
//! right way. These are the "physics tests" of the simulation — if any
//! fails, figure shapes can no longer be trusted.

use rootcast::analysis::reachability;
use rootcast::{sim, Letter, ScenarioConfig, SimDuration, SimTime};
use rootcast_attack::{AttackSchedule, AttackWindow};

fn base_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small();
    cfg.horizon = SimTime::from_hours(2);
    cfg.pipeline.horizon = cfg.horizon;
    cfg
}

fn with_rate(rate_qps: f64) -> ScenarioConfig {
    let mut cfg = base_cfg();
    cfg.attack = AttackSchedule::new(vec![AttackWindow {
        start: SimTime::from_mins(40),
        duration: SimDuration::from_mins(40),
        qname: "www.336901.com".into(),
        targets: AttackSchedule::nov2015_targets(),
        rate_qps,
    }]);
    cfg
}

#[test]
fn no_attack_means_no_damage() {
    let mut cfg = base_cfg();
    cfg.attack = AttackSchedule::quiet();
    let out = sim::run(&cfg).expect("valid scenario");
    let fig = reachability::figure3(&out);
    for row in &fig.rows {
        // With no event windows, survival is NaN ("no event observed");
        // damage is instead checked over the whole series: the worst
        // bin must stay near the baseline.
        assert!(
            row.survival.is_nan(),
            "{}: survival should be undefined without events, got {}",
            row.letter,
            row.survival
        );
        let worst = row.series.min();
        assert!(
            worst > row.baseline * 0.85,
            "{} dipped to {worst} (baseline {}) with no attack",
            row.letter,
            row.baseline
        );
    }
}

#[test]
fn bigger_attack_hurts_more() {
    let small = sim::run(&with_rate(500_000.0)).expect("valid scenario");
    let large = sim::run(&with_rate(4_000_000.0)).expect("valid scenario");
    let surv = |out: &rootcast::SimOutput, l: Letter| {
        reachability::figure3(out)
            .rows
            .iter()
            .find(|r| r.letter == l)
            .unwrap()
            .survival
    };
    // B (the single-site letter) degrades monotonically with rate.
    let b_small = surv(&small, Letter::B);
    let b_large = surv(&large, Letter::B);
    assert!(
        b_large < b_small,
        "B survival {b_large} under 4 Mq/s vs {b_small} under 0.5 Mq/s"
    );
    // The whole system (mean survival of attacked letters) degrades too.
    let mean = |out: &rootcast::SimOutput| {
        let fig = reachability::figure3(out);
        let vals: Vec<f64> = fig
            .rows
            .iter()
            .filter(|r| !matches!(r.letter, Letter::D | Letter::L | Letter::M))
            .map(|r| r.survival)
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    assert!(mean(&large) < mean(&small));
}

#[test]
fn attack_below_all_capacities_is_invisible() {
    // 50 kq/s spread over catchments is far below every site's capacity
    // (§2.2 case 1: A0 + A1 < s1 for everyone).
    let out = sim::run(&with_rate(50_000.0)).expect("valid scenario");
    let fig = reachability::figure3(&out);
    for row in &fig.rows {
        assert!(
            row.survival > 0.9,
            "{} suffered ({}) under a trivial attack",
            row.letter,
            row.survival
        );
    }
}

#[test]
fn different_seeds_same_shape() {
    // Structural conclusions must not depend on the seed: B worst-ish,
    // unattacked letters fine.
    for seed in [1u64, 77, 4242] {
        let mut cfg = with_rate(3_000_000.0);
        cfg.seed = seed;
        let out = sim::run(&cfg).expect("valid scenario");
        let fig = reachability::figure3(&out);
        let b = fig.rows.iter().find(|r| r.letter == Letter::B).unwrap();
        let l = fig.rows.iter().find(|r| r.letter == Letter::L).unwrap();
        assert!(b.survival < 0.6, "seed {seed}: B survived {}", b.survival);
        assert!(l.survival > 0.9, "seed {seed}: L dipped to {}", l.survival);
        assert!(b.survival < l.survival, "seed {seed}: ordering broke");
    }
}

#[test]
fn maintenance_noise_off_means_quiet_baseline() {
    let mut cfg = base_cfg();
    cfg.attack = AttackSchedule::quiet();
    cfg.maintenance_mean = None;
    let out = sim::run(&cfg).expect("valid scenario");
    // Without maintenance or attack, collectors log nothing.
    let total_updates: usize = out.collectors.values().map(|c| c.total_messages()).sum();
    assert_eq!(total_updates, 0, "spurious route churn");
    // And flips are essentially zero.
    let total_flips: f64 = out
        .letters
        .iter()
        .map(|&l| out.pipeline.letter(l).flips.values().iter().sum::<f64>())
        .sum();
    assert!(
        total_flips < 10.0,
        "flips {total_flips} in a dead-quiet run"
    );
}

#[test]
fn probe_interval_change_preserves_conclusions() {
    // Halving probing frequency must not change who suffers.
    let mut cfg = with_rate(3_000_000.0);
    cfg.probe_interval = SimDuration::from_mins(8);
    cfg.pipeline.probe_interval = SimDuration::from_mins(8);
    let out = sim::run(&cfg).expect("valid scenario");
    let fig = reachability::figure3(&out);
    let b = fig.rows.iter().find(|r| r.letter == Letter::B).unwrap();
    assert!(
        b.survival < 0.6,
        "B survived {} at 8-min probing",
        b.survival
    );
}
