//! Cross-crate integration below the scenario layer: topology → BGP →
//! anycast → atlas, wired by hand. These tests exercise the public APIs
//! the way a downstream user building a *different* study would.

use rand::SeedableRng;
use rootcast_anycast::{AnycastService, FacilityTable, SiteSpec, StressPolicy};
use rootcast_atlas::{
    clean_fleet, clean_outcome, execute_probe, ChaosTarget, CleanObs, FleetParams,
    MeasurementPipeline, PipelineConfig, TargetView, VpFleet, VpId,
};
use rootcast_attack::{Botnet, BotnetParams};
use rootcast_bgp::RouteCollector;
use rootcast_dns::{Letter, RootZone, ServerIdentity};
use rootcast_netsim::{SimDuration, SimRng, SimTime};
use rootcast_topology::{gen, AsId, Tier, TopologyParams};

fn topology() -> rootcast_topology::AsGraph {
    gen::generate(
        &TopologyParams {
            n_tier1: 4,
            n_tier2: 20,
            n_stub: 200,
            ..TopologyParams::default()
        },
        &SimRng::new(99),
    )
}

struct Adapter<'a>(&'a AnycastService);

impl ChaosTarget for Adapter<'_> {
    fn letter(&self) -> Letter {
        self.0.letter.expect("letter set")
    }
    fn view(&self, asn: AsId, client_hash: u64) -> Option<TargetView> {
        let pv = self.0.probe_view(asn, client_hash)?;
        Some(TargetView::new(
            self.0.site(pv.site).spec.code.clone(),
            pv.server,
            pv.rtt,
            pv.drop_prob,
        ))
    }
}

#[test]
fn manual_wiring_topology_to_pipeline() {
    let graph = topology();
    let rng = SimRng::new(99);
    // A two-site service.
    let host = |code: &str| rootcast::deployment::host_in_city(&graph, code, 5);
    let svc = AnycastService::new(
        "test",
        Some(Letter::K),
        &graph,
        vec![
            SiteSpec::global("AMS", host("AMS"), 100_000.0),
            SiteSpec::global("NRT", host("NRT"), 100_000.0),
        ],
    );
    // A fleet probing it through the real probe/clean path.
    let fleet = VpFleet::generate(&graph, &FleetParams::tiny(150), &rng);
    let mut cal = Vec::new();
    let mut prng = rng.stream("probe-test");
    for vp in fleet.iter() {
        cal.push(execute_probe(vp, &Adapter(&svc), SimTime::ZERO, &mut prng));
    }
    let report = clean_fleet(&fleet, &cal);
    assert!(report.kept_count() > 100);

    // Pipe everything through the measurement pipeline.
    let cfg = PipelineConfig {
        bin: SimDuration::from_mins(10),
        horizon: SimTime::from_hours(1),
        rtt_subsample: 1,
        watched_sites: vec![],
        raster_letters: vec![],
        probe_interval: SimDuration::from_mins(4),
    };
    let mut pipe = MeasurementPipeline::new(cfg, fleet.len());
    pipe.register_letter(
        Letter::K,
        svc.sites().iter().map(|s| s.spec.code.clone()).collect(),
    );
    let excluded = report.excluded_set();
    let mut t = SimTime::ZERO;
    for _ in 0..12 {
        for vp in fleet.iter() {
            if excluded.contains(&vp.id) {
                continue;
            }
            let m = execute_probe(vp, &Adapter(&svc), t, &mut prng);
            pipe.record(vp.id, Letter::K, t, &clean_outcome(&m))
                .expect("K is registered");
        }
        t += SimDuration::from_mins(5);
    }
    pipe.finalize();
    let data = pipe.letter(Letter::K);
    let answered: f64 = data.success.values().iter().sum();
    assert!(answered > 0.0, "nothing measured");
    // Both sites observed.
    assert!(data.site_counts.iter().all(|s| s.max() > 0.0));
}

#[test]
fn withdrawal_is_visible_to_collectors_and_probes() {
    let graph = topology();
    let host = |code: &str| rootcast::deployment::host_in_city(&graph, code, 6);
    let mut svc = AnycastService::new(
        "test",
        Some(Letter::E),
        &graph,
        vec![
            SiteSpec::global("FRA", host("FRA"), 50_000.0)
                .with_policy(StressPolicy::withdraw_default()),
            SiteSpec::global("IAD", host("IAD"), 500_000.0),
        ],
    );
    let peers = graph.by_tier(Tier::Stub)[..40].to_vec();
    let mut collector = RouteCollector::new(peers);
    collector.prime(svc.rib());

    // Aim a botnet entirely at FRA's catchment by overloading globally.
    let botnet = Botnet::generate(&graph, BotnetParams::default(), &SimRng::new(3));
    let facilities = FacilityTable::new();
    let mut t = SimTime::ZERO;
    let mut withdrew = false;
    for _ in 0..15 {
        t += SimDuration::from_mins(1);
        let offered = svc.offered_per_site(botnet.weights(), 1_000_000.0);
        svc.advance_queues(t, &offered, &facilities);
        let changes = svc.apply_policies(t, &graph);
        if !changes.withdrew.is_empty() {
            withdrew = true;
            let changed = collector.observe(t, svc.rib());
            assert!(changed > 0, "collector blind to withdrawal");
            break;
        }
    }
    assert!(withdrew, "FRA never withdrew under 1 Mq/s");
    // After withdrawal every AS lands on IAD.
    let sizes = svc.rib().catchment_sizes(2);
    assert_eq!(sizes[0], 0);
    assert_eq!(sizes[1], graph.len());
}

#[test]
fn chaos_identity_survives_the_full_wire_path() {
    // Format → answer → encode → decode → parse, for every letter.
    let zone_q = rootcast_dns::Message::query(
        7,
        rootcast_dns::Name::parse("hostname.bind").unwrap(),
        rootcast_dns::RrType::Txt,
        rootcast_dns::RrClass::Chaos,
    );
    for letter in Letter::ALL {
        let id = ServerIdentity::new(letter, "AMS", 3);
        let resp = RootZone::answer_chaos(&zone_q, &id);
        let wire = resp.encode();
        let decoded = rootcast_dns::Message::decode(&wire).expect("decodes");
        let parsed = rootcast_dns::parse_chaos_response(letter, &decoded).expect("parses");
        assert_eq!(parsed, id);
    }
}

#[test]
fn pipeline_and_probe_agree_on_sites() {
    // The code a probe reports must be a site the service owns.
    let graph = topology();
    let host = |code: &str| rootcast::deployment::host_in_city(&graph, code, 7);
    let svc = AnycastService::new(
        "x",
        Some(Letter::C),
        &graph,
        vec![
            SiteSpec::global("LHR", host("LHR"), 100_000.0),
            SiteSpec::global("GRU", host("GRU"), 100_000.0),
        ],
    );
    let fleet = VpFleet::generate(&graph, &FleetParams::tiny(80), &SimRng::new(4));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    for vp in fleet.iter().filter(|v| !v.hijacked) {
        let m = execute_probe(vp, &Adapter(&svc), SimTime::ZERO, &mut rng);
        if let CleanObs::Site(id, _) = clean_outcome(&m) {
            assert!(
                svc.sites().iter().any(|s| s.spec.code == id.site),
                "probe reported unknown site {}",
                id.site
            );
            assert_eq!(id.letter, Letter::C);
        }
    }
}

#[test]
fn vpid_indexing_is_consistent() {
    let graph = topology();
    let fleet = VpFleet::generate(&graph, &FleetParams::tiny(50), &SimRng::new(5));
    for (i, vp) in fleet.iter().enumerate() {
        assert_eq!(vp.id, VpId(i as u32));
        assert_eq!(fleet.vp(vp.id).asn, vp.asn);
    }
}
