//! Integration test package; see the [[test]] targets.
