//! Determinism regression: the engine's outputs are a pure function of
//! the scenario seed, at any rayon thread count.
//!
//! The per-letter fan-out in `FluidTraffic` and `ProbeWheel` merges
//! results in letter order and draws from per-(letter, minute) RNG
//! streams, so the schedule of thread interleavings cannot reach any
//! simulation state. These tests pin that property end to end: two
//! default-pool runs and one forced single-thread run of
//! `ScenarioConfig::small()` must agree bit for bit.

use rootcast::{
    run, run_with_substrate, FaultKind, FaultPlan, Letter, ScenarioConfig, SimDuration, SimOutput,
    SimTime, Substrate,
};

/// A bit-exact digest of everything the analysis layer consumes.
/// Floats are compared through `to_bits`, so "close" is not enough.
#[derive(Debug, PartialEq, Eq)]
struct Summary {
    n_ases: usize,
    n_vps_kept: usize,
    success: Vec<(String, Vec<u64>)>,
    rssac: Vec<(String, u64, u64, u64)>,
    nl: Vec<(String, Vec<u64>)>,
    route_events: Vec<(String, usize)>,
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn summarize(out: &SimOutput) -> Summary {
    Summary {
        n_ases: out.n_ases,
        n_vps_kept: out.n_vps_kept,
        success: out
            .letters
            .iter()
            .map(|&l| (l.to_string(), bits(out.pipeline.letter(l).success.values())))
            .collect(),
        rssac: out
            .rssac
            .iter()
            .map(|(l, c)| {
                let r = c.report(0);
                (
                    l.to_string(),
                    r.queries.to_bits(),
                    r.responses.to_bits(),
                    r.unique_sources.to_bits(),
                )
            })
            .collect(),
        nl: out
            .nl_sites
            .iter()
            .map(|(code, series)| (code.clone(), bits(series.values())))
            .collect(),
        route_events: out
            .collectors
            .iter()
            .map(|(l, c)| (l.to_string(), c.log().len()))
            .collect(),
    }
}

#[test]
fn small_scenario_is_bit_identical_across_runs_and_thread_counts() {
    let cfg = ScenarioConfig::small();

    let first = summarize(&run(&cfg).expect("valid scenario"));
    let second = summarize(&run(&cfg).expect("valid scenario"));
    assert_eq!(first, second, "two identical runs diverged");

    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool")
        .install(|| summarize(&run(&cfg).expect("valid scenario")));
    assert_eq!(
        first, single,
        "single-thread run diverged from the default pool"
    );
}

#[test]
fn cached_kernels_are_bit_identical_to_reference_kernels() {
    // The golden equivalence pin for the PR-3 fast paths: a full run on
    // the cached kernels (catchment-epoch index, serial fluid tick,
    // changed-AS collector diff, fused string-free probes) must agree
    // bit for bit with the same scenario on the reference kernels (full
    // per-AS scans, rayon fluid fan-out, textual CHAOS identities).
    // Caching is an implementation detail; it must never change output.
    let mut cfg = ScenarioConfig::small();
    assert!(!cfg.reference_kernels, "cached kernels are the default");
    let cached = summarize(&run(&cfg).expect("valid scenario"));
    cfg.reference_kernels = true;
    let reference = summarize(&run(&cfg).expect("valid scenario"));
    assert_eq!(
        cached, reference,
        "cached kernels diverged from the reference implementations"
    );
}

#[test]
fn cached_kernels_are_bit_identical_across_thread_counts() {
    // The cached fluid tick is serial, but the probe wheel still fans
    // out per letter — pin thread-count independence on the exact
    // configuration production runs use (reference_kernels = false).
    let cfg = ScenarioConfig::small();
    let default_pool = summarize(&run(&cfg).expect("valid scenario"));
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool")
        .install(|| summarize(&run(&cfg).expect("valid scenario")));
    assert_eq!(
        default_pool, single,
        "cached-kernel run diverged across thread counts"
    );
}

#[test]
fn tracing_is_a_pure_observer() {
    // The observability layer must never change outputs: a run with the
    // event trace enabled is bit-identical (in everything the analysis
    // layer consumes) to the same scenario with tracing disabled, and
    // to a profiled run. Only the trace/profile artifacts may differ.
    let cfg = ScenarioConfig::small();
    let dark = run(&cfg).expect("valid scenario");
    assert!(!dark.trace.enabled, "trace is off by default");
    assert!(dark.trace.events.is_empty(), "disabled trace stays empty");

    let mut traced_cfg = cfg.clone();
    traced_cfg.trace.enabled = true;
    traced_cfg.trace.capacity = 16_384;
    let traced = run(&traced_cfg).expect("valid scenario");
    assert!(traced.trace.enabled);
    assert!(
        !traced.trace.events.is_empty(),
        "the small scenario produces policy transitions and epoch bumps"
    );
    assert_eq!(
        summarize(&dark),
        summarize(&traced),
        "enabling the event trace changed simulation output"
    );

    let (profiled, profile) = rootcast::run_profiled(&cfg).expect("valid scenario");
    assert_eq!(
        summarize(&dark),
        summarize(&profiled),
        "profiling changed simulation output"
    );
    assert!(
        !profile.phases.is_empty() && !profile.ticks.is_empty(),
        "the profiler saw phases and subsystem ticks"
    );

    // Metrics are also observation-only and identical either way.
    assert_eq!(
        dark.metrics.counter("fluid.windows"),
        traced.metrics.counter("fluid.windows")
    );
    assert_eq!(
        dark.metrics.counter("fluid.policy_transitions"),
        traced.metrics.counter("fluid.policy_transitions")
    );
}

#[test]
fn shared_substrate_runs_are_bit_identical_to_standalone_runs() {
    // The sweep engine's determinism contract: running a scenario over
    // a prebuilt shared substrate — with per-run knobs (here a 3×
    // legitimate-load change) applied on top — is bit-identical to a
    // cold standalone run of the same config. `SimWorld::build` is
    // exactly `Substrate::build` + `from_substrate`, so this pins that
    // the two paths cannot drift apart.
    let base = ScenarioConfig::small();
    let mut variant = base.clone();
    variant.legit_total_qps *= 3.0;

    let substrate = Substrate::build(&base);
    for cfg in [&base, &variant] {
        let shared = summarize(&run_with_substrate(cfg, &substrate).expect("valid scenario"));
        let standalone = summarize(&run(cfg).expect("valid scenario"));
        assert_eq!(
            shared, standalone,
            "substrate sharing changed simulation output"
        );
    }
}

#[test]
fn fault_runs_are_bit_identical_across_thread_counts() {
    // Same property with every fault kind in play: the injector draws
    // from its own RNG stream on the single-threaded engine loop, so
    // faulted runs must stay a pure function of (seed, plan) too.
    let mut cfg = ScenarioConfig::small();
    cfg.faults = FaultPlan::none()
        .with(
            SimTime::from_mins(15),
            SimDuration::from_mins(30),
            FaultKind::SiteCrash {
                letter: Letter::B,
                site: "LAX".into(),
            },
        )
        .with(
            SimTime::from_mins(20),
            SimDuration::from_mins(45),
            FaultKind::RssacGap { letter: Letter::H },
        )
        .with(
            SimTime::from_mins(25),
            SimDuration::from_mins(60),
            FaultKind::RssacCorrupt {
                letter: Letter::K,
                factor: 0.4,
            },
        )
        .with(
            SimTime::from_mins(10),
            SimDuration::from_mins(50),
            FaultKind::ProbeDropout {
                fraction: 0.3,
                letters: vec![Letter::E, Letter::F],
            },
        )
        .with(
            SimTime::from_mins(30),
            SimDuration::from_mins(40),
            FaultKind::FirmwareDowngrade { fraction: 0.2 },
        )
        .with(
            SimTime::from_mins(5),
            SimDuration::from_mins(90),
            FaultKind::CollectorBlackout { letter: Letter::K },
        );

    let first = summarize(&run(&cfg).expect("valid scenario"));
    let second = summarize(&run(&cfg).expect("valid scenario"));
    assert_eq!(first, second, "two identical fault runs diverged");

    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool")
        .install(|| summarize(&run(&cfg).expect("valid scenario")));
    assert_eq!(
        first, single,
        "single-thread fault run diverged from the default pool"
    );
}
