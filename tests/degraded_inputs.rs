//! Every Figure/Table builder against a *maximally* degraded run: no
//! attack at all, every VP dropped for the whole horizon, every
//! letter's RSSAC accounting gapped, every collector blacked out. The
//! analysis layer must neither panic nor leak a non-finite value into
//! any rendered cell or CSV export — empty inputs degrade to empty or
//! "–" cells, with coverage columns saying why.
//!
//! This is the sharpest version of `render_nan.rs`: that test thins
//! observation; this one removes it.

use rootcast::analysis::{
    collateral, event_size, flips, letter_rtt, raster, reachability, routing, servers, site_reach,
    site_rtt,
};
use rootcast::render::TextTable;
use rootcast::{
    render_metrics, run, run_sweep, AttackSchedule, ConfigPatch, FaultKind, FaultPlan, Letter,
    ScenarioConfig, SimDuration, SimTime, SweepPlan, SweepRun,
};

/// Zero attack, zero observation: all VPs disconnected, all RSSAC
/// records and collectors gapped for effectively the whole horizon.
fn dead_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small();
    cfg.horizon = SimTime::from_hours(2);
    cfg.pipeline.horizon = cfg.horizon;
    cfg.attack = AttackSchedule::quiet();
    let start = SimTime::from_mins(1);
    let rest = SimDuration::from_mins(118);
    let mut faults = FaultPlan::none().with(
        start,
        rest,
        FaultKind::ProbeDropout {
            fraction: 1.0,
            letters: Vec::new(), // empty = every letter
        },
    );
    for letter in Letter::ALL {
        faults = faults
            .with(start, rest, FaultKind::RssacGap { letter })
            .with(start, rest, FaultKind::CollectorBlackout { letter });
    }
    cfg.faults = faults;
    cfg
}

/// Every table the flagship example prints.
fn all_tables(out: &rootcast::SimOutput) -> Vec<TextTable> {
    let mut tables = vec![
        site_reach::table2(out).render(),
        event_size::table3(out).render(),
        reachability::figure3(out).render(),
        letter_rtt::figure4(out).render(),
    ];
    for letter in [Letter::E, Letter::K, Letter::B] {
        tables.push(site_reach::figure5(out, letter).render());
        tables.push(site_reach::figure6(out, letter).render());
    }
    tables.push(site_rtt::figure7(out).render());
    tables.push(flips::figure8(out).render());
    tables.push(routing::figure9(out).render());
    tables.push(flips::figure10(out, Letter::K, "LHR").render());
    tables.push(flips::figure10(out, Letter::K, "FRA").render());
    tables.push(
        raster::figure11(out, Letter::K, &["LHR", "FRA"], 300)
            .expect("K is rastered")
            .render_cohorts(),
    );
    tables.push(servers::figures12_13(out).render());
    tables.push(collateral::figure14(out, Letter::D).render());
    tables.push(collateral::figure15(out).render());
    tables.extend(render_metrics(&out.metrics));
    tables
}

fn assert_finite_rendering(tables: &[TextTable]) {
    for table in tables {
        let text = table.to_string();
        let csv = table.to_csv();
        for rendered in [&text, &csv] {
            assert!(!rendered.contains("NaN"), "rendered NaN:\n{text}");
            assert!(!rendered.contains("inf"), "rendered inf:\n{text}");
        }
    }
}

#[test]
fn dead_run_renders_every_table_without_panic_or_nan() {
    let out = run(&dead_cfg()).expect("dead scenario still runs");
    assert!(!out.run_stats.faults.is_empty(), "faults must have fired");
    // The dropout really removed observation: K has no flip events.
    let flow = flips::figure10(&out, Letter::K, "LHR");
    assert_eq!(flow.outflow_share("AMS"), 0.0, "empty outflow share");
    assert_finite_rendering(&all_tables(&out));
}

#[test]
fn attacked_but_unobserved_event_days_degrade_explicitly() {
    // Keep the Nov 30 attack but gap every letter's RSSAC record: the
    // event day exists, no attacked letter reports it. Table 3 must
    // keep the day as a flagged degraded row, not drop it.
    let mut cfg = ScenarioConfig::small();
    cfg.horizon = SimTime::from_hours(9);
    cfg.pipeline.horizon = cfg.horizon;
    let start = SimTime::from_mins(1);
    let rest = SimDuration::from_mins(9 * 60 - 2);
    let mut faults = FaultPlan::none();
    for letter in Letter::ALL {
        faults = faults.with(start, rest, FaultKind::RssacGap { letter });
    }
    cfg.faults = faults;
    let out = run(&cfg).expect("gapped scenario runs");

    let t3 = event_size::table3(&out);
    assert!(
        !t3.bounds.is_empty(),
        "the attacked day must survive as a degraded bounds row"
    );
    for b in &t3.bounds {
        assert!(b.is_degraded(t3.n_attacked), "all letters were gapped");
        assert!(b.lower_mqps.is_finite(), "lower bound is a true sum");
    }
    let rendered = t3.render();
    assert!(
        rendered
            .to_string()
            .contains(&format!("/{}", t3.n_attacked)),
        "bounds rows must show how many letters they rest on:\n{rendered}"
    );
    assert_finite_rendering(&[rendered]);
}

#[test]
fn sweep_over_dead_scenario_reports_finite_headlines() {
    let plan = SweepPlan::explicit(
        "degraded",
        dead_cfg(),
        vec![SweepRun::new("dead", ConfigPatch::none())],
    );
    let report = run_sweep(&plan).expect("sweep over a dead run works");
    let h = &report.records[0].headline;
    for v in [
        h.worst_letter_availability,
        h.mean_letter_availability,
        h.peak_offered_qps,
        h.worst_served_ratio,
    ] {
        assert!(v.is_finite(), "headline value must be finite: {h:?}");
    }
    // No attack → no event windows → no dip to report.
    assert_eq!(h.worst_letter_availability, 1.0);
    let text = report.render();
    assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    assert_finite_rendering(&[report.comparison()]);
}
