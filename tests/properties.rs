//! Property-based tests across the workspace (proptest).
//!
//! These target the invariants the whole reproduction rests on: wire
//! codec round-trips, BGP routing sanity on random topologies, fluid
//! queue conservation, binning consistency, and the policy model's
//! optimality bound.

use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use rootcast::policy_model::{paper_deployment, Strategy};
use rootcast_bgp::{compute_rib_scoped, Origin, Scope};
use rootcast_dns::{Letter, Message, Name, Rcode, Rdata, Record, RrClass, RrType, ServerIdentity};
use rootcast_netsim::{BinnedSeries, FluidQueue, RateSignal, SimDuration, SimRng, SimTime};
use rootcast_topology::{gen, Tier, TopologyParams};

// ---------------------------------------------------------------- names

/// Strategy for a valid DNS label.
fn label() -> impl proptest::strategy::Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]{1,20}").expect("valid regex")
}

/// Strategy for a valid domain name of 1..5 labels.
fn name() -> impl proptest::strategy::Strategy<Value = String> {
    proptest::collection::vec(label(), 1..5).prop_map(|ls| ls.join("."))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn name_roundtrips_through_wire(n in name()) {
        let parsed = Name::parse(&n).expect("valid name");
        let mut buf = bytes::BytesMut::new();
        parsed.encode(&mut buf);
        let (decoded, next) = Name::decode(&buf, 0).expect("decodes");
        prop_assert_eq!(&decoded, &parsed);
        prop_assert_eq!(next, buf.len());
        prop_assert_eq!(decoded.wire_len(), buf.len());
    }

    #[test]
    fn name_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Must return Ok or Err, never panic or loop forever.
        let _ = Name::decode(&bytes, 0);
    }

    #[test]
    fn message_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn query_roundtrips(qname in name(), id in any::<u16>()) {
        let q = Message::query(id, Name::parse(&qname).unwrap(), RrType::A, RrClass::In);
        let decoded = Message::decode(&q.encode()).expect("round-trip");
        prop_assert_eq!(decoded, q);
    }

    #[test]
    fn response_with_records_roundtrips(
        qname in name(),
        addr in any::<[u8; 4]>(),
        ttl in 0u32..1_000_000,
    ) {
        let q = Message::query(1, Name::parse(&qname).unwrap(), RrType::A, RrClass::In);
        let mut r = q.response_to(Rcode::NoError);
        r.answers.push(Record {
            name: q.questions[0].qname.clone(),
            rtype: RrType::A,
            class: RrClass::In,
            ttl,
            rdata: Rdata::A(addr),
        });
        let decoded = Message::decode(&r.encode()).expect("round-trip");
        prop_assert_eq!(decoded, r);
    }

    // ------------------------------------------------------------ chaos

    #[test]
    fn chaos_identity_roundtrips(
        letter_idx in 0usize..13,
        site in proptest::string::string_regex("[A-Z]{3}").expect("regex"),
        server in 1u16..100,
    ) {
        let letter = Letter::ALL[letter_idx];
        let id = ServerIdentity::new(letter, &site, server);
        let txt = id.format_txt();
        let parsed = ServerIdentity::parse_txt(letter, &txt);
        prop_assert_eq!(parsed, Some(id));
    }

    #[test]
    fn chaos_parse_never_panics(letter_idx in 0usize..13, txt in ".{0,60}") {
        let _ = ServerIdentity::parse_txt(Letter::ALL[letter_idx], &txt);
    }

    // ------------------------------------------------------------- bgp

    #[test]
    fn routing_covers_everyone_with_a_global_origin(
        seed in 0u64..50,
        host_pick in any::<u64>(),
    ) {
        let graph = gen::generate(&TopologyParams::tiny(), &SimRng::new(seed));
        let stubs = graph.by_tier(Tier::Stub);
        let host = stubs[(host_pick % stubs.len() as u64) as usize];
        let origins = [Origin { host, scope: Scope::Global, prepend: 0 }];
        let rib = compute_rib_scoped(&graph, &origins, &[true]);
        // A single global origin on a connected valley-free topology
        // reaches every AS.
        prop_assert_eq!(rib.reachable_count(), graph.len());
        // Latency zero only at the host itself.
        for (asn, route) in rib.iter() {
            if asn == host {
                prop_assert_eq!(route.latency, SimDuration::ZERO);
            } else {
                prop_assert!(route.latency > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn anycast_catchments_partition_the_graph(
        seed in 0u64..30,
        pick_a in any::<u64>(),
        pick_b in any::<u64>(),
    ) {
        let graph = gen::generate(&TopologyParams::tiny(), &SimRng::new(seed));
        let stubs = graph.by_tier(Tier::Stub);
        let a = stubs[(pick_a % stubs.len() as u64) as usize];
        let b = stubs[(pick_b % stubs.len() as u64) as usize];
        prop_assume!(a != b);
        let origins = [
            Origin { host: a, scope: Scope::Global, prepend: 0 },
            Origin { host: b, scope: Scope::Global, prepend: 0 },
        ];
        let rib = compute_rib_scoped(&graph, &origins, &[true, true]);
        let sizes = rib.catchment_sizes(2);
        prop_assert_eq!(sizes.iter().sum::<usize>(), graph.len());
        // Each host is in its own catchment.
        prop_assert_eq!(rib.origin_of(a).map(|o| o.0), Some(0));
        prop_assert_eq!(rib.origin_of(b).map(|o| o.0), Some(1));
    }

    #[test]
    fn withdrawing_one_of_two_sites_moves_everyone(
        seed in 0u64..30,
        pick_a in any::<u64>(),
        pick_b in any::<u64>(),
    ) {
        let graph = gen::generate(&TopologyParams::tiny(), &SimRng::new(seed));
        let stubs = graph.by_tier(Tier::Stub);
        let a = stubs[(pick_a % stubs.len() as u64) as usize];
        let b = stubs[(pick_b % stubs.len() as u64) as usize];
        prop_assume!(a != b);
        let origins = [
            Origin { host: a, scope: Scope::Global, prepend: 0 },
            Origin { host: b, scope: Scope::Global, prepend: 0 },
        ];
        let rib = compute_rib_scoped(&graph, &origins, &[true, false]);
        prop_assert_eq!(rib.catchment_sizes(2), vec![graph.len(), 0]);
    }

    // ----------------------------------------------------------- fluid

    #[test]
    fn fluid_queue_conserves_traffic(
        capacity in 10.0f64..10_000.0,
        buffer in 0.0f64..10_000.0,
        offered in 0.0f64..50_000.0,
        secs in 1u64..10_000,
    ) {
        let mut q = FluidQueue::new(capacity, buffer);
        let loss = q.advance(SimTime::from_secs(secs), offered);
        prop_assert!((0.0..=1.0).contains(&loss), "loss {loss}");
        // Accepted traffic = offered*(1-loss); backlog + served must
        // account for it: backlog <= buffer, and served <= capacity*dt.
        let dt = secs as f64;
        let accepted = offered * dt * (1.0 - loss);
        let served_bound = capacity * dt;
        prop_assert!(q.backlog() <= buffer + 1e-6);
        prop_assert!(
            accepted <= served_bound + q.backlog() + 1e-6,
            "accepted {accepted} > served {served_bound} + backlog {}",
            q.backlog()
        );
    }

    #[test]
    fn rate_signal_integral_matches_mean(
        rates in proptest::collection::vec(0.0f64..1000.0, 1..6),
        width in 1u64..1000,
    ) {
        let mut s = RateSignal::zero();
        for (i, &r) in rates.iter().enumerate() {
            s.set_from(SimTime::from_secs(i as u64 * width), r);
        }
        let end = SimTime::from_secs(rates.len() as u64 * width);
        let integral = s.integrate(SimTime::ZERO, end);
        let expected: f64 = rates.iter().map(|r| r * width as f64).sum();
        prop_assert!((integral - expected).abs() < 1e-6 * expected.max(1.0));
        let mean = s.mean(SimTime::ZERO, end);
        prop_assert!((mean - expected / (rates.len() as f64 * width as f64)).abs() < 1e-9);
    }

    // ---------------------------------------------------------- series

    #[test]
    fn binned_series_increments_are_conserved(
        times in proptest::collection::vec(0u64..3600, 0..100),
    ) {
        let mut s = BinnedSeries::zeros(SimDuration::from_mins(10), 6);
        for &t in &times {
            s.incr_at(SimTime::from_secs(t));
        }
        let total: f64 = s.values().iter().sum();
        prop_assert_eq!(total as usize, times.len());
    }

    // ---------------------------------------------------- policy model

    #[test]
    fn no_strategy_beats_exhaustive_best(a0 in 0.0f64..15.0, a1 in 0.0f64..15.0) {
        let d = paper_deployment(1.0, a0, a1);
        let best = d.best_possible();
        for s in Strategy::ALL {
            prop_assert!(
                s.apply(&d).happiness() <= best,
                "{} beat the exhaustive optimum at a0={a0} a1={a1}",
                s.name()
            );
        }
    }

    #[test]
    fn happiness_monotone_in_attack(a in 0.0f64..15.0) {
        // More attack never increases absorb-happiness.
        let h1 = paper_deployment(1.0, a, a).happiness();
        let h2 = paper_deployment(1.0, a + 1.0, a + 1.0).happiness();
        prop_assert!(h2 <= h1, "H rose from {h1} to {h2} as attack grew");
    }
}
