//! Fault-injection acceptance: a scenario with a non-empty `FaultPlan`
//! runs to completion, the run ledger lists every injected fault, the
//! affected letters degrade to partial results annotated with coverage,
//! and everything the faults did not touch stays bit-identical to the
//! fault-free run.
//!
//! Background churn is pinned off (no maintenance, resolver refresh
//! beyond the horizon) so routing noise cannot couple letters: the only
//! differences between the two runs are the injected faults themselves.

use rootcast::analysis::{event_size, reachability};
use rootcast::{
    run, FaultKind, FaultPlan, Letter, ScenarioConfig, SimDuration, SimOutput, SimTime,
};
use rootcast_attack::{AttackSchedule, AttackWindow};

fn base_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small();
    cfg.horizon = SimTime::from_hours(2);
    cfg.pipeline.horizon = cfg.horizon;
    // No background churn: maintenance off, resolver refresh never
    // fires. B-root's only site (LAX) is unicast and shares no facility,
    // so its crash cannot reach any other letter.
    cfg.maintenance_mean = None;
    cfg.resolver_update = SimDuration::from_hours(100);
    cfg.attack = AttackSchedule::new(vec![AttackWindow {
        start: SimTime::from_mins(30),
        duration: SimDuration::from_mins(30),
        qname: "www.336901.com".into(),
        targets: AttackSchedule::nov2015_targets(),
        rate_qps: 2_000_000.0,
    }]);
    cfg
}

fn fault_plan() -> FaultPlan {
    FaultPlan::none()
        .with(
            SimTime::from_mins(20),
            SimDuration::from_mins(30),
            FaultKind::SiteCrash {
                letter: Letter::B,
                site: "LAX".into(),
            },
        )
        .with(
            SimTime::from_mins(30),
            SimDuration::from_mins(40),
            FaultKind::RssacGap { letter: Letter::H },
        )
        .with(
            SimTime::from_mins(10),
            SimDuration::from_mins(60),
            FaultKind::ProbeDropout {
                fraction: 0.5,
                letters: vec![Letter::E],
            },
        )
}

/// The two runs every assertion compares. Building them dominates the
/// test binary's runtime, so do it once.
fn runs() -> &'static (SimOutput, SimOutput) {
    use std::sync::OnceLock;
    static RUNS: OnceLock<(SimOutput, SimOutput)> = OnceLock::new();
    RUNS.get_or_init(|| {
        let clean = run(&base_cfg()).expect("valid scenario");
        let mut cfg = base_cfg();
        cfg.faults = fault_plan();
        let faulted = run(&cfg).expect("valid scenario");
        (clean, faulted)
    })
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn run_stats_ledger_lists_every_fault() {
    let (_, faulted) = runs();
    let ledger = &faulted.run_stats.faults;
    assert_eq!(ledger.len(), 6, "3 injections + 3 recoveries: {ledger:?}");
    for needle in [
        "site-crash B/LAX",
        "rssac-gap H",
        "probe-dropout 50% towards E",
    ] {
        let hits = ledger
            .iter()
            .filter(|f| f.description.contains(needle))
            .count();
        assert_eq!(hits, 2, "{needle}: inject + recover expected, {hits} found");
    }
    // The ledger is in injection-time order.
    for pair in ledger.windows(2) {
        assert!(pair[0].at <= pair[1].at, "ledger out of order: {ledger:?}");
    }
}

#[test]
fn gapped_rssac_letter_degrades_others_stay_bit_identical() {
    let (clean, faulted) = runs();
    // H observed 80 of 120 minutes.
    let h = faulted.rssac[&Letter::H].report(0);
    let frac = h.coverage.fraction();
    assert!(
        (frac - 80.0 / 120.0).abs() < 1e-12,
        "H coverage {frac}, wanted 2/3"
    );
    assert!(
        h.queries < clean.rssac[&Letter::H].report(0).queries,
        "a 40-minute gap must drop recorded queries"
    );
    // The other reporting letters never saw a fault: reports (totals,
    // histograms, unique sources, coverage) are bit-identical.
    for letter in [Letter::A, Letter::J, Letter::K, Letter::L] {
        let c = clean.rssac[&letter].report(0);
        let f = faulted.rssac[&letter].report(0);
        assert_eq!(c, f, "{letter} report changed under unrelated faults");
        assert!(f.coverage.is_complete(), "{letter} coverage dipped");
    }
}

#[test]
fn probe_dropout_thins_coverage_others_stay_bit_identical() {
    let (clean, faulted) = runs();
    let e = faulted.pipeline.letter(Letter::E).coverage();
    assert!(
        e.fraction() < 1.0,
        "E coverage {} after a 50% dropout wave",
        e.fraction()
    );
    assert!(clean.pipeline.letter(Letter::E).coverage().is_complete());
    // Every letter the plan does not touch (all but E's dropout and B's
    // site crash) keeps a bit-identical success series.
    for &letter in &clean.letters {
        if matches!(letter, Letter::B | Letter::E) {
            continue;
        }
        assert_eq!(
            bits(clean.pipeline.letter(letter).success.values()),
            bits(faulted.pipeline.letter(letter).success.values()),
            "{letter} series changed under unrelated faults"
        );
        assert!(faulted.pipeline.letter(letter).coverage().is_complete());
    }
}

#[test]
fn site_crash_blacks_out_the_letter_then_recovers() {
    let (clean, faulted) = runs();
    let b = faulted.pipeline.letter(Letter::B);
    // During the crash window (20-50 min) B has no announced site: no VP
    // can reach it, unlike the clean run's pre-attack plateau.
    let dark = b
        .success
        .window(SimTime::from_mins(20), SimTime::from_mins(30));
    let clean_same = clean
        .pipeline
        .letter(Letter::B)
        .success
        .window(SimTime::from_mins(20), SimTime::from_mins(30));
    assert!(
        dark.max() < clean_same.max() * 0.2,
        "B still reachable mid-crash: {} vs clean {}",
        dark.max(),
        clean_same.max()
    );
    // After recovery (50 min) and the attack's end (60 min), B comes back.
    let after = b
        .success
        .window(SimTime::from_mins(80), SimTime::from_mins(120));
    assert!(
        after.max() > clean_same.max() * 0.5,
        "B never recovered: {} vs {}",
        after.max(),
        clean_same.max()
    );
}

#[test]
fn analyses_annotate_partial_results_with_coverage() {
    let (clean, faulted) = runs();
    // Table 3: H's row carries its reduced coverage; the other reporting
    // letters' deltas are bit-identical to the fault-free table.
    let t3_clean = event_size::table3(clean);
    let t3 = event_size::table3(faulted);
    let h = t3.row(Letter::H, 0).expect("H reports");
    assert!(
        h.coverage.fraction() < 1.0,
        "H Table3 coverage {}",
        h.coverage.fraction()
    );
    for letter in [Letter::A, Letter::J, Letter::K, Letter::L] {
        let c = t3_clean.row(letter, 0).expect("clean row");
        let f = t3.row(letter, 0).expect("faulted row");
        assert_eq!(
            c.dq_mqps.to_bits(),
            f.dq_mqps.to_bits(),
            "{letter} dQ moved"
        );
        assert_eq!(
            c.dq_gbps.to_bits(),
            f.dq_gbps.to_bits(),
            "{letter} Gb/s moved"
        );
        assert!(f.coverage.is_complete(), "{letter} coverage dipped");
    }
    // Figure 3: E's row reports the dropout wave's thinned probe
    // coverage; untouched letters stay complete.
    let fig = reachability::figure3(faulted);
    let row = |l: Letter| fig.rows.iter().find(|r| r.letter == l).expect("row");
    assert!(row(Letter::E).coverage.fraction() < 1.0);
    for l in [Letter::A, Letter::K, Letter::L] {
        assert!(row(l).coverage.is_complete(), "{l} probe coverage dipped");
    }
}
