//! Rendering under degraded observation: a fault-gapped run must never
//! leak a literal `NaN` (or `inf`) into any rendered table. Undefined
//! cells render as "–" and the coverage columns say *why* the cell is
//! undefined.
//!
//! This is the golden test for the NaN-leak sweep: faults gap out RSSAC
//! accounting (empty event-day baselines → 0/0), crash B-root's only
//! site (no successful bins → empty event windows), and thin E's probe
//! fleet (sparse series), which between them exercise every division
//! that used to produce a bare `NaN` in the output.

use rootcast::analysis::{
    collateral, event_size, flips, letter_rtt, raster, reachability, routing, servers, site_reach,
    site_rtt,
};
use rootcast::render::TextTable;
use rootcast::{
    render_metrics, run, FaultKind, FaultPlan, Letter, ScenarioConfig, SimDuration, SimTime,
};

fn gapped_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small();
    cfg.horizon = SimTime::from_hours(2);
    cfg.pipeline.horizon = cfg.horizon;
    cfg.faults = FaultPlan::none()
        .with(
            SimTime::from_mins(20),
            SimDuration::from_mins(30),
            FaultKind::SiteCrash {
                letter: Letter::B,
                site: "LAX".into(),
            },
        )
        .with(
            SimTime::from_mins(5),
            SimDuration::from_mins(110),
            FaultKind::RssacGap { letter: Letter::H },
        )
        .with(
            SimTime::from_mins(10),
            SimDuration::from_mins(100),
            FaultKind::ProbeDropout {
                fraction: 0.9,
                letters: vec![Letter::E],
            },
        );
    cfg
}

/// Every table the flagship example prints, from a gapped run.
fn all_tables(out: &rootcast::SimOutput) -> Vec<TextTable> {
    let mut tables = vec![
        site_reach::table2(out).render(),
        event_size::table3(out).render(),
        reachability::figure3(out).render(),
        letter_rtt::figure4(out).render(),
    ];
    for letter in [Letter::E, Letter::K, Letter::B] {
        tables.push(site_reach::figure5(out, letter).render());
        tables.push(site_reach::figure6(out, letter).render());
    }
    tables.push(site_rtt::figure7(out).render());
    tables.push(flips::figure8(out).render());
    tables.push(routing::figure9(out).render());
    tables.push(flips::figure10(out, Letter::K, "LHR").render());
    tables.push(flips::figure10(out, Letter::K, "FRA").render());
    tables.push(
        raster::figure11(out, Letter::K, &["LHR", "FRA"], 300)
            .expect("K is rastered")
            .render_cohorts(),
    );
    tables.push(servers::figures12_13(out).render());
    tables.push(collateral::figure14(out, Letter::D).render());
    tables.push(collateral::figure15(out).render());
    tables.extend(render_metrics(&out.metrics));
    tables
}

#[test]
fn gapped_run_renders_without_nan() {
    let out = run(&gapped_cfg()).expect("gapped scenario runs");
    // The faults really did gap observation, so the NaN-prone paths run.
    assert!(!out.run_stats.faults.is_empty(), "faults must have fired");
    for table in all_tables(&out) {
        let text = table.to_string();
        let csv = table.to_csv();
        for rendered in [&text, &csv] {
            assert!(!rendered.contains("NaN"), "rendered NaN in table:\n{text}");
            assert!(!rendered.contains("inf"), "rendered inf in table:\n{text}");
        }
    }
}

#[test]
fn undefined_cells_render_as_dash_with_coverage_context() {
    let out = run(&gapped_cfg()).expect("gapped scenario runs");
    // H's RSSAC record is gapped for nearly the whole horizon: its
    // Table 3 coverage column must report partial coverage.
    let t3 = event_size::table3(&out);
    if let Some(h) = t3.row(Letter::H, 0) {
        assert!(
            h.coverage.fraction() < 1.0,
            "H coverage {} should be partial under an RssacGap",
            h.coverage.fraction()
        );
    }
    let rendered = t3.render().to_string();
    assert!(
        rendered.contains('%'),
        "Table 3 must carry its coverage column:\n{rendered}"
    );
}
