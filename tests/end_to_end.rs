//! End-to-end integration: run a full (small) scenario and check that
//! every layer — topology, routing, services, attack, measurement,
//! reporting, analysis — agrees with the paper's headline observations.
//!
//! These tests share one simulation via `OnceLock`; building it is the
//! expensive part.

use rootcast::analysis::{
    collateral, event_size, flips, letter_rtt, raster, reachability, routing, servers, site_reach,
    site_rtt,
};
use rootcast::{sim, Letter, ScenarioConfig, SimDuration, SimOutput, SimTime};
use rootcast_attack::{AttackSchedule, AttackWindow};
use std::sync::OnceLock;

static OUT: OnceLock<SimOutput> = OnceLock::new();

/// A 4-hour scenario with one 40-minute event at 3 Mq/s.
fn scenario() -> &'static SimOutput {
    OUT.get_or_init(|| {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_hours(4);
        cfg.pipeline.horizon = cfg.horizon;
        cfg.attack = AttackSchedule::new(vec![AttackWindow {
            start: SimTime::from_mins(90),
            duration: SimDuration::from_mins(40),
            qname: "www.336901.com".into(),
            targets: AttackSchedule::nov2015_targets(),
            rate_qps: 3_000_000.0,
        }]);
        sim::run(&cfg).expect("valid scenario")
    })
}

#[test]
fn observation_1_letters_see_minimal_to_severe_loss() {
    // Table 1 / §3.2: "letters saw minimal to severe loss (1% to 95%)".
    let fig = reachability::figure3(scenario());
    let survivals: Vec<f64> = fig.rows.iter().map(|r| r.survival).collect();
    let min = survivals.iter().copied().fold(f64::INFINITY, f64::min);
    let max = survivals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(min < 0.4, "someone must suffer severely, min {min}");
    assert!(max > 0.95, "someone must be nearly untouched, max {max}");
}

#[test]
fn observation_2_loss_not_uniform_across_sites() {
    // §3.3: overall letter loss does not predict per-site loss.
    let fig = site_reach::figure5(scenario(), Letter::K);
    let stable: Vec<_> = fig.rows.iter().filter(|r| r.stable).collect();
    assert!(stable.len() >= 3, "need several stable K sites");
    let dips: Vec<f64> = stable.iter().map(|r| r.event_min_norm).collect();
    let min = dips.iter().copied().fold(f64::INFINITY, f64::min);
    let max = dips.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max - min > 0.4,
        "per-site dips should spread widely: {min}..{max}"
    );
}

#[test]
fn observation_3_flips_and_route_changes_align_with_events() {
    let out = scenario();
    let fig8 = flips::figure8(out);
    let fig9 = routing::figure9(out);
    // Letters that flip also show collector updates, concentrated in
    // the event window.
    assert!(fig8.total(Letter::H) > 0.0);
    assert!(fig9.total(Letter::H) > 0.0);
    assert!(fig8.event_share(out, Letter::H) > 0.5);
}

#[test]
fn observation_4_some_users_stick_others_flip() {
    let out = scenario();
    let fig11 = raster::figure11(out, Letter::K, &["LHR", "FRA"], 300).expect("K is rastered");
    let counts = fig11.cohort_counts();
    let total: usize = counts.iter().map(|(_, n)| n).sum();
    assert!(total > 0, "no focal VPs found");
    let flips = counts[1].1 + counts[2].1;
    assert!(flips > 0, "nobody flipped: {counts:?}");
}

#[test]
fn observation_5_server_level_diverges_from_site_level() {
    let out = scenario();
    let figs = servers::figures12_13(out);
    let fra = figs.site(Letter::K, "FRA").expect("watched");
    let during = fra.responding_during_events(out);
    assert_eq!(during[0].len(), 1, "K-FRA must concentrate: {during:?}");
}

#[test]
fn observation_6_collateral_damage_exists() {
    let out = scenario();
    let fig14 = collateral::figure14(out, Letter::D);
    assert!(!fig14.affected.is_empty(), "no D-root collateral");
    let fig15 = collateral::figure15(out);
    let worst = fig15
        .sites
        .iter()
        .map(|s| s.event_min)
        .fold(f64::INFINITY, f64::min);
    assert!(worst < 0.8, ".nl sites should dip, worst {worst}");
}

#[test]
fn rssac_estimation_brackets_truth() {
    // The true offered rate is 3 Mq/s per attacked letter (30 Mq/s
    // aggregate). Table 3's estimation must bracket it: the lower bound
    // under, the upper bound at-or-above ~half of truth (the paper:
    // "somewhere between half and all of our upper-bound").
    let t3 = event_size::table3(scenario());
    let truth_aggregate = 3.0 * 10.0;
    let b = &t3.bounds[0];
    assert!(
        b.lower_mqps < truth_aggregate,
        "lower {} should underestimate {truth_aggregate}",
        b.lower_mqps
    );
    assert!(
        b.upper_mqps > truth_aggregate * 0.4,
        "upper {} too low vs {truth_aggregate}",
        b.upper_mqps
    );
    assert!(b.lower_mqps <= b.scaled_mqps);
}

#[test]
fn cleaning_is_effective_and_bounded() {
    let out = scenario();
    let kept_frac = out.n_vps_kept as f64 / 400.0;
    assert!(kept_frac > 0.9, "cleaning too aggressive: {kept_frac}");
    assert!(!out.cleaning.excluded.is_empty(), "cleaning found nothing");
}

#[test]
fn rtt_letters_match_loss_letters() {
    // Letters whose RTT blows up should be ones under attack.
    let out = scenario();
    let fig4 = letter_rtt::figure4(out);
    for row in fig4.significant() {
        assert!(
            !matches!(row.letter, Letter::D | Letter::L | Letter::M),
            "unattacked {} showed RTT change {}",
            row.letter,
            row.change_factor
        );
    }
}

#[test]
fn site_rtt_shows_absorption() {
    let out = scenario();
    let fig7 = site_rtt::figure7(out);
    let ams = fig7.site(Letter::K, "AMS").expect("K-AMS watched");
    assert!(
        ams.event_peaks_ms[0] > 500.0,
        "K-AMS bufferbloat peak {} ms",
        ams.event_peaks_ms[0]
    );
}

#[test]
fn census_reported_vs_observed() {
    let t2 = site_reach::table2(scenario());
    // Most configured sites are observable, none over-counted.
    for row in &t2.rows {
        assert!(row.observed <= row.reported);
        assert!(
            row.observed * 2 >= row.reported,
            "{}: only {} of {} sites observed",
            row.letter,
            row.observed,
            row.reported
        );
    }
}
