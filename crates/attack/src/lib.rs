//! # rootcast-attack
//!
//! Workload generation for the rootcast reproduction of *"Anycast vs.
//! DDoS"* (IMC 2016): the Nov 30 / Dec 1 2015 event traffic and the
//! legitimate background it displaced.
//!
//! * [`schedule`] — [`AttackSchedule`]: the two event windows with their
//!   fixed qnames, targeted letters (all but D, L, M) and per-letter
//!   offered rate (~5 Mq/s);
//! * [`botnet`] — [`Botnet`]: weighted true-origin ASes (which catchments
//!   absorb the attack) plus the spoofed-source model reproducing the
//!   unique-address explosion and heavy-hitter skew Verisign reported;
//! * [`legit`] — population-weighted background load and
//!   [`ResolverPopulation`], the RTT/loss-driven letter-selection model
//!   behind "letter flips" (§3.2.2).

pub mod botnet;
pub mod legit;
pub mod schedule;

pub use botnet::{Botnet, BotnetParams};
pub use legit::{
    population_weights, LetterObservation, ResolverPopulation, DEFAULT_LEGIT_TOTAL_QPS,
};
pub use schedule::{AttackSchedule, AttackWindow};
