//! Legitimate background traffic and the recursive-resolver model.
//!
//! Recursive resolvers query the root at a low, steady rate (RSSAC
//! baselines in Table 3: ~0.03–0.06 Mq/s per letter) and choose *which*
//! letter to ask based on observed latency, retrying others on failure
//! (RFC 2182 operational practice; the Yu et al. study the paper cites).
//! That selection behaviour produces the paper's §3.2.2 observation:
//! L-root — never attacked — saw a 1.66× query-rate increase during the
//! second event as resolvers fled unresponsive letters ("letter flips").
//!
//! [`ResolverPopulation`] keeps, per AS, a preference distribution over
//! the 13 letters and re-weights it from the letters' current
//! per-AS RTT and loss.

use rootcast_dns::Letter;
use rootcast_netsim::SimDuration;
use rootcast_topology::{city, AsGraph, Tier};
use serde::{Deserialize, Serialize};

/// Total legitimate root query load across all letters (queries/second).
/// Table 3's per-letter baselines are ~0.04 Mq/s; times 13 letters this
/// is ~0.5 Mq/s of root traffic system-wide.
pub const DEFAULT_LEGIT_TOTAL_QPS: f64 = 520_000.0;

/// Per-AS legitimate-traffic weights: Internet population by city.
/// Indexed by `AsId.0`, zero for transit ASes (resolvers live at the
/// edge). Sums to 1.
pub fn population_weights(graph: &AsGraph) -> Vec<f64> {
    let mut w = vec![0.0f64; graph.len()];
    for node in graph.nodes() {
        if node.tier == Tier::Stub {
            w[node.id.0 as usize] = city(node.city).population_weight.max(0.01);
        }
    }
    let total: f64 = w.iter().sum();
    assert!(total > 0.0, "no stub ASes to carry legitimate traffic");
    for x in &mut w {
        *x /= total;
    }
    w
}

/// How one AS's resolvers currently observe one letter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LetterObservation {
    /// Smoothed RTT to the letter's current catchment site, if reachable.
    pub rtt: Option<SimDuration>,
    /// Probability a query to the letter is lost right now.
    pub loss: f64,
}

impl LetterObservation {
    pub fn unreachable() -> LetterObservation {
        LetterObservation {
            rtt: None,
            loss: 1.0,
        }
    }
}

/// Per-AS letter-preference state for the whole resolver population.
#[derive(Debug, Clone)]
pub struct ResolverPopulation {
    /// `shares[asn][letter]`: fraction of the AS's root queries sent to
    /// that letter. Rows sum to 1 (or 0 if nothing is reachable).
    shares: Vec<[f64; 13]>,
    /// Selection sharpness: letters are weighted ∝ (1/rtt_ms)^alpha.
    /// Yu et al. observed resolvers skew toward low-RTT authorities but
    /// keep probing others; alpha ≈ 1.5–2 reproduces that mix.
    pub alpha: f64,
}

impl ResolverPopulation {
    /// Start with uniform preferences across all letters.
    pub fn new(n_ases: usize) -> ResolverPopulation {
        ResolverPopulation {
            shares: vec![[1.0 / 13.0; 13]; n_ases],
            alpha: 1.5,
        }
    }

    /// Number of ASes tracked.
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }

    /// The current letter shares for an AS.
    pub fn shares(&self, asn: usize) -> &[f64; 13] {
        &self.shares[asn]
    }

    /// Re-derive one AS's preferences from fresh observations.
    ///
    /// Weight per letter: `(1000 / (rtt_ms + 5))^alpha × (1 - loss)²`,
    /// zero if unreachable. Squaring the delivery probability reflects
    /// that a resolver needs both its query and the answer to survive,
    /// and that losses trigger costly retries it learns to avoid.
    pub fn update_as(&mut self, asn: usize, obs: &[LetterObservation; 13]) {
        let mut weights = [0.0f64; 13];
        for (w, o) in weights.iter_mut().zip(obs) {
            if let Some(rtt) = o.rtt {
                let rtt_ms = rtt.as_millis_f64().max(0.1);
                let delivery = (1.0 - o.loss).clamp(0.0, 1.0);
                *w = (1000.0 / (rtt_ms + 5.0)).powf(self.alpha) * delivery * delivery;
            }
        }
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            for w in &mut weights {
                *w /= total;
            }
        }
        self.shares[asn] = weights;
    }

    /// Aggregate share of the whole population's queries going to each
    /// letter, weighting each AS by `pop_weights` (the same weights that
    /// scale its traffic).
    pub fn aggregate_shares(&self, pop_weights: &[f64]) -> [f64; 13] {
        assert_eq!(pop_weights.len(), self.shares.len());
        let mut agg = [0.0f64; 13];
        for (row, &pw) in self.shares.iter().zip(pop_weights) {
            if pw > 0.0 {
                for (a, s) in agg.iter_mut().zip(row) {
                    *a += pw * s;
                }
            }
        }
        agg
    }

    /// Per-AS traffic weight toward one letter: `pop_weight × share`.
    /// This is the weight vector [`AnycastService::offered_per_site`]
    /// consumes for legitimate traffic.
    ///
    /// [`AnycastService::offered_per_site`]:
    ///     ../../rootcast_anycast/service/struct.AnycastService.html#method.offered_per_site
    pub fn letter_weights(&self, letter: Letter, pop_weights: &[f64]) -> Vec<f64> {
        assert_eq!(pop_weights.len(), self.shares.len());
        let li = letter as usize;
        self.shares
            .iter()
            .zip(pop_weights)
            .map(|(row, &pw)| pw * row[li])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootcast_netsim::SimRng;
    use rootcast_topology::{gen, TopologyParams};

    fn obs(rtt_ms: u64, loss: f64) -> LetterObservation {
        LetterObservation {
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            loss,
        }
    }

    #[test]
    fn population_weights_normalized_stub_only() {
        let g = gen::generate(&TopologyParams::tiny(), &SimRng::new(1));
        let w = population_weights(&g);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for node in g.nodes() {
            if node.tier != Tier::Stub {
                assert_eq!(w[node.id.0 as usize], 0.0);
            }
        }
    }

    #[test]
    fn initial_shares_uniform() {
        let p = ResolverPopulation::new(3);
        for s in p.shares(0) {
            assert!((s - 1.0 / 13.0).abs() < 1e-12);
        }
    }

    #[test]
    fn low_rtt_letter_preferred() {
        let mut p = ResolverPopulation::new(1);
        let mut o = [obs(100, 0.0); 13];
        o[Letter::K as usize] = obs(10, 0.0);
        p.update_as(0, &o);
        let s = p.shares(0);
        let k = s[Letter::K as usize];
        for (i, &v) in s.iter().enumerate() {
            if i != Letter::K as usize {
                assert!(k > 3.0 * v, "K share {k} vs letter {i} share {v}");
            }
        }
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lossy_letters_shed_traffic_to_clean_ones() {
        let mut p = ResolverPopulation::new(1);
        // All letters at equal RTT; 10 of 13 heavily lossy (the attack).
        let mut o = [obs(50, 0.95); 13];
        for l in [Letter::D, Letter::L, Letter::M] {
            o[l as usize] = obs(50, 0.0);
        }
        p.update_as(0, &o);
        let s = p.shares(0);
        let clean: f64 = [Letter::D, Letter::L, Letter::M]
            .iter()
            .map(|&l| s[l as usize])
            .sum();
        // The three clean letters absorb nearly everything — the
        // letter-flip effect that raised L-root's query rate (§3.2.2).
        assert!(clean > 0.95, "clean share {clean}");
    }

    #[test]
    fn unreachable_letter_gets_zero() {
        let mut p = ResolverPopulation::new(1);
        let mut o = [obs(50, 0.0); 13];
        o[Letter::B as usize] = LetterObservation::unreachable();
        p.update_as(0, &o);
        assert_eq!(p.shares(0)[Letter::B as usize], 0.0);
    }

    #[test]
    fn all_unreachable_gives_zero_row() {
        let mut p = ResolverPopulation::new(1);
        let o = [LetterObservation::unreachable(); 13];
        p.update_as(0, &o);
        assert_eq!(p.shares(0).iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn aggregate_and_letter_weights_consistent() {
        let mut p = ResolverPopulation::new(2);
        let mut o = [obs(50, 0.0); 13];
        o[Letter::K as usize] = obs(10, 0.0);
        p.update_as(0, &o);
        // AS 1 keeps uniform shares.
        let pop = vec![0.25, 0.75];
        let agg = p.aggregate_shares(&pop);
        assert!((agg.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let kw = p.letter_weights(Letter::K, &pop);
        assert!((kw.iter().sum::<f64>() - agg[Letter::K as usize]).abs() < 1e-12);
    }
}
