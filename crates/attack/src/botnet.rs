//! The botnet: where attack traffic originates and what sources it claims.
//!
//! Verisign's analysis (§2.3) gives us the observable properties to
//! reproduce: A- and J-root together saw 895 M distinct source addresses
//! (strongly suggesting spoofing), yet the top 200 sources carried 68% of
//! the queries — a small set of very loud real machines hiding behind a
//! cloud of random addresses. Geographically, the traffic origin shapes
//! which anycast *sites* absorb it (attack volume per catchment, §2.2).
//!
//! [`Botnet`] models both aspects: a weighted distribution of member ASes
//! (true origins, routing-relevant) and a spoofing model (claimed source
//! addresses, RRL- and RSSAC-relevant).

use rand::Rng;
use rootcast_netsim::rng::weighted_index;
use rootcast_netsim::stats::mix64;
use rootcast_netsim::SimRng;
use rootcast_topology::{city, AsGraph, NamedFn, Region, Tier};

/// Botnet construction parameters.
///
/// (Not serde-serializable: the regional bias is a function pointer so
/// scenarios can plug arbitrary shapes.)
#[derive(Debug, Clone)]
pub struct BotnetParams {
    /// Number of member (true-origin) stub ASes.
    pub n_members: usize,
    /// Share of total query volume emitted by the heavy-hitter core.
    pub heavy_share: f64,
    /// Number of heavy-hitter source addresses (Verisign: top 200 = 68%).
    pub n_heavy_sources: usize,
    /// Regional mix of members: weight multiplier per region. A botnet
    /// concentrated in Asia stresses different catchments than a European
    /// one; the default skews Asia/NA the way large 2015-era botnets did.
    /// Named so the config's `Debug` form (and every hash built from
    /// it) is stable across processes.
    pub region_bias: NamedFn<fn(Region) -> f64>,
}

fn default_region_bias(r: Region) -> f64 {
    match r {
        Region::Asia => 2.0,
        Region::NorthAmerica => 1.5,
        Region::Europe => 2.0,
        Region::SouthAmerica => 1.0,
        Region::MiddleEast => 0.7,
        Region::Africa => 0.5,
        Region::Oceania => 0.8,
    }
}

impl Default for BotnetParams {
    fn default() -> Self {
        BotnetParams {
            n_members: 400,
            heavy_share: 0.68,
            n_heavy_sources: 200,
            region_bias: NamedFn::new("nov2015", default_region_bias),
        }
    }
}

/// A generated botnet.
#[derive(Debug, Clone)]
pub struct Botnet {
    /// Per-AS share of the attack volume, indexed by `AsId.0`
    /// (zero for non-members). Sums to 1.
    weights: Vec<f64>,
    /// Member AS count actually placed.
    pub n_members: usize,
    params: BotnetParams,
    /// Seed for the spoofed-address stream.
    spoof_seed: u64,
}

impl Botnet {
    /// Place `params.n_members` members on stub ASes of `graph`, with
    /// per-member volume following a Zipf-ish skew (real botnets are
    /// heavy-tailed) and regional bias.
    pub fn generate(graph: &AsGraph, params: BotnetParams, rng_factory: &SimRng) -> Botnet {
        assert!(params.n_members > 0);
        assert!((0.0..=1.0).contains(&params.heavy_share));
        let mut rng = rng_factory.stream("botnet");
        let stubs = graph.by_tier(Tier::Stub);
        assert!(!stubs.is_empty(), "graph has no stub ASes");
        let placement_weights: Vec<f64> = stubs
            .iter()
            .map(|&s| {
                let c = city(graph.node(s).city);
                (params.region_bias.f)(c.region) * c.population_weight.max(0.01)
            })
            .collect();
        let mut weights = vec![0.0f64; graph.len()];
        let mut placed = 0usize;
        for rank in 0..params.n_members {
            let pick = stubs[weighted_index(&mut rng, &placement_weights)];
            // Zipf-ish member volume: member `rank` emits ∝ 1/(rank+1)^0.9.
            let volume = 1.0 / ((rank + 1) as f64).powf(0.9);
            if weights[pick.0 as usize] == 0.0 {
                placed += 1;
            }
            weights[pick.0 as usize] += volume;
        }
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        Botnet {
            weights,
            n_members: placed,
            params,
            spoof_seed: rng.gen(),
        }
    }

    /// Per-AS attack-volume shares (sum = 1), indexed by `AsId.0`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Expected number of *distinct* spoofed source addresses observed
    /// when `total_queries` attack queries arrive: heavy hitters use
    /// their own (stable) addresses; the remaining share draws uniformly
    /// from the IPv4 space, so distinct count follows the coupon-
    /// collector expectation `N(1 - exp(-q/N))` with N = 2^32 usable.
    pub fn expected_unique_sources(&self, total_queries: f64) -> f64 {
        let spoofed_queries = total_queries * (1.0 - self.params.heavy_share);
        let n = 2f64.powi(32);
        let spoofed_unique = n * (1.0 - (-spoofed_queries / n).exp());
        self.params.n_heavy_sources as f64 + spoofed_unique
    }

    /// Sample the claimed source address of the `i`-th attack query.
    /// With probability `heavy_share` it is one of the heavy-hitter
    /// addresses; otherwise a pseudo-random spoofed address. Fully
    /// deterministic in `(botnet, i)`.
    pub fn source_address(&self, i: u64) -> [u8; 4] {
        let h = mix64(self.spoof_seed ^ i);
        let heavy = (h % 10_000) as f64 / 10_000.0 < self.params.heavy_share;
        if heavy {
            let idx = mix64(h) % self.params.n_heavy_sources as u64;
            // Heavy hitters get stable addresses in 100.64.x.x.
            let b = (idx as u32).to_be_bytes();
            [100, 64, b[2], b[3]]
        } else {
            let v = (mix64(h ^ 0xDEAD) as u32).to_be_bytes();
            [v[0].max(1), v[1], v[2], v[3]]
        }
    }

    /// The heavy-hitter share configured for this botnet.
    pub fn heavy_share(&self) -> f64 {
        self.params.heavy_share
    }

    /// Number of heavy-hitter sources.
    pub fn n_heavy_sources(&self) -> usize {
        self.params.n_heavy_sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootcast_topology::{gen, TopologyParams};

    fn botnet() -> (AsGraph, Botnet) {
        let rng = SimRng::new(77);
        let g = gen::generate(&TopologyParams::tiny(), &rng);
        let b = Botnet::generate(&g, BotnetParams::default(), &rng);
        (g, b)
    }

    #[test]
    fn weights_normalized_and_on_stubs_only() {
        let (g, b) = botnet();
        let sum: f64 = b.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        for node in g.nodes() {
            if node.tier != Tier::Stub {
                assert_eq!(b.weights()[node.id.0 as usize], 0.0);
            }
        }
        assert!(b.n_members > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let rng = SimRng::new(3);
        let g = gen::generate(&TopologyParams::tiny(), &rng);
        let b1 = Botnet::generate(&g, BotnetParams::default(), &rng);
        let b2 = Botnet::generate(&g, BotnetParams::default(), &rng);
        assert_eq!(b1.weights(), b2.weights());
        assert_eq!(b1.source_address(42), b2.source_address(42));
    }

    #[test]
    fn volume_is_skewed() {
        let (_, b) = botnet();
        let mut w: Vec<f64> = b.weights().iter().copied().filter(|&x| x > 0.0).collect();
        w.sort_by(|a, b| b.total_cmp(a));
        // The top AS should carry several times the median member AS.
        let median = w[w.len() / 2];
        assert!(w[0] > 3.0 * median, "top={} median={median}", w[0]);
    }

    #[test]
    fn unique_sources_scale_like_the_event() {
        let (_, b) = botnet();
        // Nov 30: A+J saw ~7e10 queries total over the day (5 Mq/s x 2
        // letters x 160 min ≈ 9.6e10); Verisign reported ~9e8 distinct
        // addresses. Our model: 32% spoofed of 9.6e10 ≈ 3e10 draws from
        // 4.3e9 addresses — nearly all addresses seen, ~4.3e9... That
        // overshoots reality (real spoofing wasn't uniform over the full
        // space), so assert the model's own invariants instead:
        // monotonicity and the heavy-hitter floor.
        let few = b.expected_unique_sources(1e4);
        let many = b.expected_unique_sources(1e10);
        assert!(few >= b.n_heavy_sources() as f64);
        assert!(many > few);
        // And the ratio explosion the paper shows in Table 3 (13x-340x
        // against a ~1e6-address baseline) is easily reproduced:
        assert!(many / 5.35e6 > 100.0, "ratio {}", many / 5.35e6);
    }

    #[test]
    fn source_addresses_mix_heavy_and_spoofed() {
        let (_, b) = botnet();
        let mut heavy = 0usize;
        let n = 20_000u64;
        let mut distinct = std::collections::HashSet::new();
        for i in 0..n {
            let a = b.source_address(i);
            if a[0] == 100 && a[1] == 64 {
                heavy += 1;
            }
            distinct.insert(a);
        }
        let share = heavy as f64 / n as f64;
        assert!((share - 0.68).abs() < 0.02, "heavy share {share}");
        // Spoofed addresses are all over the space: distinct count is
        // heavy-source-count + almost-all spoofed draws.
        assert!(distinct.len() > 6_000, "distinct {}", distinct.len());
        assert!(distinct.len() < 7_000, "distinct {}", distinct.len());
    }

    #[test]
    fn no_zero_first_octet() {
        let (_, b) = botnet();
        for i in 0..10_000u64 {
            assert_ne!(b.source_address(i)[0], 0);
        }
    }
}
