//! The event schedule: when, what, and how hard.
//!
//! §2.3 of the paper: on Nov 30 2015, 06:50–09:30 UTC (160 min) and again
//! on Dec 1, 05:10–06:10 UTC (60 min), most root letters received ~5 Mq/s
//! of IPv4/UDP queries with fixed qnames (`www.336901.com`, then
//! `www.916yy.com`) and randomized (spoofed) source addresses. Verisign
//! reported D-, L-, and M-root were not attacked.
//!
//! Our scenario clock starts at 2015-11-30T00:00 UTC, so the windows are
//! at +6h50m and +29h10m.

use rootcast_dns::Letter;
use rootcast_netsim::{RateSignal, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One attack window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackWindow {
    pub start: SimTime,
    pub duration: SimDuration,
    /// The fixed query name used during this window.
    pub qname: String,
    /// Letters receiving attack traffic.
    pub targets: Vec<Letter>,
    /// Offered attack rate per targeted letter, queries/second.
    pub rate_qps: f64,
}

impl AttackWindow {
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end()
    }

    pub fn targets_letter(&self, letter: Letter) -> bool {
        self.targets.contains(&letter)
    }
}

/// A full schedule of attack windows (non-overlapping, sorted by start).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackSchedule {
    windows: Vec<AttackWindow>,
}

impl AttackSchedule {
    /// Build from windows; they are sorted and checked for overlap.
    pub fn new(mut windows: Vec<AttackWindow>) -> AttackSchedule {
        windows.sort_by_key(|w| w.start);
        for pair in windows.windows(2) {
            assert!(
                pair[0].end() <= pair[1].start,
                "attack windows overlap: {} vs {}",
                pair[0].end(),
                pair[1].start
            );
        }
        AttackSchedule { windows }
    }

    /// An empty schedule (baseline days).
    pub fn quiet() -> AttackSchedule {
        AttackSchedule {
            windows: Vec::new(),
        }
    }

    /// The letters hit on Nov 30 / Dec 1: all but D, L, M (and B is
    /// unicast but was attacked; A confirmed ~5 Mq/s).
    pub fn nov2015_targets() -> Vec<Letter> {
        Letter::ALL
            .into_iter()
            .filter(|l| !matches!(l, Letter::D | Letter::L | Letter::M))
            .collect()
    }

    /// The canonical Nov 30 + Dec 1 schedule at `rate_qps` per letter
    /// (the paper's best estimate is ~5 Mq/s).
    pub fn nov2015(rate_qps: f64) -> AttackSchedule {
        let targets = Self::nov2015_targets();
        AttackSchedule::new(vec![
            AttackWindow {
                start: SimTime::from_hours(6) + SimDuration::from_mins(50),
                duration: SimDuration::from_mins(160),
                qname: "www.336901.com".to_string(),
                targets: targets.clone(),
                rate_qps,
            },
            AttackWindow {
                start: SimTime::from_hours(29) + SimDuration::from_mins(10),
                duration: SimDuration::from_mins(60),
                qname: "www.916yy.com".to_string(),
                targets,
                rate_qps,
            },
        ])
    }

    pub fn windows(&self) -> &[AttackWindow] {
        &self.windows
    }

    /// The window active at `t`, if any.
    pub fn active_window(&self, t: SimTime) -> Option<&AttackWindow> {
        self.windows.iter().find(|w| w.contains(t))
    }

    /// Attack rate offered to `letter` at time `t`.
    pub fn rate_for(&self, letter: Letter, t: SimTime) -> f64 {
        match self.active_window(t) {
            Some(w) if w.targets_letter(letter) => w.rate_qps,
            _ => 0.0,
        }
    }

    /// The attack rate for `letter` as a [`RateSignal`] over the run.
    pub fn rate_signal(&self, letter: Letter) -> RateSignal {
        let mut s = RateSignal::zero();
        for w in &self.windows {
            if w.targets_letter(letter) {
                s.set_from(w.start, w.rate_qps);
                s.set_from(w.end(), 0.0);
            }
        }
        s
    }

    /// All instants at which any letter's attack rate changes. The fluid
    /// driver aligns steps on these so window edges are exact.
    pub fn change_points(&self) -> Vec<SimTime> {
        let mut out: Vec<SimTime> = self
            .windows
            .iter()
            .flat_map(|w| [w.start, w.end()])
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nov2015_windows_match_paper_timing() {
        let s = AttackSchedule::nov2015(5_000_000.0);
        let w = s.windows();
        assert_eq!(w.len(), 2);
        // Nov 30 06:50 for 160 minutes.
        assert_eq!(w[0].start, SimTime::from_mins(6 * 60 + 50));
        assert_eq!(w[0].end(), SimTime::from_mins(9 * 60 + 30));
        assert_eq!(w[0].qname, "www.336901.com");
        // Dec 1 05:10 (+24h) for 60 minutes.
        assert_eq!(w[1].start, SimTime::from_mins(29 * 60 + 10));
        assert_eq!(w[1].end(), SimTime::from_mins(30 * 60 + 10));
        assert_eq!(w[1].qname, "www.916yy.com");
    }

    #[test]
    fn d_l_m_not_targeted() {
        let s = AttackSchedule::nov2015(5e6);
        let during = SimTime::from_hours(8);
        for letter in [Letter::D, Letter::L, Letter::M] {
            assert_eq!(s.rate_for(letter, during), 0.0);
        }
        for letter in [Letter::A, Letter::B, Letter::K, Letter::E] {
            assert_eq!(s.rate_for(letter, during), 5e6);
        }
        assert_eq!(AttackSchedule::nov2015_targets().len(), 10);
    }

    #[test]
    fn rate_zero_outside_windows() {
        let s = AttackSchedule::nov2015(5e6);
        assert_eq!(s.rate_for(Letter::K, SimTime::from_hours(3)), 0.0);
        assert_eq!(s.rate_for(Letter::K, SimTime::from_hours(12)), 0.0);
        assert_eq!(s.rate_for(Letter::K, SimTime::from_hours(40)), 0.0);
    }

    #[test]
    fn rate_signal_integrates_to_total_queries() {
        let s = AttackSchedule::nov2015(5e6);
        let sig = s.rate_signal(Letter::K);
        let total = sig.integrate(SimTime::ZERO, SimTime::from_hours(48));
        // 160 min + 60 min at 5 Mq/s = 220 * 60 * 5e6 = 6.6e10 queries.
        assert!((total - 6.6e10).abs() < 1.0, "total={total}");
        // Untargeted letters: zero.
        let quiet = s.rate_signal(Letter::L);
        assert_eq!(quiet.integrate(SimTime::ZERO, SimTime::from_hours(48)), 0.0);
    }

    #[test]
    fn change_points_cover_edges() {
        let s = AttackSchedule::nov2015(5e6);
        assert_eq!(s.change_points().len(), 4);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_windows_rejected() {
        let w = |start_min: u64, dur_min: u64| AttackWindow {
            start: SimTime::from_mins(start_min),
            duration: SimDuration::from_mins(dur_min),
            qname: "x.com".into(),
            targets: vec![Letter::A],
            rate_qps: 1.0,
        };
        AttackSchedule::new(vec![w(0, 100), w(50, 10)]);
    }
}
