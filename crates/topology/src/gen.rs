//! Synthetic Internet topology generator.
//!
//! Builds a three-tier AS hierarchy in the style of measured AS graphs:
//!
//! * a small clique of transit-free **Tier-1** backbones (full peer mesh),
//! * regional **Tier-2** transit providers, each multi-homed to 2–3
//!   Tier-1s and peering laterally with geographically close Tier-2s
//!   (the IXP effect), and
//! * **stub** edge networks attached to 1–2 nearby providers.
//!
//! City assignment is weighted by Internet population so Europe, North
//! America, and East Asia are dense — the property that makes European
//! anycast sites (K-AMS, K-LHR, E-FRA, ...) carry the large catchments
//! the paper observes.
//!
//! The generator is deterministic: the same [`SimRng`] master seed yields
//! the same graph.

use crate::geo::{city, city_catalog, CityId};
use crate::graph::{AsGraph, AsId, Relation, Tier};
use rand::Rng;
use rootcast_netsim::rng::weighted_index;
use rootcast_netsim::SimRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A [`TopologyParams`] value the generator cannot honor. Returned by
/// [`TopologyParams::validate`]; the scenario layer surfaces it as a
/// typed `ConfigError` before any state is built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A tier count is outside the generatable range (zero, or more
    /// Tier-1s than distinct catalog cities to seat them in).
    BadTierCount(String),
    /// A continuous knob is non-finite or out of range.
    BadKnob(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::BadTierCount(m) => write!(f, "bad tier count: {m}"),
            TopologyError::BadKnob(m) => write!(f, "bad knob: {m}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyParams {
    /// Number of Tier-1 backbones (full peer mesh).
    pub n_tier1: usize,
    /// Number of Tier-2 regional providers.
    pub n_tier2: usize,
    /// Number of stub (edge) ASes.
    pub n_stub: usize,
    /// Probability that a stub is multi-homed to two providers.
    pub stub_multihome_prob: f64,
    /// Distance scale (km) for Tier-2 lateral peering probability: two
    /// Tier-2s peer with probability `exp(-d / peering_scale_km)`.
    pub peering_scale_km: f64,
}

impl Default for TopologyParams {
    fn default() -> Self {
        TopologyParams {
            n_tier1: 12,
            n_tier2: 80,
            n_stub: 1500,
            stub_multihome_prob: 0.3,
            peering_scale_km: 1500.0,
        }
    }
}

impl TopologyParams {
    /// A small topology for fast unit tests.
    pub fn tiny() -> Self {
        TopologyParams {
            n_tier1: 3,
            n_tier2: 8,
            n_stub: 40,
            stub_multihome_prob: 0.3,
            peering_scale_km: 1500.0,
        }
    }

    /// Check every invariant [`generate`] depends on. Each Tier-1 gets
    /// its own catalog city (`ranked[i]` below), so `n_tier1` is capped
    /// by the catalog size — beyond it the backbones would silently
    /// collapse into shared cities and distort every catchment built on
    /// top.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.n_tier1 < 1 {
            return Err(TopologyError::BadTierCount(
                "need at least one tier-1".into(),
            ));
        }
        if self.n_tier2 < 1 {
            return Err(TopologyError::BadTierCount(
                "need at least one tier-2".into(),
            ));
        }
        let n_cities = city_catalog().len();
        if self.n_tier1 > n_cities {
            return Err(TopologyError::BadTierCount(format!(
                "{} tier-1 backbones but only {n_cities} catalog cities to seat them",
                self.n_tier1
            )));
        }
        if !self.stub_multihome_prob.is_finite() || !(0.0..=1.0).contains(&self.stub_multihome_prob)
        {
            return Err(TopologyError::BadKnob(format!(
                "stub_multihome_prob must be a probability in [0, 1], got {}",
                self.stub_multihome_prob
            )));
        }
        if !self.peering_scale_km.is_finite() || self.peering_scale_km <= 0.0 {
            return Err(TopologyError::BadKnob(format!(
                "peering_scale_km must be finite and positive, got {}",
                self.peering_scale_km
            )));
        }
        Ok(())
    }
}

/// Generate a topology from parameters and the scenario RNG.
///
/// The returned graph always satisfies [`AsGraph::validate`].
pub fn generate(params: &TopologyParams, rng_factory: &SimRng) -> AsGraph {
    if let Err(e) = params.validate() {
        panic!("invalid TopologyParams: {e} (validate up front to get a typed error)");
    }
    let mut rng = rng_factory.stream("topology");
    let mut g = AsGraph::new();
    let cities = city_catalog();
    let weights: Vec<f64> = cities.iter().map(|c| c.population_weight).collect();

    // Tier-1 backbones live in the highest-weight cities, spread out: pick
    // the top cities by weight, one per index order.
    let mut ranked: Vec<usize> = (0..cities.len()).collect();
    // total_cmp: a NaN weight sorts last instead of panicking (and
    // validate() has already rejected knobs that could produce one).
    ranked.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
    // validate() guarantees n_tier1 <= catalog size, so every backbone
    // gets a distinct city — no silent modulo collapse.
    let tier1: Vec<AsId> = (0..params.n_tier1)
        .map(|i| g.add_node(Tier::Tier1, CityId(ranked[i] as u16)))
        .collect();
    // Full peer mesh among Tier-1s (transit-free core).
    for i in 0..tier1.len() {
        for j in (i + 1)..tier1.len() {
            g.add_edge(tier1[i], tier1[j], Relation::Peer);
        }
    }

    // Tier-2: every major city (population weight >= 0.8) gets one
    // guaranteed regional provider — real transit markets cover every
    // large metro, and anycast deployments depend on it — then the rest
    // are placed by weighted draw.
    let tier2: Vec<AsId> = {
        let mut t2 = Vec::with_capacity(params.n_tier2);
        let majors: Vec<CityId> = cities
            .iter()
            .enumerate()
            .filter(|(_, c)| c.population_weight >= 0.8)
            .map(|(i, _)| CityId(i as u16))
            .collect();
        for &c in majors.iter().take(params.n_tier2) {
            t2.push(g.add_node(Tier::Tier2, c));
        }
        while t2.len() < params.n_tier2 {
            let c = CityId(weighted_index(&mut rng, &weights) as u16);
            t2.push(g.add_node(Tier::Tier2, c));
        }
        t2
    };
    for &t2 in &tier2 {
        let n_providers = rng.gen_range(2..=3.min(tier1.len()));
        let mut chosen: Vec<AsId> = Vec::new();
        while chosen.len() < n_providers {
            let w: Vec<f64> = tier1
                .iter()
                .map(|&t1| {
                    if chosen.contains(&t1) {
                        0.0
                    } else {
                        proximity_weight(&g, t2, t1)
                    }
                })
                .collect();
            if w.iter().sum::<f64>() <= 0.0 {
                break;
            }
            let pick = tier1[weighted_index(&mut rng, &w)];
            chosen.push(pick);
            // t2 is the customer of the tier-1.
            g.add_edge(pick, t2, Relation::Customer);
        }
    }
    // Lateral Tier-2 peering: probability decays with distance, so ASes in
    // the same metro (IXP members) almost always peer.
    for i in 0..tier2.len() {
        for j in (i + 1)..tier2.len() {
            let d = distance_km(&g, tier2[i], tier2[j]);
            let p = (-d / params.peering_scale_km).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(tier2[i], tier2[j], Relation::Peer);
            }
        }
    }

    // Stubs: weighted city placement, 1–2 providers among nearby Tier-2s
    // (or, rarely, a Tier-1 — large enterprises buy direct transit).
    for _ in 0..params.n_stub {
        let c = CityId(weighted_index(&mut rng, &weights) as u16);
        let s = g.add_node(Tier::Stub, c);
        let n_providers = if rng.gen_bool(params.stub_multihome_prob) {
            2
        } else {
            1
        };
        let mut chosen: Vec<AsId> = Vec::new();
        while chosen.len() < n_providers {
            // 5% chance of buying transit straight from a Tier-1.
            let pool: &[AsId] = if rng.gen_bool(0.05) { &tier1 } else { &tier2 };
            let w: Vec<f64> = pool
                .iter()
                .map(|&p| {
                    if chosen.contains(&p) {
                        0.0
                    } else {
                        proximity_weight(&g, s, p)
                    }
                })
                .collect();
            if w.iter().sum::<f64>() <= 0.0 {
                break;
            }
            let pick = pool[weighted_index(&mut rng, &w)];
            chosen.push(pick);
            g.add_edge(pick, s, Relation::Customer);
        }
    }

    debug_assert!(g.validate().is_ok());
    g
}

fn distance_km(g: &AsGraph, a: AsId, b: AsId) -> f64 {
    let ca = city(g.node(a).city);
    let cb = city(g.node(b).city);
    ca.distance_km(cb)
}

/// Weight for choosing provider `p` for customer `c`: inverse distance
/// with a floor so remote options stay possible.
fn proximity_weight(g: &AsGraph, c: AsId, p: AsId) -> f64 {
    let d = distance_km(g, c, p);
    1.0 / (d + 200.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation_rejects_bad_knobs() {
        assert_eq!(TopologyParams::default().validate(), Ok(()));
        assert_eq!(TopologyParams::tiny().validate(), Ok(()));

        let mut p = TopologyParams::tiny();
        p.n_tier1 = 0;
        assert!(matches!(p.validate(), Err(TopologyError::BadTierCount(_))));

        let mut p = TopologyParams::tiny();
        p.n_tier2 = 0;
        assert!(matches!(p.validate(), Err(TopologyError::BadTierCount(_))));

        // More Tier-1s than catalog cities would silently collapse
        // backbones into shared cities under the old modulo indexing.
        let mut p = TopologyParams::tiny();
        p.n_tier1 = city_catalog().len() + 1;
        assert!(matches!(p.validate(), Err(TopologyError::BadTierCount(_))));

        let mut p = TopologyParams::tiny();
        p.stub_multihome_prob = f64::NAN;
        assert!(matches!(p.validate(), Err(TopologyError::BadKnob(_))));

        let mut p = TopologyParams::tiny();
        p.peering_scale_km = 0.0;
        assert!(matches!(p.validate(), Err(TopologyError::BadKnob(_))));
    }

    #[test]
    fn tier1_cities_are_distinct() {
        let g = generate(&TopologyParams::default(), &SimRng::new(9));
        let t1 = g.by_tier(Tier::Tier1);
        let mut cities: Vec<_> = t1.iter().map(|&a| g.node(a).city).collect();
        cities.sort();
        cities.dedup();
        assert_eq!(cities.len(), t1.len(), "tier-1 backbones share a city");
    }

    #[test]
    fn generated_graph_validates() {
        let g = generate(&TopologyParams::default(), &SimRng::new(1));
        assert!(g.validate().is_ok());
        assert_eq!(g.len(), 12 + 80 + 1500, "node count must match parameters");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&TopologyParams::tiny(), &SimRng::new(7));
        let b = generate(&TopologyParams::tiny(), &SimRng::new(7));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edge_count(), b.edge_count());
        for (na, nb) in a.nodes().zip(b.nodes()) {
            assert_eq!(na.city, nb.city);
            assert_eq!(a.neighbors(na.id), b.neighbors(nb.id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TopologyParams::tiny(), &SimRng::new(1));
        let b = generate(&TopologyParams::tiny(), &SimRng::new(2));
        // Same node counts, but edge sets should differ.
        let differs = a.edge_count() != b.edge_count()
            || a.nodes().zip(b.nodes()).any(|(x, y)| x.city != y.city);
        assert!(differs, "two seeds produced identical graphs");
    }

    #[test]
    fn tier1_forms_full_mesh() {
        let g = generate(&TopologyParams::tiny(), &SimRng::new(3));
        let t1 = g.by_tier(Tier::Tier1);
        for i in 0..t1.len() {
            for j in (i + 1)..t1.len() {
                assert_eq!(g.relation(t1[i], t1[j]), Some(Relation::Peer));
            }
        }
    }

    #[test]
    fn every_stub_has_a_provider() {
        let g = generate(&TopologyParams::tiny(), &SimRng::new(4));
        for s in g.by_tier(Tier::Stub) {
            let has_provider = g
                .neighbors(s)
                .iter()
                .any(|a| a.relation == Relation::Provider);
            assert!(has_provider, "stub {s} is unattached");
        }
    }

    #[test]
    fn every_tier2_has_tier1_transit() {
        let g = generate(&TopologyParams::tiny(), &SimRng::new(5));
        for t2 in g.by_tier(Tier::Tier2) {
            let upstream = g.neighbors(t2).iter().filter(|a| {
                a.relation == Relation::Provider && g.node(a.neighbor).tier == Tier::Tier1
            });
            assert!(upstream.count() >= 2, "tier2 {t2} lacks redundancy");
        }
    }

    #[test]
    fn europe_is_dense() {
        use crate::geo::Region;
        let g = generate(&TopologyParams::default(), &SimRng::new(6));
        let total = g.by_tier(Tier::Stub).len() as f64;
        let europe = g
            .by_tier(Tier::Stub)
            .iter()
            .filter(|&&s| city(g.node(s).city).region == Region::Europe)
            .count() as f64;
        // Europe holds the plurality of catalog weight; expect 25–60%.
        let frac = europe / total;
        assert!((0.25..0.60).contains(&frac), "europe fraction {frac}");
    }
}
