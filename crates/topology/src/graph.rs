//! The AS-level graph: nodes, business relationships, adjacency.
//!
//! Inter-domain routing policy (and therefore anycast catchment formation)
//! is driven by the *business relationships* between ASes — the classic
//! Gao–Rexford model: a route learned from a customer may be exported to
//! anyone; routes learned from peers or providers are exported only to
//! customers. The graph here records those relationships; the `rootcast-bgp`
//! crate runs policy routing over it.

use crate::geo::{city, CityId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An autonomous-system identifier (index into the graph's node table; not
/// a real-world ASN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Role of an AS in the routing hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Global transit-free backbone (full peer mesh among Tier-1s).
    Tier1,
    /// Regional transit provider; customer of one or more Tier-1s.
    Tier2,
    /// Edge network: eyeball ISP, enterprise, or hosting AS. Originates
    /// no transit.
    Stub,
}

/// Relationship of a neighbor as seen from one side of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// The neighbor is my customer (they pay me; I carry their routes
    /// everywhere).
    Customer,
    /// The neighbor is my settlement-free peer.
    Peer,
    /// The neighbor is my provider (I pay them).
    Provider,
}

impl Relation {
    /// The same edge seen from the other side.
    pub fn flipped(self) -> Relation {
        match self {
            Relation::Customer => Relation::Provider,
            Relation::Provider => Relation::Customer,
            Relation::Peer => Relation::Peer,
        }
    }
}

/// An AS node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsNode {
    pub id: AsId,
    pub tier: Tier,
    pub city: CityId,
}

/// One adjacency entry: neighbor id plus our relationship *to* them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Adjacency {
    pub neighbor: AsId,
    /// What the neighbor is to us.
    pub relation: Relation,
}

/// The AS-level topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsGraph {
    nodes: Vec<AsNode>,
    /// Adjacency lists indexed by `AsId.0`. Kept sorted by neighbor id for
    /// deterministic iteration.
    adj: Vec<Vec<Adjacency>>,
}

impl AsGraph {
    /// An empty graph.
    pub fn new() -> Self {
        AsGraph {
            nodes: Vec::new(),
            adj: Vec::new(),
        }
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, tier: Tier, city: CityId) -> AsId {
        let id = AsId(self.nodes.len() as u32);
        self.nodes.push(AsNode { id, tier, city });
        self.adj.push(Vec::new());
        id
    }

    /// Connect `a` and `b` with `a_to_b` describing what `b` is to `a`
    /// (e.g. `Relation::Customer` means `b` is `a`'s customer).
    ///
    /// # Panics
    /// Panics if the edge already exists or on a self-loop.
    pub fn add_edge(&mut self, a: AsId, b: AsId, b_is_to_a: Relation) {
        assert_ne!(a, b, "self-loop at {a}");
        assert!(
            !self.are_neighbors(a, b),
            "duplicate edge between {a} and {b}"
        );
        self.adj[a.0 as usize].push(Adjacency {
            neighbor: b,
            relation: b_is_to_a,
        });
        self.adj[b.0 as usize].push(Adjacency {
            neighbor: a,
            relation: b_is_to_a.flipped(),
        });
        self.adj[a.0 as usize].sort_by_key(|x| x.neighbor);
        self.adj[b.0 as usize].sort_by_key(|x| x.neighbor);
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, id: AsId) -> &AsNode {
        &self.nodes[id.0 as usize]
    }

    pub fn nodes(&self) -> impl Iterator<Item = &AsNode> {
        self.nodes.iter()
    }

    /// Neighbors of `id` with the relationship each has to `id`.
    pub fn neighbors(&self, id: AsId) -> &[Adjacency] {
        &self.adj[id.0 as usize]
    }

    pub fn are_neighbors(&self, a: AsId, b: AsId) -> bool {
        self.adj[a.0 as usize].iter().any(|x| x.neighbor == b)
    }

    /// The relationship `b` has to `a`, if adjacent.
    pub fn relation(&self, a: AsId, b: AsId) -> Option<Relation> {
        self.adj[a.0 as usize]
            .iter()
            .find(|x| x.neighbor == b)
            .map(|x| x.relation)
    }

    /// All ASes of a given tier, ascending by id.
    pub fn by_tier(&self, tier: Tier) -> Vec<AsId> {
        self.nodes
            .iter()
            .filter(|n| n.tier == tier)
            .map(|n| n.id)
            .collect()
    }

    /// One-way propagation delay between two adjacent or non-adjacent
    /// ASes' home cities (pure geography; the routing layer adds per-hop
    /// overhead).
    pub fn geo_delay(&self, a: AsId, b: AsId) -> rootcast_netsim::SimDuration {
        let ca = city(self.node(a).city);
        let cb = city(self.node(b).city);
        ca.propagation_delay(cb)
    }

    /// One-way last-mile ("access") delay inside an AS: the distance from
    /// an end host or vantage point to the AS's interconnection edge.
    /// Stub networks add a deterministic 2–20 ms (DSL/cable/wireless
    /// spread); transit networks are effectively at the edge already.
    /// This is what lifts baseline anycast RTTs from near-zero to the
    /// tens of milliseconds RIPE Atlas actually measures.
    pub fn access_delay(&self, a: AsId) -> rootcast_netsim::SimDuration {
        use rootcast_netsim::stats::mix64;
        match self.node(a).tier {
            Tier::Stub => {
                let ms = 2_000_000 + mix64(u64::from(a.0) ^ 0xACCE55) % 18_000_000;
                rootcast_netsim::SimDuration::from_nanos(ms)
            }
            Tier::Tier2 => rootcast_netsim::SimDuration::from_micros(500),
            Tier::Tier1 => rootcast_netsim::SimDuration::from_micros(200),
        }
    }

    /// Number of edges (each counted once).
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Check structural invariants; used by tests and the generator.
    ///
    /// Invariants: adjacency symmetry with flipped relations, sorted
    /// adjacency lists, stubs have no customers.
    pub fn validate(&self) -> Result<(), String> {
        for n in &self.nodes {
            let mut prev: Option<AsId> = None;
            for adj in self.neighbors(n.id) {
                if let Some(p) = prev {
                    if adj.neighbor <= p {
                        return Err(format!("adjacency of {} not sorted", n.id));
                    }
                }
                prev = Some(adj.neighbor);
                let back = self
                    .relation(adj.neighbor, n.id)
                    .ok_or_else(|| format!("asymmetric edge {} -> {}", n.id, adj.neighbor))?;
                if back != adj.relation.flipped() {
                    return Err(format!(
                        "relation mismatch on edge {} - {}",
                        n.id, adj.neighbor
                    ));
                }
            }
            if n.tier == Tier::Stub {
                let has_customer = self
                    .neighbors(n.id)
                    .iter()
                    .any(|a| a.relation == Relation::Customer);
                if has_customer {
                    return Err(format!("stub {} has a customer", n.id));
                }
            }
        }
        Ok(())
    }
}

impl Default for AsGraph {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::city_by_code;

    fn two_node_graph() -> (AsGraph, AsId, AsId) {
        let mut g = AsGraph::new();
        let (ams, _) = city_by_code("AMS").unwrap();
        let (lhr, _) = city_by_code("LHR").unwrap();
        let a = g.add_node(Tier::Tier1, ams);
        let b = g.add_node(Tier::Stub, lhr);
        g.add_edge(a, b, Relation::Customer);
        (g, a, b)
    }

    #[test]
    fn edge_is_symmetric_with_flipped_relation() {
        let (g, a, b) = two_node_graph();
        assert_eq!(g.relation(a, b), Some(Relation::Customer));
        assert_eq!(g.relation(b, a), Some(Relation::Provider));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn relation_flip_is_involutive() {
        for r in [Relation::Customer, Relation::Peer, Relation::Provider] {
            assert_eq!(r.flipped().flipped(), r);
        }
        assert_eq!(Relation::Peer.flipped(), Relation::Peer);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        let (mut g, a, b) = two_node_graph();
        g.add_edge(a, b, Relation::Peer);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let (mut g, a, _) = two_node_graph();
        g.add_edge(a, a, Relation::Peer);
    }

    #[test]
    fn validate_catches_stub_with_customer() {
        let mut g = AsGraph::new();
        let (ams, _) = city_by_code("AMS").unwrap();
        let a = g.add_node(Tier::Stub, ams);
        let b = g.add_node(Tier::Stub, ams);
        // b is a's customer: invalid for a stub.
        g.add_edge(a, b, Relation::Customer);
        assert!(g.validate().is_err());
    }

    #[test]
    fn by_tier_filters() {
        let (g, a, b) = two_node_graph();
        assert_eq!(g.by_tier(Tier::Tier1), vec![a]);
        assert_eq!(g.by_tier(Tier::Stub), vec![b]);
        assert!(g.by_tier(Tier::Tier2).is_empty());
    }

    #[test]
    fn geo_delay_positive_between_cities() {
        let (g, a, b) = two_node_graph();
        assert!(g.geo_delay(a, b).as_nanos() > 0);
    }

    #[test]
    fn edge_count_counts_once() {
        let (g, _, _) = two_node_graph();
        assert_eq!(g.edge_count(), 1);
    }
}
