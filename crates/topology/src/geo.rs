//! Geography: cities, great-circle distances, propagation delay.
//!
//! Root-server sites are conventionally named by nearby airport code
//! (`K-AMS`, `E-NRT`, ...); the paper keeps that convention and so do we.
//! Every AS, vantage point, site, and botnet member is pinned to a city,
//! and wide-area latency is modeled as great-circle distance at two-thirds
//! of the speed of light (fiber) plus a small per-hop processing overhead
//! added by the routing layer.

use rootcast_netsim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in kilometers.
const EARTH_RADIUS_KM: f64 = 6371.0;

/// Speed of light in fiber, km per millisecond (≈ 2/3 · c).
const FIBER_KM_PER_MS: f64 = 200.0;

/// Broad world region; used to apply the RIPE-Atlas European bias and to
/// distribute botnet sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    Europe,
    NorthAmerica,
    SouthAmerica,
    Asia,
    Oceania,
    Africa,
    MiddleEast,
}

impl Region {
    /// All regions, in a fixed order.
    pub const ALL: [Region; 7] = [
        Region::Europe,
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Asia,
        Region::Oceania,
        Region::Africa,
        Region::MiddleEast,
    ];
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::Europe => "Europe",
            Region::NorthAmerica => "North America",
            Region::SouthAmerica => "South America",
            Region::Asia => "Asia",
            Region::Oceania => "Oceania",
            Region::Africa => "Africa",
            Region::MiddleEast => "Middle East",
        };
        f.write_str(s)
    }
}

/// A city that can host anycast sites, ASes, and vantage points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// Three-letter airport code, e.g. `AMS`.
    pub code: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    pub region: Region,
    /// Degrees north.
    pub lat: f64,
    /// Degrees east.
    pub lon: f64,
    /// Relative weight for Internet population (stub-AS placement and
    /// legitimate client density).
    pub population_weight: f64,
}

/// Index into the city catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CityId(pub u16);

/// Great-circle (haversine) distance between two points, km.
pub fn great_circle_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (la1, lo1, la2, lo2) = (
        lat1.to_radians(),
        lon1.to_radians(),
        lat2.to_radians(),
        lon2.to_radians(),
    );
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
}

impl City {
    /// Distance from this city to another, km.
    pub fn distance_km(&self, other: &City) -> f64 {
        great_circle_km(self.lat, self.lon, other.lat, other.lon)
    }

    /// One-way propagation delay to another city over fiber.
    pub fn propagation_delay(&self, other: &City) -> SimDuration {
        SimDuration::from_secs_f64(self.distance_km(other) / FIBER_KM_PER_MS / 1000.0)
    }
}

/// The built-in city catalog. Contains every airport code appearing in the
/// paper's figures (E-root and K-root site lists, H's two coasts, B's Los
/// Angeles home) plus enough additional cities to place all 500+ sites of
/// the thirteen letters.
///
/// Population weights are coarse (order-of-magnitude) Internet-user
/// weights; they shape where stub ASes, clients, and attackers live.
pub fn city_catalog() -> &'static [City] {
    use Region::*;
    // (code, name, region, lat, lon, weight)
    const CITIES: &[City] = &[
        // --- Europe (RIPE Atlas home turf; the VP bias lives here) ---
        City {
            code: "AMS",
            name: "Amsterdam",
            region: Europe,
            lat: 52.31,
            lon: 4.77,
            population_weight: 3.0,
        },
        City {
            code: "FRA",
            name: "Frankfurt",
            region: Europe,
            lat: 50.04,
            lon: 8.56,
            population_weight: 3.0,
        },
        City {
            code: "LHR",
            name: "London",
            region: Europe,
            lat: 51.47,
            lon: -0.45,
            population_weight: 3.0,
        },
        City {
            code: "CDG",
            name: "Paris",
            region: Europe,
            lat: 49.01,
            lon: 2.55,
            population_weight: 2.5,
        },
        City {
            code: "VIE",
            name: "Vienna",
            region: Europe,
            lat: 48.11,
            lon: 16.57,
            population_weight: 1.2,
        },
        City {
            code: "ZRH",
            name: "Zurich",
            region: Europe,
            lat: 47.46,
            lon: 8.55,
            population_weight: 1.0,
        },
        City {
            code: "WAW",
            name: "Warsaw",
            region: Europe,
            lat: 52.17,
            lon: 20.97,
            population_weight: 1.2,
        },
        City {
            code: "BER",
            name: "Berlin",
            region: Europe,
            lat: 52.56,
            lon: 13.29,
            population_weight: 1.5,
        },
        City {
            code: "MAN",
            name: "Manchester",
            region: Europe,
            lat: 53.35,
            lon: -2.28,
            population_weight: 0.8,
        },
        City {
            code: "LBA",
            name: "Leeds",
            region: Europe,
            lat: 53.87,
            lon: -1.66,
            population_weight: 0.4,
        },
        City {
            code: "TRN",
            name: "Turin",
            region: Europe,
            lat: 45.20,
            lon: 7.65,
            population_weight: 0.6,
        },
        City {
            code: "MIL",
            name: "Milan",
            region: Europe,
            lat: 45.63,
            lon: 8.72,
            population_weight: 1.0,
        },
        City {
            code: "PRG",
            name: "Prague",
            region: Europe,
            lat: 50.10,
            lon: 14.26,
            population_weight: 0.8,
        },
        City {
            code: "GVA",
            name: "Geneva",
            region: Europe,
            lat: 46.24,
            lon: 6.11,
            population_weight: 0.5,
        },
        City {
            code: "ATH",
            name: "Athens",
            region: Europe,
            lat: 37.94,
            lon: 23.94,
            population_weight: 0.6,
        },
        City {
            code: "RIX",
            name: "Riga",
            region: Europe,
            lat: 56.92,
            lon: 23.97,
            population_weight: 0.3,
        },
        City {
            code: "BUD",
            name: "Budapest",
            region: Europe,
            lat: 47.44,
            lon: 19.26,
            population_weight: 0.6,
        },
        City {
            code: "BEG",
            name: "Belgrade",
            region: Europe,
            lat: 44.82,
            lon: 20.31,
            population_weight: 0.4,
        },
        City {
            code: "HEL",
            name: "Helsinki",
            region: Europe,
            lat: 60.32,
            lon: 24.96,
            population_weight: 0.5,
        },
        City {
            code: "POZ",
            name: "Poznan",
            region: Europe,
            lat: 52.42,
            lon: 16.83,
            population_weight: 0.3,
        },
        City {
            code: "KBP",
            name: "Kyiv",
            region: Europe,
            lat: 50.34,
            lon: 30.89,
            population_weight: 0.8,
        },
        City {
            code: "LED",
            name: "St. Petersburg",
            region: Europe,
            lat: 59.80,
            lon: 30.26,
            population_weight: 1.0,
        },
        City {
            code: "OVB",
            name: "Novosibirsk",
            region: Europe,
            lat: 55.01,
            lon: 82.65,
            population_weight: 0.4,
        },
        City {
            code: "ARC",
            name: "Archangelsk",
            region: Europe,
            lat: 64.60,
            lon: 40.72,
            population_weight: 0.3,
        },
        City {
            code: "REY",
            name: "Reykjavik",
            region: Europe,
            lat: 64.13,
            lon: -21.94,
            population_weight: 0.15,
        },
        City {
            code: "OSL",
            name: "Oslo",
            region: Europe,
            lat: 60.19,
            lon: 11.10,
            population_weight: 0.5,
        },
        City {
            code: "ARN",
            name: "Stockholm",
            region: Europe,
            lat: 59.65,
            lon: 17.92,
            population_weight: 0.7,
        },
        City {
            code: "CPH",
            name: "Copenhagen",
            region: Europe,
            lat: 55.62,
            lon: 12.65,
            population_weight: 0.6,
        },
        City {
            code: "MAD",
            name: "Madrid",
            region: Europe,
            lat: 40.47,
            lon: -3.56,
            population_weight: 1.2,
        },
        City {
            code: "BCN",
            name: "Barcelona",
            region: Europe,
            lat: 41.30,
            lon: 2.08,
            population_weight: 0.8,
        },
        City {
            code: "LIS",
            name: "Lisbon",
            region: Europe,
            lat: 38.77,
            lon: -9.13,
            population_weight: 0.5,
        },
        City {
            code: "DUB",
            name: "Dublin",
            region: Europe,
            lat: 53.42,
            lon: -6.27,
            population_weight: 0.5,
        },
        City {
            code: "BRU",
            name: "Brussels",
            region: Europe,
            lat: 50.90,
            lon: 4.48,
            population_weight: 0.7,
        },
        City {
            code: "ROM",
            name: "Rome",
            region: Europe,
            lat: 41.80,
            lon: 12.25,
            population_weight: 1.0,
        },
        City {
            code: "SOF",
            name: "Sofia",
            region: Europe,
            lat: 42.70,
            lon: 23.41,
            population_weight: 0.4,
        },
        City {
            code: "BUH",
            name: "Bucharest",
            region: Europe,
            lat: 44.57,
            lon: 26.09,
            population_weight: 0.5,
        },
        City {
            code: "IST",
            name: "Istanbul",
            region: Europe,
            lat: 41.26,
            lon: 28.74,
            population_weight: 1.2,
        },
        City {
            code: "MOW",
            name: "Moscow",
            region: Europe,
            lat: 55.97,
            lon: 37.41,
            population_weight: 1.5,
        },
        City {
            code: "PLX",
            name: "Semey",
            region: Europe,
            lat: 50.35,
            lon: 80.23,
            population_weight: 0.1,
        },
        City {
            code: "KAE",
            name: "Kajaani",
            region: Europe,
            lat: 64.29,
            lon: 27.69,
            population_weight: 0.1,
        },
        City {
            code: "AVN",
            name: "Avignon",
            region: Europe,
            lat: 43.91,
            lon: 4.90,
            population_weight: 0.2,
        },
        // --- North America ---
        City {
            code: "IAD",
            name: "Washington DC",
            region: NorthAmerica,
            lat: 38.94,
            lon: -77.46,
            population_weight: 2.0,
        },
        City {
            code: "LGA",
            name: "New York",
            region: NorthAmerica,
            lat: 40.78,
            lon: -73.87,
            population_weight: 2.5,
        },
        City {
            code: "ORD",
            name: "Chicago",
            region: NorthAmerica,
            lat: 41.98,
            lon: -87.90,
            population_weight: 1.8,
        },
        City {
            code: "ATL",
            name: "Atlanta",
            region: NorthAmerica,
            lat: 33.64,
            lon: -84.43,
            population_weight: 1.5,
        },
        City {
            code: "MIA",
            name: "Miami",
            region: NorthAmerica,
            lat: 25.79,
            lon: -80.29,
            population_weight: 1.2,
        },
        City {
            code: "SEA",
            name: "Seattle",
            region: NorthAmerica,
            lat: 47.45,
            lon: -122.31,
            population_weight: 1.2,
        },
        City {
            code: "PAO",
            name: "Palo Alto",
            region: NorthAmerica,
            lat: 37.46,
            lon: -122.12,
            population_weight: 1.5,
        },
        City {
            code: "BUR",
            name: "Burbank",
            region: NorthAmerica,
            lat: 34.20,
            lon: -118.36,
            population_weight: 0.8,
        },
        City {
            code: "LAX",
            name: "Los Angeles",
            region: NorthAmerica,
            lat: 33.94,
            lon: -118.41,
            population_weight: 2.0,
        },
        City {
            code: "SAN",
            name: "San Diego",
            region: NorthAmerica,
            lat: 32.73,
            lon: -117.19,
            population_weight: 0.8,
        },
        City {
            code: "BWI",
            name: "Baltimore",
            region: NorthAmerica,
            lat: 39.18,
            lon: -76.67,
            population_weight: 0.7,
        },
        City {
            code: "SNA",
            name: "Santa Ana",
            region: NorthAmerica,
            lat: 33.68,
            lon: -117.87,
            population_weight: 0.5,
        },
        City {
            code: "MKC",
            name: "Kansas City",
            region: NorthAmerica,
            lat: 39.12,
            lon: -94.59,
            population_weight: 0.5,
        },
        City {
            code: "RNO",
            name: "Reno",
            region: NorthAmerica,
            lat: 39.50,
            lon: -119.77,
            population_weight: 0.3,
        },
        City {
            code: "NLV",
            name: "Las Vegas",
            region: NorthAmerica,
            lat: 36.21,
            lon: -115.20,
            population_weight: 0.6,
        },
        City {
            code: "DFW",
            name: "Dallas",
            region: NorthAmerica,
            lat: 32.90,
            lon: -97.04,
            population_weight: 1.2,
        },
        City {
            code: "DEN",
            name: "Denver",
            region: NorthAmerica,
            lat: 39.86,
            lon: -104.67,
            population_weight: 0.8,
        },
        City {
            code: "YYZ",
            name: "Toronto",
            region: NorthAmerica,
            lat: 43.68,
            lon: -79.63,
            population_weight: 1.0,
        },
        City {
            code: "YVR",
            name: "Vancouver",
            region: NorthAmerica,
            lat: 49.19,
            lon: -123.18,
            population_weight: 0.6,
        },
        City {
            code: "MEX",
            name: "Mexico City",
            region: NorthAmerica,
            lat: 19.44,
            lon: -99.07,
            population_weight: 1.2,
        },
        // --- South America ---
        City {
            code: "GRU",
            name: "Sao Paulo",
            region: SouthAmerica,
            lat: -23.44,
            lon: -46.47,
            population_weight: 1.5,
        },
        City {
            code: "EZE",
            name: "Buenos Aires",
            region: SouthAmerica,
            lat: -34.82,
            lon: -58.54,
            population_weight: 0.9,
        },
        City {
            code: "BOG",
            name: "Bogota",
            region: SouthAmerica,
            lat: 4.70,
            lon: -74.15,
            population_weight: 0.7,
        },
        City {
            code: "SCL",
            name: "Santiago",
            region: SouthAmerica,
            lat: -33.39,
            lon: -70.79,
            population_weight: 0.6,
        },
        // --- Asia ---
        City {
            code: "NRT",
            name: "Tokyo",
            region: Asia,
            lat: 35.76,
            lon: 140.39,
            population_weight: 2.2,
        },
        City {
            code: "QPG",
            name: "Singapore",
            region: Asia,
            lat: 1.36,
            lon: 103.91,
            population_weight: 1.2,
        },
        City {
            code: "SIN",
            name: "Singapore Changi",
            region: Asia,
            lat: 1.36,
            lon: 103.99,
            population_weight: 1.0,
        },
        City {
            code: "HKG",
            name: "Hong Kong",
            region: Asia,
            lat: 22.31,
            lon: 113.91,
            population_weight: 1.5,
        },
        City {
            code: "ICN",
            name: "Seoul",
            region: Asia,
            lat: 37.46,
            lon: 126.44,
            population_weight: 1.5,
        },
        City {
            code: "PEK",
            name: "Beijing",
            region: Asia,
            lat: 40.08,
            lon: 116.58,
            population_weight: 3.0,
        },
        City {
            code: "PVG",
            name: "Shanghai",
            region: Asia,
            lat: 31.14,
            lon: 121.81,
            population_weight: 3.0,
        },
        City {
            code: "DEL",
            name: "Delhi",
            region: Asia,
            lat: 28.57,
            lon: 77.10,
            population_weight: 2.5,
        },
        City {
            code: "BOM",
            name: "Mumbai",
            region: Asia,
            lat: 19.09,
            lon: 72.87,
            population_weight: 2.2,
        },
        City {
            code: "TPE",
            name: "Taipei",
            region: Asia,
            lat: 25.08,
            lon: 121.23,
            population_weight: 1.0,
        },
        City {
            code: "KUL",
            name: "Kuala Lumpur",
            region: Asia,
            lat: 2.75,
            lon: 101.71,
            population_weight: 0.8,
        },
        City {
            code: "BKK",
            name: "Bangkok",
            region: Asia,
            lat: 13.69,
            lon: 100.75,
            population_weight: 1.0,
        },
        City {
            code: "CGK",
            name: "Jakarta",
            region: Asia,
            lat: -6.13,
            lon: 106.66,
            population_weight: 1.5,
        },
        // --- Oceania ---
        City {
            code: "SYD",
            name: "Sydney",
            region: Oceania,
            lat: -33.95,
            lon: 151.18,
            population_weight: 0.9,
        },
        City {
            code: "PER",
            name: "Perth",
            region: Oceania,
            lat: -31.94,
            lon: 115.97,
            population_weight: 0.3,
        },
        City {
            code: "BNE",
            name: "Brisbane",
            region: Oceania,
            lat: -27.38,
            lon: 153.12,
            population_weight: 0.4,
        },
        City {
            code: "AKL",
            name: "Auckland",
            region: Oceania,
            lat: -37.01,
            lon: 174.79,
            population_weight: 0.3,
        },
        // --- Africa ---
        City {
            code: "JNB",
            name: "Johannesburg",
            region: Africa,
            lat: -26.14,
            lon: 28.25,
            population_weight: 0.7,
        },
        City {
            code: "NBO",
            name: "Nairobi",
            region: Africa,
            lat: -1.32,
            lon: 36.93,
            population_weight: 0.5,
        },
        City {
            code: "KGL",
            name: "Kigali",
            region: Africa,
            lat: -1.97,
            lon: 30.14,
            population_weight: 0.15,
        },
        City {
            code: "LAD",
            name: "Luanda",
            region: Africa,
            lat: -8.86,
            lon: 13.23,
            population_weight: 0.2,
        },
        City {
            code: "CAI",
            name: "Cairo",
            region: Africa,
            lat: 30.12,
            lon: 31.41,
            population_weight: 0.9,
        },
        City {
            code: "LOS",
            name: "Lagos",
            region: Africa,
            lat: 6.58,
            lon: 3.32,
            population_weight: 0.8,
        },
        // --- Middle East ---
        City {
            code: "DXB",
            name: "Dubai",
            region: MiddleEast,
            lat: 25.25,
            lon: 55.36,
            population_weight: 0.7,
        },
        City {
            code: "DOH",
            name: "Doha",
            region: MiddleEast,
            lat: 25.27,
            lon: 51.61,
            population_weight: 0.3,
        },
        City {
            code: "THR",
            name: "Tehran",
            region: MiddleEast,
            lat: 35.69,
            lon: 51.31,
            population_weight: 0.9,
        },
        City {
            code: "ABO",
            name: "Abu Dhabi",
            region: MiddleEast,
            lat: 24.43,
            lon: 54.65,
            population_weight: 0.3,
        },
        City {
            code: "TLV",
            name: "Tel Aviv",
            region: MiddleEast,
            lat: 32.01,
            lon: 34.89,
            population_weight: 0.5,
        },
        City {
            code: "NLV2",
            name: "Nicosia",
            region: MiddleEast,
            lat: 35.15,
            lon: 33.28,
            population_weight: 0.2,
        },
    ];
    CITIES
}

/// Look up a city by airport code. Codes are unique in the catalog.
pub fn city_by_code(code: &str) -> Option<(CityId, &'static City)> {
    city_catalog()
        .iter()
        .enumerate()
        .find(|(_, c)| c.code == code)
        .map(|(i, c)| (CityId(i as u16), c))
}

/// The city at `id`.
///
/// # Panics
/// Panics if the id is out of range (ids are only produced by this module).
pub fn city(id: CityId) -> &'static City {
    &city_catalog()[id.0 as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_codes_are_unique() {
        let cat = city_catalog();
        let mut codes: Vec<&str> = cat.iter().map(|c| c.code).collect();
        codes.sort_unstable();
        let before = codes.len();
        codes.dedup();
        assert_eq!(before, codes.len(), "duplicate airport codes in catalog");
    }

    #[test]
    fn catalog_covers_paper_sites() {
        // Every site code named in the paper's figures must exist.
        for code in [
            "AMS", "FRA", "LHR", "ARC", "CDG", "VIE", "QPG", "ORD", "KBP", "ZRH", "IAD", "PAO",
            "WAW", "ATL", "BER", "SYD", "SEA", "NLV", "MIA", "NRT", "TRN", "AKL", "MAN", "BUR",
            "LGA", "PER", "SNA", "LBA", "SIN", "DXB", "KGL", "LAD", "LED", "MIL", "BNE", "PRG",
            "GVA", "ATH", "MKC", "RIX", "THR", "BUD", "KAE", "BEG", "HEL", "PLX", "OVB", "POZ",
            "ABO", "AVN", "BCN", "REY", "DOH", "RNO", "DEL", "BWI", "SAN", "LAX",
        ] {
            assert!(city_by_code(code).is_some(), "missing city {code}");
        }
    }

    #[test]
    fn distances_are_sane() {
        let (_, ams) = city_by_code("AMS").unwrap();
        let (_, lhr) = city_by_code("LHR").unwrap();
        let (_, nrt) = city_by_code("NRT").unwrap();
        let d_ams_lhr = ams.distance_km(lhr);
        let d_ams_nrt = ams.distance_km(nrt);
        assert!((300.0..500.0).contains(&d_ams_lhr), "AMS-LHR {d_ams_lhr}");
        assert!(
            (9000.0..10500.0).contains(&d_ams_nrt),
            "AMS-NRT {d_ams_nrt}"
        );
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let cat = city_catalog();
        let a = &cat[0];
        let b = &cat[40];
        assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
        assert!(a.distance_km(a) < 1e-9);
    }

    #[test]
    fn propagation_delay_scales_with_distance() {
        let (_, ams) = city_by_code("AMS").unwrap();
        let (_, syd) = city_by_code("SYD").unwrap();
        let d = ams.propagation_delay(syd);
        // ~16,600 km at 200 km/ms ≈ 83 ms one way.
        assert!(d.as_millis() > 60 && d.as_millis() < 110, "delay {d}");
    }

    #[test]
    fn region_display_names() {
        assert_eq!(Region::Europe.to_string(), "Europe");
        assert_eq!(Region::NorthAmerica.to_string(), "North America");
    }
}
