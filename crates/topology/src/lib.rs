//! # rootcast-topology
//!
//! AS-level Internet topology and geography model for the rootcast
//! reproduction of *"Anycast vs. DDoS"* (IMC 2016).
//!
//! The paper's phenomena — anycast catchments, site flips, regional bias
//! of RIPE Atlas, collateral damage in shared facilities — all live on top
//! of *where things are* (geography) and *who connects to whom on what
//! terms* (AS business relationships). This crate provides both:
//!
//! * [`geo`] — a catalog of world cities keyed by airport code (the
//!   convention used to name root-server sites), great-circle distance,
//!   and fiber propagation delay;
//! * [`graph`] — the AS graph with Gao–Rexford customer/peer/provider
//!   relationships;
//! * [`gen`] — a deterministic three-tier topology generator.
//!
//! Policy routing over the graph lives in `rootcast-bgp`.

pub mod gen;
pub mod geo;
pub mod graph;

pub use gen::{generate, TopologyError, TopologyParams};
pub use geo::{city, city_by_code, city_catalog, City, CityId, Region};
pub use graph::{Adjacency, AsGraph, AsId, AsNode, Relation, Tier};
