//! # rootcast-topology
//!
//! AS-level Internet topology and geography model for the rootcast
//! reproduction of *"Anycast vs. DDoS"* (IMC 2016).
//!
//! The paper's phenomena — anycast catchments, site flips, regional bias
//! of RIPE Atlas, collateral damage in shared facilities — all live on top
//! of *where things are* (geography) and *who connects to whom on what
//! terms* (AS business relationships). This crate provides both:
//!
//! * [`geo`] — a catalog of world cities keyed by airport code (the
//!   convention used to name root-server sites), great-circle distance,
//!   and fiber propagation delay;
//! * [`graph`] — the AS graph with Gao–Rexford customer/peer/provider
//!   relationships;
//! * [`gen`] — a deterministic three-tier topology generator.
//!
//! Policy routing over the graph lives in `rootcast-bgp`.

pub mod gen;
pub mod geo;
pub mod graph;

pub use gen::{generate, TopologyError, TopologyParams};
pub use geo::{city, city_by_code, city_catalog, City, CityId, Region};
pub use graph::{Adjacency, AsGraph, AsId, AsNode, Relation, Tier};

/// A function pointer with a stable name.
///
/// Scenario parameter structs hold plugin shapes (regional placement
/// bias, per-metro probe density) as plain `fn` pointers. Deriving
/// `Debug` on such a struct prints the pointer *address*, which ASLR
/// randomizes per process — and anything hashed from that `Debug`
/// output (scenario config hashes, sweep checkpoint manifests) silently
/// changes between runs. `NamedFn` carries the function together with a
/// caller-chosen name and debug-prints only the name, so two processes
/// agree on the representation while two *different* functions still
/// read differently.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct NamedFn<F> {
    pub name: &'static str,
    pub f: F,
}

impl<F> NamedFn<F> {
    pub fn new(name: &'static str, f: F) -> Self {
        NamedFn { name, f }
    }
}

impl<F> core::fmt::Debug for NamedFn<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "NamedFn({})", self.name)
    }
}
