//! The §2.2 thought experiment: withdraw vs. absorb, analytically.
//!
//! The paper grounds its empirical observations in a small model
//! (Figure 2): an anycast deployment of sites with capacities, clients
//! assigned to catchments, attackers with volumes, and a set of possible
//! *responses* — do nothing (absorb), withdraw specific routes, or
//! re-route a neighbor ISP. The score is **H ("happiness")**: how many
//! clients still receive service. This module implements the model in
//! general form, reproduces the paper's five cases, and powers the
//! ablation benches that sweep attack size against policy choice.

use crate::render::TextTable;
use serde::{Deserialize, Serialize};

/// One site in the model: a capacity and the set of client/attacker
/// groups currently routed to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSite {
    pub name: String,
    /// Capacity in attack-traffic units.
    pub capacity: f64,
}

/// A traffic group: either clients (counted toward happiness) or an
/// attacker (pure load). Groups sit behind an ISP that routing can move
/// between sites as a unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficGroup {
    pub name: String,
    /// Number of clients in the group (0 for pure attackers).
    pub clients: u32,
    /// Attack volume carried by the group (0 for pure client groups).
    pub attack: f64,
    /// Index of the site this group is currently routed to.
    pub site: usize,
}

/// A deployment state: sites plus routed groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    pub sites: Vec<ModelSite>,
    pub groups: Vec<TrafficGroup>,
}

impl Deployment {
    /// Total offered attack load at each site.
    pub fn site_load(&self) -> Vec<f64> {
        let mut load = vec![0.0; self.sites.len()];
        for g in &self.groups {
            load[g.site] += g.attack;
        }
        load
    }

    /// Happiness: clients whose site is not overloaded.
    ///
    /// Following the paper's simplification, client traffic is ignored
    /// against capacity (`c* ≪ A*`, massive overprovisioning): a site
    /// serves its clients iff `attack load ≤ capacity`.
    pub fn happiness(&self) -> u32 {
        let load = self.site_load();
        self.groups
            .iter()
            .filter(|g| load[g.site] <= self.sites[g.site].capacity)
            .map(|g| g.clients)
            .sum()
    }

    /// Move one group to another site (a route change for its ISP).
    pub fn with_group_moved(&self, group: usize, to_site: usize) -> Deployment {
        let mut d = self.clone();
        assert!(to_site < d.sites.len());
        d.groups[group].site = to_site;
        d
    }

    /// Withdraw a site entirely: all its groups move to `fallback`.
    pub fn with_site_withdrawn(&self, site: usize, fallback: usize) -> Deployment {
        assert_ne!(site, fallback, "withdrawal needs a different fallback");
        let mut d = self.clone();
        for g in &mut d.groups {
            if g.site == site {
                g.site = fallback;
            }
        }
        d
    }

    /// Exhaustive best response: try every assignment of groups to
    /// sites (the model is tiny) and return the maximum happiness.
    /// This is the upper bound an omniscient operator could reach.
    pub fn best_possible(&self) -> u32 {
        let n_sites = self.sites.len();
        let n_groups = self.groups.len();
        assert!(
            n_sites.pow(n_groups as u32) <= 1_000_000,
            "model too large for exhaustive search"
        );
        let mut best = 0;
        let mut assignment = vec![0usize; n_groups];
        loop {
            let mut d = self.clone();
            for (g, &s) in assignment.iter().enumerate() {
                d.groups[g].site = s;
            }
            best = best.max(d.happiness());
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == n_groups {
                    return best;
                }
                assignment[i] += 1;
                if assignment[i] < n_sites {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }
}

/// The paper's Figure 2 deployment: sites s1, s2 (equal capacity) and S3
/// (10× larger). Traffic arrives through ISPs, and routing moves an ISP's
/// traffic *as a unit*: ISP0 carries client c0 together with attacker A0
/// (they share s1's catchment and cannot be separated — the crux of case
/// 5), ISP1 carries c1 together with A1, and c2/c3 are clean ISPs at s2
/// and S3.
pub fn paper_deployment(s1_capacity: f64, a0: f64, a1: f64) -> Deployment {
    Deployment {
        sites: vec![
            ModelSite {
                name: "s1".into(),
                capacity: s1_capacity,
            },
            ModelSite {
                name: "s2".into(),
                capacity: s1_capacity,
            },
            ModelSite {
                name: "S3".into(),
                capacity: 10.0 * s1_capacity,
            },
        ],
        groups: vec![
            TrafficGroup {
                name: "ISP0 (c0+A0)".into(),
                clients: 1,
                attack: a0,
                site: 0,
            },
            TrafficGroup {
                name: "ISP1 (c1+A1)".into(),
                clients: 1,
                attack: a1,
                site: 0,
            },
            TrafficGroup {
                name: "c2".into(),
                clients: 1,
                attack: 0.0,
                site: 1,
            },
            TrafficGroup {
                name: "c3".into(),
                clients: 1,
                attack: 0.0,
                site: 2,
            },
        ],
    }
}

/// The strategies the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Do nothing: overloaded sites become degraded absorbers.
    Absorb,
    /// s1 withdraws the route serving ISP1, shifting c1+A1 to s2
    /// (case 2's move).
    WithdrawIsp1ToS2,
    /// s1 and s2 withdraw everything; S3 serves all (case 3's move).
    WithdrawSmallSites,
    /// Re-route ISP1 (c1+A1) to the big site S3 (case 4's move).
    RerouteIsp1ToS3,
}

impl Strategy {
    pub const ALL: [Strategy; 4] = [
        Strategy::Absorb,
        Strategy::WithdrawIsp1ToS2,
        Strategy::WithdrawSmallSites,
        Strategy::RerouteIsp1ToS3,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Strategy::Absorb => "absorb",
            Strategy::WithdrawIsp1ToS2 => "withdraw ISP1 -> s2",
            Strategy::WithdrawSmallSites => "withdraw s1+s2 -> S3",
            Strategy::RerouteIsp1ToS3 => "reroute ISP1 -> S3",
        }
    }

    /// Apply to the paper deployment (group 1 is ISP1).
    pub fn apply(self, d: &Deployment) -> Deployment {
        match self {
            Strategy::Absorb => d.clone(),
            Strategy::WithdrawIsp1ToS2 => d.with_group_moved(1, 1),
            Strategy::WithdrawSmallSites => d.with_site_withdrawn(0, 2).with_site_withdrawn(1, 2),
            Strategy::RerouteIsp1ToS3 => d.with_group_moved(1, 2),
        }
    }
}

/// One row of the case analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseOutcome {
    pub case: &'static str,
    pub a0: f64,
    pub a1: f64,
    /// Happiness per strategy, in [`Strategy::ALL`] order.
    pub happiness: Vec<u32>,
    /// Best achievable by any assignment.
    pub best_possible: u32,
}

/// Reproduce the paper's five cases with `s1 = s2 = 1`, `S3 = 10`.
///
/// | case | condition | expected best H |
/// |------|-----------|-----------------|
/// | 1 | A0+A1 < s1 | 4 |
/// | 2 | A0+A1 > s1, A0 < s1, A1 < s2 | 4 (withdraw ISP1) |
/// | 3 | A0 > s1, A0+A1 < S3 | 4 (withdraw small sites) |
/// | 4 | A0 > s1, A0+A1 > S3, A1 < S3 | 3 (reroute ISP1) |
/// | 5 | A0 > S3 | 2 (absorb) |
pub fn paper_cases() -> Vec<CaseOutcome> {
    let cases: [(&'static str, f64, f64); 5] = [
        ("1: tiny attack", 0.2, 0.2),
        ("2: s1 overloaded, either half fits", 0.7, 0.7),
        ("3: A0 kills any small site", 3.0, 3.0),
        ("4: combined kills S3, A1 alone fits", 6.0, 6.0),
        ("5: attack kills even S3", 11.0, 11.0),
    ];
    cases
        .iter()
        .map(|&(case, a0, a1)| {
            let d = paper_deployment(1.0, a0, a1);
            let happiness = Strategy::ALL
                .iter()
                .map(|s| s.apply(&d).happiness())
                .collect();
            CaseOutcome {
                case,
                a0,
                a1,
                happiness,
                best_possible: d.best_possible(),
            }
        })
        .collect()
}

/// Render the case table (the quantitative form of §2.2's discussion).
pub fn render_cases(cases: &[CaseOutcome]) -> TextTable {
    let mut headers = vec!["case", "A0", "A1"];
    headers.extend(Strategy::ALL.iter().map(|s| s.name()));
    headers.push("best");
    let mut t = TextTable::new("Figure 2 / §2.2: policy model happiness", &headers);
    for c in cases {
        let mut row = vec![c.case.to_string(), format!("{}", c.a0), format!("{}", c.a1)];
        row.extend(c.happiness.iter().map(|h| h.to_string()));
        row.push(c.best_possible.to_string());
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(strategy: Strategy, a0: f64, a1: f64) -> u32 {
        strategy.apply(&paper_deployment(1.0, a0, a1)).happiness()
    }

    #[test]
    fn case1_no_harm() {
        // A0+A1 < s1: everyone happy without action.
        assert_eq!(h(Strategy::Absorb, 0.2, 0.2), 4);
    }

    #[test]
    fn case2_withdraw_helps() {
        // s1 overloaded by A0+A1 but each half fits one small site.
        assert_eq!(h(Strategy::Absorb, 0.7, 0.7), 2);
        assert_eq!(h(Strategy::WithdrawIsp1ToS2, 0.7, 0.7), 4);
    }

    #[test]
    fn case3_fold_into_big_site() {
        // A0 alone kills a small site; S3 swallows everything.
        assert_eq!(h(Strategy::Absorb, 3.0, 3.0), 2);
        assert_eq!(h(Strategy::WithdrawIsp1ToS2, 3.0, 3.0), 1);
        assert_eq!(h(Strategy::WithdrawSmallSites, 3.0, 3.0), 4);
    }

    #[test]
    fn case4_reroute_saves_three() {
        // A0+A1 > S3 but A1 alone fits S3: sacrifice c0, save c1.
        assert_eq!(h(Strategy::Absorb, 6.0, 6.0), 2);
        // Folding everything into S3 now kills S3 too: even c3 is lost.
        assert_eq!(h(Strategy::WithdrawSmallSites, 6.0, 6.0), 0);
        assert_eq!(h(Strategy::RerouteIsp1ToS3, 6.0, 6.0), 3);
    }

    #[test]
    fn case5_absorb_is_optimal() {
        // A0 = A1 > S3: any site that hears either ISP dies. Containing
        // both at s1 sacrifices c0 and c1 but protects c2 and c3.
        assert_eq!(h(Strategy::Absorb, 11.0, 11.0), 2);
        assert_eq!(h(Strategy::WithdrawSmallSites, 11.0, 11.0), 0);
        assert_eq!(h(Strategy::RerouteIsp1ToS3, 11.0, 11.0), 1);
        // No assignment beats containment.
        let d = paper_deployment(1.0, 11.0, 11.0);
        assert_eq!(d.best_possible(), 2);
    }

    #[test]
    fn strategies_match_best_possible_in_each_case() {
        // The paper's claim: in every case some listed strategy reaches
        // the omniscient optimum.
        for c in paper_cases() {
            let best_listed = *c.happiness.iter().max().unwrap();
            assert_eq!(
                best_listed, c.best_possible,
                "case {}: strategies {:?} vs best {}",
                c.case, c.happiness, c.best_possible
            );
        }
    }

    #[test]
    fn less_can_be_more() {
        // §2.2: "although perhaps counterintuitive, less can be more" —
        // withdrawing a route (serving with FEWER sites) increases H.
        let d = paper_deployment(1.0, 0.7, 0.7);
        assert!(Strategy::WithdrawIsp1ToS2.apply(&d).happiness() > d.happiness());
    }

    #[test]
    fn render_produces_five_rows() {
        let t = render_cases(&paper_cases());
        assert_eq!(t.rows.len(), 5);
        assert!(t.to_string().contains("absorb"));
    }

    #[test]
    fn happiness_counts_only_reachable_clients() {
        let mut d = paper_deployment(1.0, 0.0, 0.0);
        assert_eq!(d.happiness(), 4);
        // Overload S3 directly.
        d.groups.push(TrafficGroup {
            name: "A2".into(),
            clients: 0,
            attack: 11.0,
            site: 2,
        });
        assert_eq!(d.happiness(), 3, "c3 lost when S3 is overwhelmed");
    }

    #[test]
    fn with_site_withdrawn_moves_all_groups() {
        let d = paper_deployment(1.0, 1.0, 1.0).with_site_withdrawn(0, 2);
        assert!(d.groups.iter().all(|g| g.site != 0));
    }
}
