//! Scenario configuration: every knob of a run, with the canonical
//! Nov 30 – Dec 1 2015 reproduction and a scaled-down test variant.

use crate::deployment::facilities;
use crate::engine::faults::{FaultKind, FaultPlan};
use crate::engine::trace::TraceConfig;
use rootcast_atlas::{FleetParams, PipelineConfig};
use rootcast_attack::{AttackSchedule, BotnetParams, DEFAULT_LEGIT_TOTAL_QPS};
use rootcast_dns::{Letter, Name};
use rootcast_netsim::{SimDuration, SimTime};
use rootcast_topology::TopologyParams;
use std::fmt;

/// A scenario configuration that fails its invariants, with enough
/// context to fix the offending knob. Returned by
/// [`ScenarioConfig::validate`] and surfaced through
/// [`RootcastError`](crate::error::RootcastError) by the driver.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Horizon, cadence, or interval invariants broken.
    BadTiming(String),
    /// A rate or capacity is non-finite or out of range.
    BadRate(String),
    /// Fleet sizing or probability knobs out of range.
    BadFleet(String),
    /// An attack window fails to parse or is inconsistent.
    BadAttack(String),
    /// A fault spec in the plan is malformed.
    BadFault(String),
    /// The topology parameters fail their own invariants
    /// ([`TopologyParams::validate`](rootcast_topology::TopologyParams::validate)).
    BadTopology(String),
    /// The trace configuration is unusable.
    BadTrace(String),
    /// A site override names an unknown site or carries a bad value.
    BadOverride(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadTiming(m) => write!(f, "bad timing: {m}"),
            ConfigError::BadRate(m) => write!(f, "bad rate: {m}"),
            ConfigError::BadFleet(m) => write!(f, "bad fleet: {m}"),
            ConfigError::BadAttack(m) => write!(f, "bad attack window: {m}"),
            ConfigError::BadFault(m) => write!(f, "bad fault spec: {m}"),
            ConfigError::BadTopology(m) => write!(f, "bad topology: {m}"),
            ConfigError::BadTrace(m) => write!(f, "bad trace config: {m}"),
            ConfigError::BadOverride(m) => write!(f, "bad site override: {m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A probability knob: finite and within `[0, 1]`.
fn check_fraction(name: &str, v: f64) -> Result<(), ConfigError> {
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        return Err(ConfigError::BadFleet(format!(
            "{name} must be a probability in [0, 1], got {v}"
        )));
    }
    Ok(())
}

/// A per-run override of one deployed site's non-routing knobs
/// (capacity, buffer depth, stress policy), addressed by letter and
/// airport code. Applied after the shared substrate is cloned, so
/// sweeps can vary these without rebuilding topology, RIBs, or the
/// calibrated fleet — see
/// [`SiteTuning`](rootcast_anycast::SiteTuning) for why exactly these
/// fields are substrate-safe.
#[derive(Debug, Clone)]
pub struct SiteOverride {
    pub letter: Letter,
    /// Airport code of the site within the letter's deployment (`LHR`).
    pub site: String,
    pub tuning: rootcast_anycast::SiteTuning,
}

impl SiteOverride {
    pub fn new(letter: Letter, site: &str, tuning: rootcast_anycast::SiteTuning) -> SiteOverride {
        SiteOverride {
            letter,
            site: site.to_ascii_uppercase(),
            tuning,
        }
    }
}

/// Full scenario configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub seed: u64,
    pub topology: TopologyParams,
    pub fleet: FleetParams,
    pub botnet: BotnetParams,
    pub attack: AttackSchedule,
    /// Analysis horizon (the paper's window: 48 h from Nov 30 00:00).
    pub horizon: SimTime,
    /// Fluid model step; must divide the probe wheel minute.
    pub fluid_step: SimDuration,
    /// Probe interval for every letter except A.
    pub probe_interval: SimDuration,
    /// A-root's (slower) probe interval at event time.
    pub a_probe_interval: SimDuration,
    /// Total legitimate root-query load across all letters, q/s.
    pub legit_total_qps: f64,
    /// Resolver preference refresh period.
    pub resolver_update: SimDuration,
    pub pipeline: PipelineConfig,
    /// Number of BGPmon-style collector peers (paper: 152).
    pub n_collector_peers: usize,
    /// Capacity of each shared facility link, q/s: (facility, capacity).
    pub facility_capacities: Vec<(rootcast_anycast::FacilityId, f64)>,
    /// Mean time between background maintenance withdrawals (route
    /// churn noise visible in Figure 9 outside the events); None = off.
    pub maintenance_mean: Option<SimDuration>,
    /// Include the .nl collateral-damage service.
    pub include_nl: bool,
    /// Legitimate .nl query load, q/s (both anycast sites combined).
    pub nl_qps: f64,
    /// Scheduled fault injection (empty by default: no faults, and the
    /// run is bit-identical to one without the injector subsystem).
    pub faults: FaultPlan,
    /// Per-run overrides of deployed sites' non-routing knobs
    /// (capacity / buffer / stress policy), applied after the substrate
    /// is built. Empty by default. These do not enter
    /// [`Self::substrate_key`]: two configs differing only here can
    /// share one substrate.
    pub site_overrides: Vec<SiteOverride>,
    /// Run the hot paths through their reference implementations instead
    /// of the cached/fused kernels: catchment indices are invalidated
    /// every tick, probes take the string round-trip path, and collectors
    /// re-scan full tables. Outputs are bit-identical either way — this
    /// toggle exists so the golden equivalence tests can prove it.
    pub reference_kernels: bool,
    /// Structured event tracing (off by default). Enabling it never
    /// changes simulation outputs: the trace is an observer, and the
    /// determinism suite pins trace-on and trace-off runs bit-identical.
    pub trace: TraceConfig,
}

impl ScenarioConfig {
    /// The canonical full-scale reproduction: 48 h, ~9300 VPs, 5 Mq/s
    /// per attacked letter.
    pub fn nov2015() -> ScenarioConfig {
        ScenarioConfig {
            seed: 20151130,
            topology: TopologyParams::default(),
            fleet: FleetParams::default(),
            botnet: BotnetParams::default(),
            attack: AttackSchedule::nov2015(5_000_000.0),
            horizon: SimTime::from_hours(48),
            fluid_step: SimDuration::from_mins(1),
            probe_interval: SimDuration::from_mins(4),
            a_probe_interval: SimDuration::from_mins(30),
            legit_total_qps: DEFAULT_LEGIT_TOTAL_QPS,
            resolver_update: SimDuration::from_mins(10),
            pipeline: PipelineConfig::paper_default(),
            n_collector_peers: 152,
            facility_capacities: vec![
                // Tuned against the canonical seed's attack exposure so
                // the Frankfurt link saturates once K-LHR's catchment
                // shifts into K-FRA, and Sydney saturates under E-SYD's
                // exposure — the couplings behind Figures 14 and 15.
                (facilities::FRA_SHARED, 95_000.0),
                (facilities::SYD_SHARED, 30_000.0),
            ],
            maintenance_mean: Some(SimDuration::from_mins(90)),
            include_nl: true,
            nl_qps: 80_000.0,
            faults: FaultPlan::none(),
            site_overrides: Vec::new(),
            reference_kernels: false,
            trace: TraceConfig::default(),
        }
    }

    /// A scaled-down configuration for tests and fast iteration: small
    /// topology, few hundred VPs, 12-hour horizon (covers event 1).
    pub fn small() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::nov2015();
        cfg.topology = TopologyParams {
            n_tier1: 6,
            n_tier2: 30,
            n_stub: 400,
            ..TopologyParams::default()
        };
        cfg.fleet = FleetParams::tiny(400);
        cfg.botnet.n_members = 120;
        cfg.horizon = SimTime::from_hours(12);
        cfg.pipeline.horizon = cfg.horizon;
        cfg.pipeline.rtt_subsample = 2;
        cfg
    }

    /// Digest of exactly the knobs the expensive immutable substrate
    /// (topology, deployments, baseline RIBs, botnet, fleet,
    /// calibration) is a function of: seed, topology, fleet, botnet,
    /// and `.nl` inclusion. Two configs with equal keys can share one
    /// [`Substrate`](crate::engine::Substrate); everything else
    /// (attack, faults, policies, capacities, rates, cadences) is
    /// applied per run. The sweep runner shards its runs by this key.
    ///
    /// FNV-1a over the `Debug` rendering of those fields — Rust's f64
    /// `Debug` is shortest-roundtrip, so distinct values never collide
    /// through formatting.
    pub fn substrate_key(&self) -> u64 {
        let repr = format!(
            "seed={};topology={:?};fleet={:?};botnet={:?};nl={}",
            self.seed, self.topology, self.fleet, self.botnet, self.include_nl
        );
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Check every invariant a run depends on. Called by
    /// [`run`](crate::sim::run) before any state is built, so a bad
    /// knob fails fast with a typed error instead of a mid-run panic.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.topology
            .validate()
            .map_err(|e| ConfigError::BadTopology(e.to_string()))?;
        if self.trace.enabled && self.trace.capacity == 0 {
            return Err(ConfigError::BadTrace(
                "enabled trace needs a positive capacity".into(),
            ));
        }
        if self.horizon <= SimTime::ZERO {
            return Err(ConfigError::BadTiming("horizon must be positive".into()));
        }
        if self.fluid_step.is_zero()
            || !SimDuration::from_mins(1)
                .as_nanos()
                .is_multiple_of(self.fluid_step.as_nanos())
        {
            return Err(ConfigError::BadTiming(format!(
                "fluid_step must be positive and divide one minute, got {:?}",
                self.fluid_step
            )));
        }
        for (name, iv) in [
            ("probe_interval", self.probe_interval),
            ("a_probe_interval", self.a_probe_interval),
        ] {
            if iv.is_zero() || iv.as_secs() % 60 != 0 {
                return Err(ConfigError::BadTiming(format!(
                    "{name} must be a positive whole number of minutes, got {iv:?}"
                )));
            }
        }
        if self.resolver_update.is_zero() {
            return Err(ConfigError::BadTiming(
                "resolver_update must be positive".into(),
            ));
        }
        if self.pipeline.bin.is_zero() {
            return Err(ConfigError::BadTiming(
                "pipeline.bin must be positive".into(),
            ));
        }
        for (name, rate) in [
            ("legit_total_qps", self.legit_total_qps),
            ("nl_qps", self.nl_qps),
        ] {
            if !rate.is_finite() || rate < 0.0 {
                return Err(ConfigError::BadRate(format!(
                    "{name} must be finite and non-negative, got {rate}"
                )));
            }
        }
        let mut seen = Vec::new();
        for &(fid, cap) in &self.facility_capacities {
            if !cap.is_finite() || cap <= 0.0 {
                return Err(ConfigError::BadRate(format!(
                    "facility #{} capacity must be finite and positive, got {cap}",
                    fid.0
                )));
            }
            if seen.contains(&fid) {
                return Err(ConfigError::BadRate(format!(
                    "facility #{} registered twice",
                    fid.0
                )));
            }
            seen.push(fid);
        }
        if self.fleet.n_vps == 0 {
            return Err(ConfigError::BadFleet("fleet needs at least one VP".into()));
        }
        check_fraction("old_firmware_fraction", self.fleet.old_firmware_fraction)?;
        check_fraction("hijacked_fraction", self.fleet.hijacked_fraction)?;
        check_fraction("flaky_fraction", self.fleet.flaky_fraction)?;
        for w in self.attack.windows() {
            if let Err(e) = Name::parse(&w.qname) {
                return Err(ConfigError::BadAttack(format!(
                    "qname {:?} does not parse: {e}",
                    w.qname
                )));
            }
            if !w.rate_qps.is_finite() || w.rate_qps < 0.0 {
                return Err(ConfigError::BadAttack(format!(
                    "rate {} q/s must be finite and non-negative",
                    w.rate_qps
                )));
            }
            if w.duration.is_zero() {
                return Err(ConfigError::BadAttack(
                    "window duration must be positive".into(),
                ));
            }
        }
        for ov in &self.site_overrides {
            if ov.site.is_empty() {
                return Err(ConfigError::BadOverride(format!(
                    "{}: empty site code",
                    ov.letter
                )));
            }
            if let Some(cap) = ov.tuning.capacity_qps {
                if !cap.is_finite() || cap <= 0.0 {
                    return Err(ConfigError::BadOverride(format!(
                        "{}-{}: capacity must be finite and positive, got {cap}",
                        ov.letter, ov.site
                    )));
                }
            }
            if let Some(buf) = ov.tuning.buffer_queries {
                if !buf.is_finite() || buf < 0.0 {
                    return Err(ConfigError::BadOverride(format!(
                        "{}-{}: buffer must be finite and non-negative, got {buf}",
                        ov.letter, ov.site
                    )));
                }
            }
        }
        for spec in &self.faults.faults {
            if spec.duration.is_zero() {
                return Err(ConfigError::BadFault(format!(
                    "{} has zero duration",
                    spec.kind
                )));
            }
            match &spec.kind {
                FaultKind::SiteCrash { site, .. } if site.is_empty() => {
                    return Err(ConfigError::BadFault("site code is empty".into()));
                }
                FaultKind::RssacCorrupt { factor, .. }
                    if !factor.is_finite() || !(0.0..=1.0).contains(factor) =>
                {
                    return Err(ConfigError::BadFault(format!(
                        "corrupt factor must be in [0, 1], got {factor}"
                    )));
                }
                FaultKind::ProbeDropout { fraction, .. }
                | FaultKind::FirmwareDowngrade { fraction }
                    if !fraction.is_finite() || !(0.0..=1.0).contains(fraction) =>
                {
                    return Err(ConfigError::BadFault(format!(
                        "fault fraction must be in [0, 1], got {fraction}"
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_configs_validate() {
        assert_eq!(ScenarioConfig::nov2015().validate(), Ok(()));
        assert_eq!(ScenarioConfig::small().validate(), Ok(()));
    }

    #[test]
    fn broken_knobs_are_rejected_with_typed_errors() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::ZERO;
        assert!(matches!(cfg.validate(), Err(ConfigError::BadTiming(_))));

        let mut cfg = ScenarioConfig::small();
        cfg.probe_interval = SimDuration::from_secs(90);
        assert!(matches!(cfg.validate(), Err(ConfigError::BadTiming(_))));

        let mut cfg = ScenarioConfig::small();
        cfg.legit_total_qps = f64::NAN;
        assert!(matches!(cfg.validate(), Err(ConfigError::BadRate(_))));

        let mut cfg = ScenarioConfig::small();
        cfg.facility_capacities.push((facilities::FRA_SHARED, 1.0));
        assert!(matches!(cfg.validate(), Err(ConfigError::BadRate(_))));

        let mut cfg = ScenarioConfig::small();
        cfg.fleet.hijacked_fraction = 1.5;
        assert!(matches!(cfg.validate(), Err(ConfigError::BadFleet(_))));

        let mut cfg = ScenarioConfig::small();
        cfg.attack = AttackSchedule::new(vec![rootcast_attack::AttackWindow {
            start: SimTime::from_mins(1),
            duration: SimDuration::from_mins(1),
            qname: "bad..name".into(),
            targets: AttackSchedule::nov2015_targets(),
            rate_qps: 1.0,
        }]);
        assert!(matches!(cfg.validate(), Err(ConfigError::BadAttack(_))));

        let mut cfg = ScenarioConfig::small();
        cfg.faults = FaultPlan::none().with(
            SimTime::from_mins(1),
            SimDuration::from_mins(5),
            FaultKind::ProbeDropout {
                fraction: f64::NAN,
                letters: vec![],
            },
        );
        assert!(matches!(cfg.validate(), Err(ConfigError::BadFault(_))));

        let mut cfg = ScenarioConfig::small();
        cfg.faults = FaultPlan::none().with(
            SimTime::from_mins(1),
            SimDuration::ZERO,
            FaultKind::RssacGap {
                letter: rootcast_dns::Letter::H,
            },
        );
        assert!(matches!(cfg.validate(), Err(ConfigError::BadFault(_))));

        // Topology invariants surface as typed errors before any state
        // is built, instead of the old mid-generation panic.
        let mut cfg = ScenarioConfig::small();
        cfg.topology.stub_multihome_prob = f64::NAN;
        assert!(matches!(cfg.validate(), Err(ConfigError::BadTopology(_))));
        let mut cfg = ScenarioConfig::small();
        cfg.topology.n_tier1 = 0;
        assert!(matches!(cfg.validate(), Err(ConfigError::BadTopology(_))));

        let mut cfg = ScenarioConfig::small();
        cfg.trace.enabled = true;
        cfg.trace.capacity = 0;
        assert!(matches!(cfg.validate(), Err(ConfigError::BadTrace(_))));
    }
}
