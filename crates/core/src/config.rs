//! Scenario configuration: every knob of a run, with the canonical
//! Nov 30 – Dec 1 2015 reproduction and a scaled-down test variant.

use crate::deployment::facilities;
use rootcast_atlas::{FleetParams, PipelineConfig};
use rootcast_attack::{AttackSchedule, BotnetParams, DEFAULT_LEGIT_TOTAL_QPS};
use rootcast_netsim::{SimDuration, SimTime};
use rootcast_topology::TopologyParams;

/// Full scenario configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub seed: u64,
    pub topology: TopologyParams,
    pub fleet: FleetParams,
    pub botnet: BotnetParams,
    pub attack: AttackSchedule,
    /// Analysis horizon (the paper's window: 48 h from Nov 30 00:00).
    pub horizon: SimTime,
    /// Fluid model step; must divide the probe wheel minute.
    pub fluid_step: SimDuration,
    /// Probe interval for every letter except A.
    pub probe_interval: SimDuration,
    /// A-root's (slower) probe interval at event time.
    pub a_probe_interval: SimDuration,
    /// Total legitimate root-query load across all letters, q/s.
    pub legit_total_qps: f64,
    /// Resolver preference refresh period.
    pub resolver_update: SimDuration,
    pub pipeline: PipelineConfig,
    /// Number of BGPmon-style collector peers (paper: 152).
    pub n_collector_peers: usize,
    /// Capacity of each shared facility link, q/s: (facility, capacity).
    pub facility_capacities: Vec<(rootcast_anycast::FacilityId, f64)>,
    /// Mean time between background maintenance withdrawals (route
    /// churn noise visible in Figure 9 outside the events); None = off.
    pub maintenance_mean: Option<SimDuration>,
    /// Include the .nl collateral-damage service.
    pub include_nl: bool,
    /// Legitimate .nl query load, q/s (both anycast sites combined).
    pub nl_qps: f64,
}

impl ScenarioConfig {
    /// The canonical full-scale reproduction: 48 h, ~9300 VPs, 5 Mq/s
    /// per attacked letter.
    pub fn nov2015() -> ScenarioConfig {
        ScenarioConfig {
            seed: 20151130,
            topology: TopologyParams::default(),
            fleet: FleetParams::default(),
            botnet: BotnetParams::default(),
            attack: AttackSchedule::nov2015(5_000_000.0),
            horizon: SimTime::from_hours(48),
            fluid_step: SimDuration::from_mins(1),
            probe_interval: SimDuration::from_mins(4),
            a_probe_interval: SimDuration::from_mins(30),
            legit_total_qps: DEFAULT_LEGIT_TOTAL_QPS,
            resolver_update: SimDuration::from_mins(10),
            pipeline: PipelineConfig::paper_default(),
            n_collector_peers: 152,
            facility_capacities: vec![
                // Tuned against the canonical seed's attack exposure so
                // the Frankfurt link saturates once K-LHR's catchment
                // shifts into K-FRA, and Sydney saturates under E-SYD's
                // exposure — the couplings behind Figures 14 and 15.
                (facilities::FRA_SHARED, 95_000.0),
                (facilities::SYD_SHARED, 30_000.0),
            ],
            maintenance_mean: Some(SimDuration::from_mins(90)),
            include_nl: true,
            nl_qps: 80_000.0,
        }
    }

    /// A scaled-down configuration for tests and fast iteration: small
    /// topology, few hundred VPs, 12-hour horizon (covers event 1).
    pub fn small() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::nov2015();
        cfg.topology = TopologyParams {
            n_tier1: 6,
            n_tier2: 30,
            n_stub: 400,
            ..TopologyParams::default()
        };
        cfg.fleet = FleetParams::tiny(400);
        cfg.botnet.n_members = 120;
        cfg.horizon = SimTime::from_hours(12);
        cfg.pipeline.horizon = cfg.horizon;
        cfg.pipeline.rtt_subsample = 2;
        cfg
    }
}
