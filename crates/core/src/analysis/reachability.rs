//! Figure 3: per-letter reachability, and the §3.2.1 correlation between
//! deployment size and worst-case responsiveness (the paper reports
//! R² = 0.87 between a letter's site count and the smallest number of
//! VPs that still received answers during the events).

use crate::analysis::{min_during_events, pre_event_baseline};
use crate::render::{num, sparkline, TextTable};
use crate::sim::SimOutput;
use rootcast_dns::Letter;
use rootcast_netsim::stats::{linear_regression, Regression};
use rootcast_netsim::{BinnedSeries, Coverage};
use serde::Serialize;

/// One letter's reachability summary.
#[derive(Debug, Clone, Serialize)]
pub struct LetterRow {
    pub letter: Letter,
    /// Number of configured sites.
    pub n_sites: usize,
    /// VPs answering successfully per 10-minute bin. A-root's series is
    /// scaled for its slower probing interval, as in the paper.
    pub series: BinnedSeries,
    /// Pre-event baseline (median successful VPs).
    pub baseline: f64,
    /// Worst bin during the events.
    pub worst: f64,
    /// `worst / baseline` — the survival fraction.
    pub survival: f64,
    /// Fraction of the letter's scheduled probes that produced usable
    /// observations. `< 1.0` when probe-fleet faults thinned the view —
    /// the series (and `worst`) then under-state the letter's health.
    pub coverage: Coverage,
}

/// The full Figure 3 result.
#[derive(Debug, Clone, Serialize)]
pub struct Figure3 {
    pub rows: Vec<LetterRow>,
    /// OLS of `worst` against `n_sites` across all letters (§3.2.1).
    pub sites_vs_worst: Option<Regression>,
    /// The same regression over the paper's effective sample: attacked
    /// letters only, excluding A (which the paper drops for its
    /// too-sparse probing). This is the closest analogue of the
    /// reported R² = 0.87.
    pub sites_vs_worst_attacked: Option<Regression>,
}

/// Compute Figure 3 from a run.
pub fn figure3(out: &SimOutput) -> Figure3 {
    let mut rows = Vec::with_capacity(out.letters.len());
    for (i, &letter) in out.letters.iter().enumerate() {
        // A letter the pipeline never registered yields no row — a
        // partial figure, not a panic.
        let Some(data) = out.pipeline.try_letter(letter) else {
            continue;
        };
        // A-root was probed every 30 min vs 4 min for others (§2.4.1):
        // with 10-minute bins only a fraction of VPs have a probe
        // scheduled per bin, so we scale its series by the ratio of its
        // probing interval to the bin width, the way the paper scales
        // A's observations. (No scaling when A probes at least once per
        // bin, as it does post-2016.)
        let scale = if letter == Letter::A {
            let bin = data.success.bin_width().as_secs_f64();
            (out.a_probe_interval.as_secs_f64() / bin).max(1.0)
        } else {
            1.0
        };
        let series = data.success.scaled(scale);
        let baseline = pre_event_baseline(out, &series);
        let worst = min_during_events(out, &series);
        rows.push(LetterRow {
            letter,
            n_sites: out.deployments[i].n_sites(),
            survival: if baseline > 0.0 {
                worst / baseline
            } else {
                f64::NAN
            },
            coverage: data.coverage(),
            series,
            baseline,
            worst,
        });
    }
    let pairs: Vec<(f64, f64)> = rows.iter().map(|r| (r.n_sites as f64, r.worst)).collect();
    let attacked: std::collections::BTreeSet<Letter> = out
        .attack
        .windows()
        .iter()
        .flat_map(|w| w.targets.iter().copied())
        .collect();
    let attacked_pairs: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.letter != Letter::A && attacked.contains(&r.letter))
        .map(|r| (r.n_sites as f64, r.worst))
        .collect();
    Figure3 {
        sites_vs_worst: linear_regression(&pairs),
        sites_vs_worst_attacked: linear_regression(&attacked_pairs),
        rows,
    }
}

impl Figure3 {
    /// Letters ordered by survival, worst first — the paper's narrative
    /// order (B, then H, ...).
    pub fn worst_first(&self) -> Vec<&LetterRow> {
        let mut v: Vec<&LetterRow> = self.rows.iter().collect();
        // total_cmp sorts NaN (no event observed) after every number.
        v.sort_by(|a, b| a.survival.total_cmp(&b.survival));
        v
    }

    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 3: VPs with successful queries per letter",
            &[
                "letter", "sites", "baseline", "worst", "survival", "cover", "series",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.letter.to_string(),
                r.n_sites.to_string(),
                num(r.baseline, 0),
                num(r.worst, 0),
                num(r.survival, 2),
                format!("{}%", num(r.coverage.fraction() * 100.0, 0)),
                sparkline(r.series.values()),
            ]);
        }
        if let Some(reg) = &self.sites_vs_worst {
            t.row(vec![
                "R^2".into(),
                num(reg.r_squared, 2),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
                format!(
                    "worst = {} * sites + {}",
                    num(reg.slope, 0),
                    num(reg.intercept, 0)
                ),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fixture::smoke;

    #[test]
    fn unattacked_letters_survive_attacked_suffer() {
        let fig = figure3(smoke());
        let get = |l: Letter| fig.rows.iter().find(|r| r.letter == l).unwrap();
        for l in [Letter::D, Letter::L, Letter::M] {
            assert!(get(l).survival > 0.9, "{l} survival {}", get(l).survival);
        }
        assert!(
            get(Letter::B).survival < 0.5,
            "B {}",
            get(Letter::B).survival
        );
        // B is the worst letter.
        assert_eq!(fig.worst_first()[0].letter, Letter::B);
    }

    #[test]
    fn sites_correlate_positively_with_worst() {
        let fig = figure3(smoke());
        let reg = fig.sites_vs_worst.expect("13 letters regress");
        assert!(reg.slope > 0.0, "slope {}", reg.slope);
        // The paper reports R^2 = 0.87 over its effective sample
        // (attacked letters, A omitted); ours must be strongly positive
        // on the same restriction.
        let att = fig.sites_vs_worst_attacked.expect("attacked sample");
        assert!(att.slope > 0.0);
        assert!(att.r_squared > 0.5, "attacked R^2 {}", att.r_squared);
        assert!(reg.r_squared > 0.2, "all-letters R^2 {}", reg.r_squared);
    }

    #[test]
    fn a_root_series_is_scaled() {
        let out = smoke();
        let fig = figure3(out);
        let a = fig.rows.iter().find(|r| r.letter == Letter::A).unwrap();
        let raw = out.pipeline.letter(Letter::A).success.median();
        assert!((a.series.median() - raw * 3.0).abs() < 1e-9);
    }

    #[test]
    fn render_has_all_letters() {
        let t = figure3(smoke()).render();
        assert!(t.rows.len() >= 13);
        let s = t.to_string();
        assert!(s.contains("Figure 3"));
    }
}
