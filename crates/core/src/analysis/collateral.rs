//! Figures 14 & 15: collateral damage.
//!
//! §3.6's end-to-end evidence of shared risk: D-root — never attacked —
//! shows sites losing ≥10% of their VPs exactly during the events
//! (Figure 14), and two `.nl` TLD anycast sites co-located with root
//! sites see their query rates collapse (Figure 15).

use crate::analysis::{min_during_events, pre_event_baseline, STABLE_SITE_MIN_VPS};
use crate::render::{num, sparkline, TextTable};
use crate::sim::SimOutput;
use rootcast_dns::Letter;
use rootcast_netsim::BinnedSeries;
use serde::Serialize;

/// A bystander site showing a correlated dip.
#[derive(Debug, Clone, Serialize)]
pub struct CollateralSite {
    pub letter: Letter,
    pub code: String,
    pub median: f64,
    /// Worst VP count during the events.
    pub event_min: f64,
    /// `1 - event_min/median`: the dip depth.
    pub dip: f64,
    pub series: BinnedSeries,
}

#[derive(Debug, Clone, Serialize)]
pub struct Figure14 {
    pub letter: Letter,
    /// Sites meeting the paper's filter: ≥ 20-VP median and ≥ 10% dip.
    pub affected: Vec<CollateralSite>,
    /// All stable sites, for comparison.
    pub stable_total: usize,
}

/// Figure 14's threshold: a site counts as affected at a 10% dip.
pub const DIP_THRESHOLD: f64 = 0.10;

pub fn figure14(out: &SimOutput, letter: Letter) -> Figure14 {
    let data = out.pipeline.letter(letter);
    let mut affected = Vec::new();
    let mut stable_total = 0;
    let mut seen: std::collections::BTreeSet<&str> = Default::default();
    for (i, code) in data.site_codes.iter().enumerate() {
        if !seen.insert(code) {
            continue;
        }
        let series = &data.site_counts[i];
        let median = series.median();
        if median < STABLE_SITE_MIN_VPS {
            continue;
        }
        stable_total += 1;
        let event_min = min_during_events(out, series);
        let dip = 1.0 - event_min / median;
        if dip >= DIP_THRESHOLD {
            affected.push(CollateralSite {
                letter,
                code: code.clone(),
                median,
                event_min,
                dip,
                series: series.clone(),
            });
        }
    }
    affected.sort_by(|a, b| b.dip.total_cmp(&a.dip));
    Figure14 {
        letter,
        affected,
        stable_total,
    }
}

impl Figure14 {
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "Figure 14: {}-root collateral-affected sites ({} of {} stable sites)",
                self.letter,
                self.affected.len(),
                self.stable_total
            ),
            &["site", "median", "event min", "dip", "series"],
        );
        for s in &self.affected {
            t.row(vec![
                format!("{}-{}", s.letter, s.code),
                num(s.median, 0),
                num(s.event_min, 0),
                if s.dip.is_finite() {
                    format!("{:.0}%", s.dip * 100.0)
                } else {
                    "–".to_string()
                },
                sparkline(s.series.values()),
            ]);
        }
        t
    }
}

/// One `.nl` anycast site's query-rate trajectory (Figure 15 anonymizes
/// rates; we normalize to the pre-event baseline the same way).
#[derive(Debug, Clone, Serialize)]
pub struct NlSite {
    pub code: String,
    /// Served queries per bin normalized to the pre-event baseline.
    pub normalized: BinnedSeries,
    /// Worst normalized value during the events.
    pub event_min: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct Figure15 {
    pub sites: Vec<NlSite>,
}

pub fn figure15(out: &SimOutput) -> Figure15 {
    let sites = out
        .nl_sites
        .iter()
        .map(|(code, series)| {
            let base = pre_event_baseline(out, series).max(1.0);
            let normalized = series.scaled(1.0 / base);
            let event_min = min_during_events(out, &normalized);
            NlSite {
                code: code.clone(),
                normalized,
                event_min,
            }
        })
        .collect();
    Figure15 { sites }
}

impl Figure15 {
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 15: .nl anycast sites, normalized query rate",
            &["site", "event min (x baseline)", "series"],
        );
        for s in &self.sites {
            t.row(vec![
                format!("nl-{}", s.code),
                num(s.event_min, 2),
                sparkline(s.normalized.values()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fixture::smoke;

    #[test]
    fn d_root_shows_collateral_sites() {
        let fig = figure14(smoke(), Letter::D);
        assert!(fig.stable_total > 0, "no stable D sites");
        assert!(
            !fig.affected.is_empty(),
            "no D collateral despite shared facilities"
        );
        // FRA (shared with attacked K-FRA) is among them.
        assert!(
            fig.affected.iter().any(|s| s.code == "FRA"),
            "D-FRA missing from {:?}",
            fig.affected
                .iter()
                .map(|s| s.code.clone())
                .collect::<Vec<_>>()
        );
        for s in &fig.affected {
            assert!(s.dip >= DIP_THRESHOLD);
            assert!(s.median >= STABLE_SITE_MIN_VPS);
        }
    }

    #[test]
    fn most_d_sites_are_unaffected() {
        // Collateral is localized: the bulk of D's (unattacked) sites
        // must sail through.
        let fig = figure14(smoke(), Letter::D);
        assert!(
            fig.affected.len() * 2 < fig.stable_total.max(1) * 2,
            "affected {} of {}",
            fig.affected.len(),
            fig.stable_total
        );
        assert!(fig.affected.len() < fig.stable_total);
    }

    #[test]
    fn nl_sites_collapse_during_events() {
        let fig = figure15(smoke());
        assert_eq!(fig.sites.len(), 2);
        let fra = fig.sites.iter().find(|s| s.code == "FRA").unwrap();
        assert!(
            fra.event_min < 0.8,
            "nl-FRA event min {} (should dip)",
            fra.event_min
        );
    }

    #[test]
    fn renders_work() {
        assert!(figure14(smoke(), Letter::D)
            .render()
            .to_string()
            .contains("Figure 14"));
        assert!(figure15(smoke()).render().to_string().contains("Figure 15"));
    }
}
