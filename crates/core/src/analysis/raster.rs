//! Figure 11: per-VP site-choice timelines ("raster") and the §3.4.2
//! client cohorts.
//!
//! The paper samples 300 VPs that start at K-LHR or K-FRA and plots each
//! VP's site choice per 4-minute probe slot. Around the first event it
//! identifies four behaviours: (1) VPs *stuck* to the overloaded site
//! getting only occasional replies, (2) VPs that flip to K-AMS for the
//! event and return, (3) VPs that scatter to other sites, and (4) VPs
//! that flip and stay.

use crate::error::{AnalysisError, RootcastError};
use crate::render::TextTable;
use crate::sim::SimOutput;
use rootcast_atlas::raster_code;
use rootcast_dns::Letter;
use serde::Serialize;

/// One VP's timeline.
#[derive(Debug, Clone, Serialize)]
pub struct RasterRow {
    pub vp: u32,
    /// Site index the VP started at.
    pub start_site: u16,
    /// One cell per probe slot: [`raster_code`] values.
    pub cells: Vec<u8>,
}

/// The behavioural cohorts of §3.4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Cohort {
    /// Sticks to the focal site, answered only intermittently.
    StuckDegraded,
    /// Leaves during the event, returns afterwards.
    FlipAndReturn,
    /// Leaves during the event and stays elsewhere.
    FlipAndStay,
    /// Anything else (healthy throughout, mixed, or sparse data).
    Other,
}

#[derive(Debug, Clone, Serialize)]
pub struct Figure11 {
    pub letter: Letter,
    /// Site codes, indexed by site index (for decoding cells).
    pub site_codes: Vec<String>,
    pub rows: Vec<RasterRow>,
    /// Probe-slot range of the first event `(start, end)`.
    pub event_slots: (usize, usize),
}

/// Build the raster for VPs that start at any of `start_codes`.
/// `max_vps` bounds the sample (the paper uses 300).
///
/// Per-VP timelines exist only for the letters listed in
/// `PipelineConfig::raster_letters`; asking for any other letter is a
/// typed [`AnalysisError::LetterNotRastered`], not a panic — a caller
/// sweeping figures over a reconfigured run can skip or report it.
pub fn figure11(
    out: &SimOutput,
    letter: Letter,
    start_codes: &[&str],
    max_vps: usize,
) -> Result<Figure11, RootcastError> {
    let data = out.pipeline.letter(letter);
    let Some(raster) = data.raster.as_ref() else {
        return Err(AnalysisError::LetterNotRastered {
            letter,
            available: out.pipeline.config().raster_letters.clone(),
        }
        .into());
    };
    let focal: Vec<u8> = data
        .site_codes
        .iter()
        .enumerate()
        .filter(|(_, c)| start_codes.iter().any(|s| s.eq_ignore_ascii_case(c)))
        .map(|(i, _)| raster_code::SITE_BASE + i as u8)
        .collect();
    let mut rows = Vec::new();
    for (vp, cells) in raster.iter().enumerate() {
        if rows.len() >= max_vps {
            break;
        }
        // The VP's first site answer determines its start site.
        let first_site = cells
            .iter()
            .find(|&&c| c >= raster_code::SITE_BASE && c != raster_code::MISSING);
        let Some(&start) = first_site else { continue };
        if !focal.contains(&start) {
            continue;
        }
        rows.push(RasterRow {
            vp: vp as u32,
            start_site: u16::from(start - raster_code::SITE_BASE),
            cells: cells.clone(),
        });
    }
    let probe_ns = out.pipeline.config().probe_interval.as_nanos();
    let (e_start, e_end) = out
        .attack
        .windows()
        .first()
        .map(|w| {
            (
                (w.start.as_nanos() / probe_ns) as usize,
                (w.end().as_nanos() / probe_ns) as usize,
            )
        })
        .unwrap_or((0, 0));
    Ok(Figure11 {
        letter,
        site_codes: data.site_codes.clone(),
        rows,
        event_slots: (e_start, e_end),
    })
}

impl Figure11 {
    /// Classify one row against the first event window.
    pub fn classify(&self, row: &RasterRow) -> Cohort {
        let (es, ee) = self.event_slots;
        if ee == 0 || row.cells.len() <= es {
            return Cohort::Other;
        }
        let focal = raster_code::SITE_BASE + row.start_site as u8;
        let during: Vec<u8> = row.cells[es.min(row.cells.len())..ee.min(row.cells.len())].to_vec();
        let after_end = (ee + (ee - es).max(8)).min(row.cells.len());
        let after: Vec<u8> = row.cells[ee.min(row.cells.len())..after_end].to_vec();
        if during.is_empty() {
            return Cohort::Other;
        }
        let n = during.len() as f64;
        let at_focal = during.iter().filter(|&&c| c == focal).count() as f64;
        let timeouts = during
            .iter()
            .filter(|&&c| c == raster_code::TIMEOUT)
            .count() as f64;
        let elsewhere = during
            .iter()
            .filter(|&&c| c >= raster_code::SITE_BASE && c != focal && c != raster_code::MISSING)
            .count() as f64;
        let after_focal = after.iter().filter(|&&c| c == focal).count() as f64;
        let after_site = after
            .iter()
            .filter(|&&c| c >= raster_code::SITE_BASE && c != raster_code::MISSING)
            .count() as f64;
        if elsewhere / n > 0.3 {
            // Flipped away; did it come back?
            if after_site > 0.0 && after_focal / after_site > 0.5 {
                Cohort::FlipAndReturn
            } else {
                Cohort::FlipAndStay
            }
        } else if (at_focal + timeouts) / n > 0.8 && timeouts / n > 0.3 {
            Cohort::StuckDegraded
        } else {
            Cohort::Other
        }
    }

    /// Cohort histogram over all rows.
    pub fn cohort_counts(&self) -> [(Cohort, usize); 4] {
        let mut counts = [
            (Cohort::StuckDegraded, 0usize),
            (Cohort::FlipAndReturn, 0),
            (Cohort::FlipAndStay, 0),
            (Cohort::Other, 0),
        ];
        for row in &self.rows {
            let c = self.classify(row);
            for slot in &mut counts {
                if slot.0 == c {
                    slot.1 += 1;
                }
            }
        }
        counts
    }

    /// ASCII rendering: one row per VP, one char per probe slot
    /// ('.':timeout, 'x':error, 'A'..: sites by first letter of code;
    /// the focal start site is lowercase).
    pub fn render_ascii(&self, max_rows: usize) -> String {
        let mut out = String::new();
        for row in self.rows.iter().take(max_rows) {
            let focal = raster_code::SITE_BASE + row.start_site as u8;
            for &c in &row.cells {
                let ch = match c {
                    raster_code::TIMEOUT => '.',
                    raster_code::ERROR => 'x',
                    raster_code::MISSING => ' ',
                    s if s == focal => self.site_codes[(s - raster_code::SITE_BASE) as usize]
                        .chars()
                        .next()
                        .unwrap_or('?')
                        .to_ascii_lowercase(),
                    s => self.site_codes[(s - raster_code::SITE_BASE) as usize]
                        .chars()
                        .next()
                        .unwrap_or('?'),
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }

    pub fn render_cohorts(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!("Figure 11 cohorts ({}-root, event 1)", self.letter),
            &["cohort", "VPs"],
        );
        for (c, n) in self.cohort_counts() {
            t.row(vec![format!("{c:?}"), n.to_string()]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fixture::smoke;

    fn fig() -> Figure11 {
        figure11(smoke(), Letter::K, &["LHR", "FRA"], 300).expect("K is rastered")
    }

    #[test]
    fn unrastered_letter_is_a_typed_error_not_a_panic() {
        // The smoke pipeline rasters only K; asking for M must name
        // the letter and what *is* available.
        match figure11(smoke(), Letter::M, &["LHR"], 300) {
            Err(RootcastError::Analysis(AnalysisError::LetterNotRastered {
                letter,
                available,
            })) => {
                assert_eq!(letter, Letter::M);
                assert_eq!(available, vec![Letter::K]);
            }
            other => panic!("expected LetterNotRastered, got {other:?}"),
        }
    }

    #[test]
    fn raster_rows_start_at_focal_sites() {
        let f = fig();
        assert!(!f.rows.is_empty(), "no VPs start at K-LHR/K-FRA");
        for row in &f.rows {
            let code = &f.site_codes[row.start_site as usize];
            assert!(code == "LHR" || code == "FRA", "start {code}");
        }
    }

    #[test]
    fn event_slots_are_within_timelines() {
        let f = fig();
        let (es, ee) = f.event_slots;
        assert!(es < ee);
        let max_len = f.rows.iter().map(|r| r.cells.len()).max().unwrap();
        assert!(es < max_len);
    }

    #[test]
    fn cohorts_cover_all_rows() {
        let f = fig();
        let total: usize = f.cohort_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(total, f.rows.len());
    }

    #[test]
    fn some_vps_flip_during_the_event() {
        let f = fig();
        let counts = f.cohort_counts();
        let flips = counts[1].1 + counts[2].1; // FlipAndReturn + FlipAndStay
        assert!(
            flips > 0,
            "expected flips among {} focal VPs: {counts:?}",
            f.rows.len()
        );
    }

    #[test]
    fn ascii_render_shape() {
        let f = fig();
        let art = f.render_ascii(10);
        let lines: Vec<&str> = art.lines().collect();
        assert!(!lines.is_empty());
        assert!(f.render_cohorts().to_string().contains("cohorts"));
    }
}
