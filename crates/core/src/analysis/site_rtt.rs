//! Figure 7: median RTT of *watched* sites over time.
//!
//! The paper's headline example: K-AMS stayed reachable but its median
//! RTT rose from ~30 ms to 1 s (Nov 30) and almost 2 s (Dec 1) —
//! "industrial-scale bufferbloat" at an absorbing site. K-NRT behaves
//! the same way from a higher baseline.

use crate::analysis::{event_windows, pre_event_baseline};
use crate::render::{num, sparkline, TextTable};
use crate::sim::SimOutput;
use rootcast_dns::Letter;
use rootcast_netsim::{BinnedSeries, Reduce};
use serde::Serialize;

/// One watched site's RTT trajectory.
#[derive(Debug, Clone, Serialize)]
pub struct SiteRttRow {
    pub letter: Letter,
    pub code: String,
    pub series_ms: BinnedSeries,
    pub baseline_ms: f64,
    /// Peak bin-median during each event window, ms.
    pub event_peaks_ms: Vec<f64>,
}

#[derive(Debug, Clone, Serialize)]
pub struct Figure7 {
    pub rows: Vec<SiteRttRow>,
}

/// Compute Figure 7 from every watched site in the pipeline config.
pub fn figure7(out: &SimOutput) -> Figure7 {
    let mut rows = Vec::new();
    for &letter in &out.letters {
        let data = out.pipeline.letter(letter);
        for (&site_idx, watch) in &data.watches {
            let nanos = watch.site_rtt.reduce(Reduce::Median, f64::NAN);
            let series_ms = BinnedSeries::from_values(
                nanos.bin_width(),
                nanos.values().iter().map(|v| v / 1e6).collect(),
            );
            let baseline_ms = pre_event_baseline(out, &series_ms);
            let event_peaks_ms = event_windows(out)
                .into_iter()
                .map(|(s, e)| {
                    let w = series_ms.window(s, e);
                    if w.is_empty() {
                        f64::NAN
                    } else {
                        w.max()
                    }
                })
                .collect();
            rows.push(SiteRttRow {
                letter,
                code: data.site_codes[site_idx as usize].clone(),
                series_ms,
                baseline_ms,
                event_peaks_ms,
            });
        }
    }
    Figure7 { rows }
}

impl Figure7 {
    /// Find a row by letter and site code.
    pub fn site(&self, letter: Letter, code: &str) -> Option<&SiteRttRow> {
        let code = code.to_ascii_uppercase();
        self.rows
            .iter()
            .find(|r| r.letter == letter && r.code == code)
    }

    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 7: median RTT at watched sites (ms)",
            &["site", "baseline", "event peaks", "series"],
        );
        for r in &self.rows {
            t.row(vec![
                format!("{}-{}", r.letter, r.code),
                num(r.baseline_ms, 1),
                r.event_peaks_ms
                    .iter()
                    .map(|&p| num(p, 0))
                    .collect::<Vec<_>>()
                    .join(" / "),
                sparkline(r.series_ms.values()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fixture::smoke;

    #[test]
    fn k_ams_rtt_inflates_under_absorption() {
        let fig = figure7(smoke());
        let ams = fig.site(Letter::K, "AMS").expect("K-AMS watched");
        let peak = ams.event_peaks_ms[0];
        assert!(
            peak > ams.baseline_ms * 5.0,
            "K-AMS baseline {} peak {}",
            ams.baseline_ms,
            peak
        );
        assert!(
            peak > 500.0,
            "K-AMS peak {peak} ms should reach bufferbloat scale"
        );
    }

    #[test]
    fn k_nrt_also_watched_and_inflated() {
        let fig = figure7(smoke());
        let nrt = fig.site(Letter::K, "NRT").expect("K-NRT watched");
        assert!(
            nrt.event_peaks_ms[0] > nrt.baseline_ms,
            "NRT peak {} vs baseline {}",
            nrt.event_peaks_ms[0],
            nrt.baseline_ms
        );
    }

    #[test]
    fn lookup_is_case_insensitive_and_render_works() {
        let fig = figure7(smoke());
        assert!(fig.site(Letter::K, "ams").is_some());
        assert!(fig.site(Letter::K, "XXX").is_none());
        assert!(fig.render().to_string().contains("Figure 7"));
    }
}
