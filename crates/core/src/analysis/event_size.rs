//! Table 3: how big were the events?
//!
//! The paper estimates event size from best-effort RSSAC-002 reports:
//! subtract a 7-day baseline from each reporting letter's event-day
//! totals, convert to Mq/s and Gb/s over the event window, then build
//! * a **lower bound** — the sum over reporting attacked letters (known
//!   to undercount, since most letters lost measurement data under
//!   stress),
//! * a **scaled** value accounting for attacked letters that did not
//!   report, and
//! * an **upper bound** — assume every attacked letter received what
//!   A-root (the only letter that measured the full event) reported.

use crate::render::{num, TextTable};
use crate::sim::SimOutput;
use rootcast_dns::Letter;
use rootcast_netsim::Coverage;
use serde::Serialize;

/// One (letter, event-day) row of Table 3.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    pub letter: Letter,
    /// 0 = Nov 30 (160-minute event), 1 = Dec 1 (60-minute event).
    pub day: usize,
    pub attacked: bool,
    /// Δqueries over the event window, Mq/s.
    pub dq_mqps: f64,
    /// Δquery traffic, Gb/s.
    pub dq_gbps: f64,
    /// Δresponses, Mq/s.
    pub dr_mqps: f64,
    /// Δresponse traffic, Gb/s.
    pub dr_gbps: f64,
    /// Unique sources that day, millions.
    pub unique_m: f64,
    /// Ratio to the baseline unique count.
    pub unique_ratio: f64,
    /// Baseline queries, Mq/s (the rightmost columns of Table 3).
    pub baseline_mqps: f64,
    /// How much of the day's accounting the letter actually observed.
    /// `< 1.0` when monitoring gaps thinned the record — the deltas
    /// above are then partial, exactly like the real Table 3 caveats.
    pub coverage: Coverage,
}

/// Aggregate bounds for one event day.
///
/// A fault-gapped run can leave an event day with *no* reporting
/// attacked letters. The day still gets a `DayBounds` — dropping it
/// would silently shrink the table — but a degraded one, flagged by
/// `n_reporting == 0`: the lower bound is a true 0.0 (nothing was
/// observed), while the scaled and upper estimates are undefined (NaN,
/// rendered as "–").
#[derive(Debug, Clone, Serialize)]
pub struct DayBounds {
    pub day: usize,
    /// Event duration in seconds.
    pub event_secs: f64,
    /// How many attacked letters actually reported this day. 0 marks a
    /// degraded row whose estimates are partial or undefined.
    pub n_reporting: usize,
    /// Sum over reporting attacked letters.
    pub lower_mqps: f64,
    pub lower_gbps: f64,
    /// Lower bound scaled by attacked/reporting ratio.
    pub scaled_mqps: f64,
    pub scaled_gbps: f64,
    /// A-root's rate times the number of attacked letters.
    pub upper_mqps: f64,
    pub upper_gbps: f64,
    pub upper_resp_gbps: f64,
}

impl DayBounds {
    /// True when monitoring gaps left estimates partial or undefined
    /// (fewer reporting letters than attacked letters).
    pub fn is_degraded(&self, n_attacked: usize) -> bool {
        self.n_reporting < n_attacked
    }
}

#[derive(Debug, Clone, Serialize)]
pub struct Table3 {
    pub rows: Vec<Table3Row>,
    pub bounds: Vec<DayBounds>,
    pub n_attacked: usize,
}

pub fn table3(out: &SimOutput) -> Table3 {
    // Event seconds per day (day of a window = start day).
    let mut event_secs = [0.0f64; 2];
    for w in out.attack.windows() {
        let day = (w.start.as_secs() / 86_400) as usize;
        if day < event_secs.len() {
            event_secs[day] += w.duration.as_secs_f64();
        }
    }
    let attacked_letters: Vec<Letter> = out
        .attack
        .windows()
        .iter()
        .flat_map(|w| w.targets.iter().copied())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();

    let mut rows = Vec::new();
    for (&letter, collector) in &out.rssac {
        // A letter with no synthesized baseline cannot produce deltas:
        // degrade to a partial table rather than panicking.
        let Some(baseline) = out.rssac_baseline.get(&letter) else {
            continue;
        };
        let attacked = attacked_letters.contains(&letter);
        for (day, &secs) in event_secs
            .iter()
            .enumerate()
            .take(collector.n_days().min(2))
        {
            let report = collector.report(day);
            if secs == 0.0 {
                continue;
            }
            // Prorate the (full-day) baseline to the fraction of the day
            // inside the horizon — short test horizons cover partial days.
            let day_start = day as u64 * 86_400;
            let in_horizon = (out.horizon.as_secs().saturating_sub(day_start)).min(86_400) as f64;
            let horizon_frac = in_horizon / 86_400.0;
            let dq = (report.queries - baseline.queries * horizon_frac).max(0.0);
            let dr = (report.responses - baseline.responses * horizon_frac).max(0.0);
            // Δ traffic concentrated in the event window, like the paper.
            let dq_mqps = dq / secs / 1e6;
            let dr_mqps = dr / secs / 1e6;
            // Mean packet sizes from the event-day histograms (dominated
            // by the attack bins during events). An empty histogram (the
            // whole day gapped out) has no mean size; the delta is zero
            // there, so the traffic estimate is too.
            let q_pkt = report.query_sizes.mean_size() + 28.0;
            let r_pkt = report.response_sizes.mean_size() + 28.0;
            let gbps = |delta: f64, pkt: f64| {
                if delta > 0.0 {
                    delta * pkt * 8.0 / secs / 1e9
                } else {
                    0.0
                }
            };
            rows.push(Table3Row {
                letter,
                day,
                attacked,
                dq_mqps,
                dq_gbps: gbps(dq, q_pkt),
                dr_mqps,
                dr_gbps: gbps(dr, r_pkt),
                unique_m: report.unique_sources / 1e6,
                unique_ratio: report.unique_sources / baseline.unique_sources.max(1.0),
                baseline_mqps: baseline.queries / 86_400.0 / 1e6,
                coverage: report.coverage,
            });
        }
    }

    let n_attacked = attacked_letters.len();
    let mut bounds = Vec::new();
    for (day, &day_secs) in event_secs.iter().enumerate() {
        if day_secs == 0.0 {
            continue;
        }
        let day_rows: Vec<&Table3Row> =
            rows.iter().filter(|r| r.day == day && r.attacked).collect();
        let lower_mqps: f64 = day_rows.iter().map(|r| r.dq_mqps).sum();
        let lower_gbps: f64 = day_rows.iter().map(|r| r.dq_gbps).sum();
        // No reporting letters at all (every record fault-gapped out):
        // keep the day, with the scaled estimate undefined rather than
        // lower × ∞.
        let scale = if day_rows.is_empty() {
            f64::NAN
        } else {
            n_attacked as f64 / day_rows.len() as f64
        };
        let a_row = day_rows.iter().find(|r| r.letter == Letter::A);
        let (upper_mqps, upper_gbps, upper_resp_gbps) = match a_row {
            Some(a) => (
                a.dq_mqps * n_attacked as f64,
                a.dq_gbps * n_attacked as f64,
                a.dr_gbps * n_attacked as f64,
            ),
            None => (f64::NAN, f64::NAN, f64::NAN),
        };
        bounds.push(DayBounds {
            day,
            event_secs: day_secs,
            n_reporting: day_rows.len(),
            lower_mqps,
            lower_gbps,
            scaled_mqps: lower_mqps * scale,
            scaled_gbps: lower_gbps * scale,
            upper_mqps,
            upper_gbps,
            upper_resp_gbps,
        });
    }
    Table3 {
        rows,
        bounds,
        n_attacked,
    }
}

impl Table3 {
    pub fn row(&self, letter: Letter, day: usize) -> Option<&Table3Row> {
        self.rows
            .iter()
            .find(|r| r.letter == letter && r.day == day)
    }

    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 3: RSSAC-002 event-size estimates",
            &[
                "letter",
                "day",
                "attacked",
                "dQ Mq/s",
                "dQ Gb/s",
                "dR Mq/s",
                "dR Gb/s",
                "M IPs",
                "ratio",
                "base Mq/s",
                "cover",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.letter.to_string(),
                r.day.to_string(),
                if r.attacked {
                    "yes".into()
                } else {
                    "no".into()
                },
                num(r.dq_mqps, 2),
                num(r.dq_gbps, 2),
                num(r.dr_mqps, 2),
                num(r.dr_gbps, 2),
                num(r.unique_m, 1),
                format!("{}x", num(r.unique_ratio, 0)),
                num(r.baseline_mqps, 2),
                format!("{}%", num(r.coverage.fraction() * 100.0, 0)),
            ]);
        }
        for b in &self.bounds {
            t.row(vec![
                "lower".into(),
                b.day.to_string(),
                "".into(),
                num(b.lower_mqps, 1),
                num(b.lower_gbps, 1),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
                // Which fraction of attacked letters this day's
                // estimates rest on — 0/N flags a degraded day.
                format!("{}/{}", b.n_reporting, self.n_attacked),
            ]);
            t.row(vec![
                "scaled".into(),
                b.day.to_string(),
                "".into(),
                num(b.scaled_mqps, 1),
                num(b.scaled_gbps, 1),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
            ]);
            t.row(vec![
                "upper".into(),
                b.day.to_string(),
                "".into(),
                num(b.upper_mqps, 1),
                num(b.upper_gbps, 1),
                "".into(),
                num(b.upper_resp_gbps, 1),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fixture::smoke;

    #[test]
    fn a_reports_more_than_undercounting_letters() {
        let t3 = table3(smoke());
        let a = t3.row(Letter::A, 0).expect("A reports");
        let k = t3.row(Letter::K, 0).expect("K reports");
        let h = t3.row(Letter::H, 0).expect("H reports");
        assert!(a.dq_mqps > k.dq_mqps, "A {} vs K {}", a.dq_mqps, k.dq_mqps);
        assert!(a.dq_mqps > h.dq_mqps);
        // A captured most of the offered 3 Mq/s (it has capacity).
        assert!(a.dq_mqps > 1.0, "A dq {}", a.dq_mqps);
    }

    #[test]
    fn l_root_is_not_attacked_but_reports() {
        let t3 = table3(smoke());
        let l = t3.row(Letter::L, 0).expect("L reports");
        assert!(!l.attacked);
        // L's delta is letter-flip inflow only: well below A's attack
        // traffic (the exact ratio depends on how long resolvers take to
        // flip back after the event).
        let a = t3.row(Letter::A, 0).unwrap();
        assert!(
            l.dq_mqps < a.dq_mqps * 0.5,
            "L {} vs A {}",
            l.dq_mqps,
            a.dq_mqps
        );
    }

    #[test]
    fn bounds_are_ordered() {
        let t3 = table3(smoke());
        assert!(!t3.bounds.is_empty());
        for b in &t3.bounds {
            // The smoke run has no monitoring gaps: every day has at
            // least one reporting attacked letter and finite bounds.
            assert!(b.n_reporting > 0);
            assert!(b.scaled_mqps.is_finite());
            assert!(b.lower_mqps <= b.scaled_mqps + 1e-9);
            assert!(
                b.scaled_mqps <= b.upper_mqps * 1.001,
                "scaled {} vs upper {}",
                b.scaled_mqps,
                b.upper_mqps
            );
        }
    }

    #[test]
    fn responses_below_queries_rrl() {
        let t3 = table3(smoke());
        let a = t3.row(Letter::A, 0).unwrap();
        assert!(
            a.dr_mqps < a.dq_mqps,
            "RRL must suppress responses: dR {} dQ {}",
            a.dr_mqps,
            a.dq_mqps
        );
        // But response *bytes* exceed query bytes (responses ~10x size).
        assert!(
            a.dr_gbps > a.dq_gbps,
            "dR {} Gb/s vs dQ {}",
            a.dr_gbps,
            a.dq_gbps
        );
    }

    #[test]
    fn unique_ip_ratio_explodes_for_attacked() {
        let t3 = table3(smoke());
        let a = t3.row(Letter::A, 0).unwrap();
        assert!(a.unique_ratio > 5.0, "A unique ratio {}", a.unique_ratio);
    }

    #[test]
    fn render_contains_bounds() {
        let s = table3(smoke()).render().to_string();
        assert!(s.contains("lower"));
        assert!(s.contains("upper"));
    }
}
