//! Figure 9: BGP route changes per letter, as seen by the collectors.
//!
//! The paper corroborates Atlas-observed site flips with BGPmon update
//! streams: occasional changes over the whole period, but *very
//! frequent* bursts across many letters inside the two event windows.

use crate::analysis::padded_event_windows;
use crate::render::{num, sparkline, TextTable};
use crate::sim::SimOutput;
use rootcast_dns::Letter;
use rootcast_netsim::{BinnedSeries, SimDuration};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Figure9 {
    pub rows: Vec<(Letter, BinnedSeries)>,
    /// Bin width used.
    pub bin: SimDuration,
}

pub fn figure9(out: &SimOutput) -> Figure9 {
    let bin = SimDuration::from_mins(10);
    let n_bins = (out.horizon.as_nanos() / bin.as_nanos()) as usize;
    let rows = out
        .letters
        .iter()
        .map(|&l| {
            let series = out
                .collectors
                .get(&l)
                .map(|c| c.binned_messages(bin, n_bins))
                .unwrap_or_else(|| BinnedSeries::zeros(bin, n_bins));
            (l, series)
        })
        .collect();
    Figure9 { rows, bin }
}

impl Figure9 {
    pub fn total(&self, letter: Letter) -> f64 {
        self.rows
            .iter()
            .find(|(l, _)| *l == letter)
            .map(|(_, s)| s.values().iter().sum())
            .unwrap_or(0.0)
    }

    /// Route-change messages inside the padded event windows, across all
    /// letters.
    pub fn event_total(&self, out: &SimOutput) -> f64 {
        let mut sum = 0.0;
        for (_, s) in &self.rows {
            for (a, b) in padded_event_windows(out, SimDuration::from_mins(30)) {
                sum += s.window(a, b).values().iter().sum::<f64>();
            }
        }
        sum
    }

    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 9: BGP route-change messages per letter (collector view)",
            &["letter", "total msgs", "series"],
        );
        for (l, s) in &self.rows {
            t.row(vec![
                l.to_string(),
                num(s.values().iter().sum(), 0),
                sparkline(s.values()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fixture::smoke;

    #[test]
    fn withdrawing_letters_generate_updates() {
        let out = smoke();
        let fig = figure9(out);
        // H's primary/backup flapping guarantees updates.
        assert!(fig.total(Letter::H) > 0.0, "H should flap");
        // B is unicast with absorb policy: only maintenance noise, which
        // cannot apply to a single-site letter (its site holds the whole
        // catchment).
        assert_eq!(fig.total(Letter::B), 0.0);
    }

    #[test]
    fn updates_concentrate_in_events() {
        let out = smoke();
        let fig = figure9(out);
        let event = fig.event_total(out);
        let all: f64 = out.letters.iter().map(|&l| fig.total(l)).sum();
        assert!(all > 0.0);
        assert!(
            event / all > 0.5,
            "event share {} of {all} messages",
            event / all
        );
    }

    #[test]
    fn render_lists_letters() {
        let fig = figure9(smoke());
        assert_eq!(fig.rows.len(), 13);
        assert!(fig.render().to_string().contains("Figure 9"));
    }
}
