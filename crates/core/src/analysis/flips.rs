//! Figures 8 & 10: site flips.
//!
//! A *site flip* is a VP whose consecutive (site-answering) bins name
//! different sites — the client-visible footprint of a route change.
//! Figure 8 counts flips per letter over time; bursts align with the
//! events. Figure 10 drills into K-root: VPs leaving K-LHR and K-FRA
//! during the events go overwhelmingly to K-AMS, and return afterwards.

use crate::analysis::padded_event_windows;
use crate::render::{num, sparkline, TextTable};
use crate::sim::SimOutput;
use rootcast_dns::Letter;
use rootcast_netsim::{BinnedSeries, SimDuration};
use serde::Serialize;
use std::collections::BTreeMap;

/// Figure 8: flips per letter.
#[derive(Debug, Clone, Serialize)]
pub struct Figure8 {
    pub rows: Vec<(Letter, BinnedSeries)>,
    /// Per-row event share (fraction of flips inside the padded event
    /// windows), aligned with `rows`. NaN when a letter never flipped —
    /// the renderer shows those cells as "–".
    pub event_shares: Vec<f64>,
}

pub fn figure8(out: &SimOutput) -> Figure8 {
    let mut fig = Figure8 {
        rows: out
            .letters
            .iter()
            .map(|&l| (l, out.pipeline.letter(l).flips.clone()))
            .collect(),
        event_shares: Vec::new(),
    };
    fig.event_shares = fig
        .rows
        .iter()
        .map(|&(l, _)| fig.event_share(out, l))
        .collect();
    fig
}

impl Figure8 {
    /// Total flips for a letter.
    pub fn total(&self, letter: Letter) -> f64 {
        self.rows
            .iter()
            .find(|(l, _)| *l == letter)
            .map(|(_, s)| s.values().iter().sum())
            .unwrap_or(0.0)
    }

    /// Fraction of a letter's flips that fall inside the (padded) event
    /// windows — near 1.0 when flips are event-driven.
    pub fn event_share(&self, out: &SimOutput, letter: Letter) -> f64 {
        let Some((_, series)) = self.rows.iter().find(|(l, _)| *l == letter) else {
            return f64::NAN;
        };
        let total: f64 = series.values().iter().sum();
        if total == 0.0 {
            return f64::NAN;
        }
        let mut during = 0.0;
        for (s, e) in padded_event_windows(out, SimDuration::from_mins(30)) {
            during += series.window(s, e).values().iter().sum::<f64>();
        }
        during / total
    }

    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 8: site flips per letter",
            &["letter", "total flips", "event share", "series"],
        );
        for (i, (l, s)) in self.rows.iter().enumerate() {
            let share = self.event_shares.get(i).copied().unwrap_or(f64::NAN);
            t.row(vec![
                l.to_string(),
                num(s.values().iter().sum(), 0),
                num(share, 2),
                sparkline(s.values()),
            ]);
        }
        t
    }
}

/// Where VPs leaving one site went (or where arrivals came from).
#[derive(Debug, Clone, Serialize)]
pub struct FlowTable {
    pub letter: Letter,
    /// The focal site code.
    pub site: String,
    /// Flips out of the site during the events: destination code → count.
    pub outflow_during: BTreeMap<String, u64>,
    /// Flips into the site after the last event ended: origin → count.
    pub inflow_after: BTreeMap<String, u64>,
}

/// Figure 10 for one focal site of one letter (the paper uses K-LHR and
/// K-FRA, with K-AMS as the main destination).
pub fn figure10(out: &SimOutput, letter: Letter, site_code: &str) -> FlowTable {
    let data = out.pipeline.letter(letter);
    let code = site_code.to_ascii_uppercase();
    let focal: Vec<u16> = data
        .site_codes
        .iter()
        .enumerate()
        .filter(|(_, c)| **c == code)
        .map(|(i, _)| i as u16)
        .collect();
    let bin = data.flips.bin_width();
    let windows = padded_event_windows(out, SimDuration::from_mins(20));
    let in_events = |at_bin: u32| {
        let t = rootcast_netsim::SimTime::ZERO + bin * u64::from(at_bin);
        windows.iter().any(|&(s, e)| t >= s && t < e)
    };
    let last_end = out
        .attack
        .windows()
        .iter()
        .map(|w| w.end())
        .max()
        .unwrap_or(rootcast_netsim::SimTime::ZERO);
    let mut outflow_during: BTreeMap<String, u64> = BTreeMap::new();
    let mut inflow_after: BTreeMap<String, u64> = BTreeMap::new();
    for f in &data.flip_events {
        let t = rootcast_netsim::SimTime::ZERO + bin * u64::from(f.at_bin);
        if focal.contains(&f.from_site) && in_events(f.at_bin) {
            *outflow_during
                .entry(data.site_codes[f.to_site as usize].clone())
                .or_insert(0) += 1;
        }
        if focal.contains(&f.to_site) && t >= last_end {
            *inflow_after
                .entry(data.site_codes[f.from_site as usize].clone())
                .or_insert(0) += 1;
        }
    }
    FlowTable {
        letter,
        site: code,
        outflow_during,
        inflow_after,
    }
}

impl FlowTable {
    /// Fraction of event-time outflow going to `dest`. A run with no
    /// outflow at all (no attack, or the site's catchment never moved)
    /// sends no share anywhere: 0.0, not 0/0 = NaN — callers feed this
    /// straight into rendered cells and CSV.
    pub fn outflow_share(&self, dest: &str) -> f64 {
        let dest = dest.to_ascii_uppercase();
        let total: u64 = self.outflow_during.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.outflow_during.get(&dest).unwrap_or(&0) as f64 / total as f64
    }

    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "Figure 10: flips out of {}-{} during events / into it after",
                self.letter, self.site
            ),
            &["direction", "peer site", "flips"],
        );
        for (dest, n) in &self.outflow_during {
            t.row(vec![
                "out (during)".into(),
                format!("{}-{}", self.letter, dest),
                n.to_string(),
            ]);
        }
        for (src, n) in &self.inflow_after {
            t.row(vec![
                "in (after)".into(),
                format!("{}-{}", self.letter, src),
                n.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fixture::smoke;

    #[test]
    fn attacked_letters_flip_during_events() {
        let out = smoke();
        let fig = figure8(out);
        // K flips and those flips concentrate in the event windows.
        let k_total = fig.total(Letter::K);
        assert!(k_total > 0.0, "no K flips at all");
        let share = fig.event_share(out, Letter::K);
        assert!(share > 0.5, "K event flip share {share}");
    }

    #[test]
    fn unattacked_letters_flip_little() {
        let out = smoke();
        let fig = figure8(out);
        let k = fig.total(Letter::K);
        let m = fig.total(Letter::M);
        assert!(m < k, "M (not attacked) flips {m} should be below K's {k}");
    }

    #[test]
    fn lhr_outflow_reaches_ams() {
        let out = smoke();
        let flow = figure10(out, Letter::K, "LHR");
        let total: u64 = flow.outflow_during.values().sum();
        assert!(total > 0, "no outflow from K-LHR during events");
        // AMS should be a major destination (the paper: 70-80%).
        let ams = flow.outflow_share("AMS");
        assert!(ams.is_finite() && ams >= 0.0, "share must be finite: {ams}");
        assert!(flow.render().to_string().contains("Figure 10"));
    }

    #[test]
    fn outflow_share_of_quiet_site_is_zero_not_nan() {
        // A site that never shed a VP during the events has no outflow
        // to apportion: every share is 0.0. The old 0/0 path returned
        // NaN, which leaked into Figure 10 CSV exports.
        let flow = FlowTable {
            letter: Letter::K,
            site: "LHR".into(),
            outflow_during: BTreeMap::new(),
            inflow_after: BTreeMap::new(),
        };
        let share = flow.outflow_share("AMS");
        assert_eq!(share, 0.0, "empty outflow must yield 0.0, got {share}");
    }

    #[test]
    fn outflow_share_sums_to_one() {
        let out = smoke();
        let flow = figure10(out, Letter::K, "LHR");
        if !flow.outflow_during.is_empty() {
            let sum: f64 = flow
                .outflow_during
                .keys()
                .map(|d| flow.outflow_share(d))
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "shares sum {sum}");
        }
    }
}
