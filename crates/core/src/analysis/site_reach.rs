//! Figures 5 & 6 (per-site reachability for a letter) and Table 2's
//! observed-site census.
//!
//! Figure 5 summarizes each site by its minimum and maximum VP count
//! normalized to the site's median; Figure 6 shows the full per-site
//! time series with "critical" bins where reachability fell below the
//! median. Table 2's right column counts the sites a letter *observably*
//! operates — what CHAOS answers reveal to the measurement platform.

use crate::analysis::{min_during_events, STABLE_SITE_MIN_VPS};
use crate::render::{num, sparkline, TextTable};
use crate::sim::SimOutput;
use rootcast_dns::Letter;
use rootcast_netsim::BinnedSeries;
use serde::Serialize;

/// One site's Figure 5 row.
#[derive(Debug, Clone, Serialize)]
pub struct SiteRow {
    pub code: String,
    pub median: f64,
    /// min over bins / median.
    pub min_norm: f64,
    /// max over bins / median.
    pub max_norm: f64,
    /// Whether the site clears the 20-VP stability threshold.
    pub stable: bool,
    /// Worst bin during the events, normalized.
    pub event_min_norm: f64,
}

/// Figure 5 for one letter.
#[derive(Debug, Clone, Serialize)]
pub struct Figure5 {
    pub letter: Letter,
    /// Rows ordered by median VP count, descending (the paper's order).
    pub rows: Vec<SiteRow>,
}

pub fn figure5(out: &SimOutput, letter: Letter) -> Figure5 {
    let data = out.pipeline.letter(letter);
    let mut rows: Vec<SiteRow> = Vec::new();
    let mut seen: std::collections::BTreeSet<&str> = Default::default();
    for (i, code) in data.site_codes.iter().enumerate() {
        // Duplicate codes (multi-origin sites like K-LHR) are recorded
        // under their first index; skip the shadow entries.
        if !seen.insert(code) {
            continue;
        }
        let s = &data.site_counts[i];
        let median = s.median();
        if median <= 0.0 && s.max() <= 0.0 {
            continue; // site never observed
        }
        let denom = median.max(1.0);
        rows.push(SiteRow {
            code: code.clone(),
            median,
            min_norm: s.min() / denom,
            max_norm: s.max() / denom,
            stable: median >= STABLE_SITE_MIN_VPS,
            event_min_norm: min_during_events(out, s) / denom,
        });
    }
    rows.sort_by(|a, b| b.median.total_cmp(&a.median));
    Figure5 { letter, rows }
}

impl Figure5 {
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "Figure 5: {}-root per-site min/max (normalized to median)",
                self.letter
            ),
            &[
                "site",
                "median",
                "min/med",
                "max/med",
                "event min/med",
                "stable",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                format!("{}-{}", self.letter, r.code),
                num(r.median, 0),
                num(r.min_norm, 2),
                num(r.max_norm, 2),
                num(r.event_min_norm, 2),
                if r.stable { "yes".into() } else { "".into() },
            ]);
        }
        t
    }
}

/// One site's Figure 6 panel.
#[derive(Debug, Clone, Serialize)]
pub struct SitePanel {
    pub code: String,
    pub median: f64,
    pub series: BinnedSeries,
    /// Bin indices where the count fell below the median — the paper's
    /// red "critical" stretches.
    pub critical_bins: Vec<usize>,
}

/// Figure 6 for one letter.
#[derive(Debug, Clone, Serialize)]
pub struct Figure6 {
    pub letter: Letter,
    pub panels: Vec<SitePanel>,
}

pub fn figure6(out: &SimOutput, letter: Letter) -> Figure6 {
    let data = out.pipeline.letter(letter);
    let mut seen: std::collections::BTreeSet<&str> = Default::default();
    let mut panels: Vec<SitePanel> = Vec::new();
    for (i, code) in data.site_codes.iter().enumerate() {
        if !seen.insert(code) {
            continue;
        }
        let series = data.site_counts[i].clone();
        let median = series.median();
        if median <= 0.0 && series.max() <= 0.0 {
            continue;
        }
        let critical_bins = series
            .values()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v < median * 0.75)
            .map(|(b, _)| b)
            .collect();
        panels.push(SitePanel {
            code: code.clone(),
            median,
            series,
            critical_bins,
        });
    }
    panels.sort_by(|a, b| b.median.total_cmp(&a.median));
    Figure6 { letter, panels }
}

impl Figure6 {
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!("Figure 6: {}-root per-site reachability", self.letter),
            &["site", "median", "critical bins", "series"],
        );
        for p in &self.panels {
            t.row(vec![
                format!("{}-{}", self.letter, p.code),
                num(p.median, 0),
                p.critical_bins.len().to_string(),
                sparkline(p.series.values()),
            ]);
        }
        t
    }
}

/// Table 2: reported vs observed sites for every letter.
#[derive(Debug, Clone, Serialize)]
pub struct CensusRow {
    pub letter: Letter,
    pub operator: String,
    /// Sites in the deployment configuration ("reported").
    pub reported: usize,
    /// Distinct site codes ever observed via CHAOS by any cleaned VP.
    pub observed: usize,
}

#[derive(Debug, Clone, Serialize)]
pub struct Table2 {
    pub rows: Vec<CensusRow>,
}

pub fn table2(out: &SimOutput) -> Table2 {
    let rows = out
        .letters
        .iter()
        .enumerate()
        .map(|(i, &letter)| {
            let data = out.pipeline.letter(letter);
            let mut codes: std::collections::BTreeSet<&str> = Default::default();
            for (s, code) in data.site_codes.iter().enumerate() {
                if data.site_counts[s].max() > 0.0 {
                    codes.insert(code);
                }
            }
            // Distinct configured codes (a dual-origin site counts once).
            let reported: std::collections::BTreeSet<&str> = out.deployments[i]
                .sites
                .iter()
                .map(|s| s.code.as_str())
                .collect();
            CensusRow {
                letter,
                operator: letter.operator().to_string(),
                reported: reported.len(),
                observed: codes.len(),
            }
        })
        .collect();
    Table2 { rows }
}

impl Table2 {
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 2: letters, reported vs observed sites",
            &["letter", "operator", "reported", "observed"],
        );
        for r in &self.rows {
            t.row(vec![
                r.letter.to_string(),
                r.operator.clone(),
                r.reported.to_string(),
                r.observed.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fixture::smoke;

    #[test]
    fn figure5_ordered_by_median() {
        let fig = figure5(smoke(), Letter::K);
        assert!(!fig.rows.is_empty());
        for pair in fig.rows.windows(2) {
            assert!(pair[0].median >= pair[1].median);
        }
        // Normalizations are consistent: min <= 1 <= max for sites with
        // a positive median.
        for r in fig.rows.iter().filter(|r| r.median >= 1.0) {
            assert!(r.min_norm <= 1.0 + 1e-9, "{}: min {}", r.code, r.min_norm);
            assert!(r.max_norm >= 1.0 - 1e-9, "{}: max {}", r.code, r.max_norm);
        }
    }

    #[test]
    fn duplicate_site_codes_collapse() {
        // K-LHR has two origins but must appear once.
        let fig = figure5(smoke(), Letter::K);
        let lhr = fig.rows.iter().filter(|r| r.code == "LHR").count();
        assert!(lhr <= 1, "LHR appeared {lhr} times");
    }

    #[test]
    fn stressed_k_sites_show_critical_bins() {
        let fig = figure6(smoke(), Letter::K);
        let total_critical: usize = fig.panels.iter().map(|p| p.critical_bins.len()).sum();
        assert!(total_critical > 0, "no critical bins anywhere");
    }

    #[test]
    fn unattacked_letter_has_few_critical_bins() {
        let fig = figure6(smoke(), Letter::M);
        let stable_panels = fig.panels.iter().filter(|p| p.median >= 5.0);
        for p in stable_panels {
            assert!(
                p.critical_bins.len() <= 3,
                "M-{} critical {} bins",
                p.code,
                p.critical_bins.len()
            );
        }
    }

    #[test]
    fn census_counts_are_sane() {
        let t2 = table2(smoke());
        assert_eq!(t2.rows.len(), 13);
        for r in &t2.rows {
            assert!(
                r.observed <= r.reported,
                "{}: observed {} > reported {}",
                r.letter,
                r.observed,
                r.reported
            );
        }
        let b = t2.rows.iter().find(|r| r.letter == Letter::B).unwrap();
        assert_eq!(b.reported, 1);
        assert_eq!(b.observed, 1);
        assert!(t2.render().to_string().contains("Table 2"));
    }
}
