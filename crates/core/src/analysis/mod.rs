//! One analysis module per table/figure of the paper.
//!
//! Each module consumes a finished [`SimOutput`](crate::sim::SimOutput)
//! and produces the same rows/series the paper reports, plus a
//! [`TextTable`](crate::render::TextTable) rendering:
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`reachability`] | Figure 3 + the §3.2.1 site-count/worst-reachability correlation |
//! | [`letter_rtt`]   | Figure 4 |
//! | [`site_reach`]   | Figures 5 & 6 and Table 2's observed-site census |
//! | [`site_rtt`]     | Figure 7 |
//! | [`flips`]        | Figures 8 & 10 |
//! | [`routing`]      | Figure 9 |
//! | [`raster`]       | Figure 11 (+ the §3.4.2 client cohorts) |
//! | [`servers`]      | Figures 12 & 13 |
//! | [`collateral`]   | Figures 14 & 15 |
//! | [`event_size`]   | Table 3 |
//!
//! The §2.2 policy model (Figure 2) lives in
//! [`crate::policy_model`] since it needs no simulation output.

pub mod collateral;
pub mod event_size;
pub mod flips;
pub mod letter_rtt;
pub mod raster;
pub mod reachability;
pub mod routing;
pub mod servers;
pub mod site_reach;
pub mod site_rtt;

use crate::sim::SimOutput;
use rootcast_netsim::{SimDuration, SimTime};

/// Minimum median VP count for a site to be considered stable
/// (§2.4.1: "we only consider sites whose catchments contain a median of
/// at least 20 VPs").
pub const STABLE_SITE_MIN_VPS: f64 = 20.0;

/// The event windows of a run, as `(start, end)` pairs.
pub fn event_windows(out: &SimOutput) -> Vec<(SimTime, SimTime)> {
    out.attack
        .windows()
        .iter()
        .map(|w| (w.start, w.end()))
        .collect()
}

/// The union cover of all event windows padded by `pad` on each side —
/// the "during the events" mask used when scanning for worst values.
pub fn padded_event_windows(out: &SimOutput, pad: SimDuration) -> Vec<(SimTime, SimTime)> {
    event_windows(out)
        .into_iter()
        .map(|(s, e)| {
            let start = SimTime::from_nanos(s.as_nanos().saturating_sub(pad.as_nanos()));
            (start, e + pad)
        })
        .collect()
}

/// Minimum of a series restricted to the event windows. Returns NaN
/// when no event window intersects the series (e.g. a horizon that ends
/// before the first attack) — callers render NaN as "no event observed"
/// rather than reporting a fictitious extreme.
pub fn min_during_events(out: &SimOutput, series: &rootcast_netsim::BinnedSeries) -> f64 {
    let mut min = f64::INFINITY;
    let mut seen = false;
    for (s, e) in padded_event_windows(out, SimDuration::from_mins(10)) {
        let w = series.window(s, e);
        if !w.is_empty() {
            min = min.min(w.min());
            seen = true;
        }
    }
    if seen {
        min
    } else {
        f64::NAN
    }
}

/// A quiet-period baseline: the median over the pre-event hours
/// (scenario start to first event).
pub fn pre_event_baseline(out: &SimOutput, series: &rootcast_netsim::BinnedSeries) -> f64 {
    let first = event_windows(out)
        .first()
        .map(|&(s, _)| s)
        .unwrap_or(out.horizon);
    series.window(SimTime::ZERO, first).median()
}

/// Shared test fixture: one small simulation reused by every analysis
/// module's tests (building it dominates test cost).
#[cfg(test)]
pub(crate) mod fixture {
    use crate::sim::{run, ScenarioConfig, SimOutput};
    use rootcast_attack::{AttackSchedule, AttackWindow};
    use rootcast_netsim::{SimDuration, SimTime};
    use std::sync::OnceLock;

    static OUT: OnceLock<SimOutput> = OnceLock::new();

    /// A 3-hour run with one 40-minute event, small fleet.
    pub fn smoke() -> &'static SimOutput {
        OUT.get_or_init(|| {
            let mut cfg = ScenarioConfig::small();
            cfg.horizon = SimTime::from_hours(3);
            cfg.pipeline.horizon = cfg.horizon;
            cfg.attack = AttackSchedule::new(vec![AttackWindow {
                start: SimTime::from_mins(60),
                duration: SimDuration::from_mins(40),
                qname: "www.336901.com".into(),
                targets: AttackSchedule::nov2015_targets(),
                rate_qps: 3_000_000.0,
            }]);
            run(&cfg).expect("valid scenario")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_window_helpers() {
        let out = fixture::smoke();
        let w = event_windows(out);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, SimTime::from_mins(60));
        assert_eq!(w[0].1, SimTime::from_mins(100));
        let padded = padded_event_windows(out, SimDuration::from_mins(10));
        assert_eq!(padded[0].0, SimTime::from_mins(50));
        assert_eq!(padded[0].1, SimTime::from_mins(110));
    }

    #[test]
    fn baseline_and_event_min_differ_for_attacked_letter() {
        let out = fixture::smoke();
        let b = out.pipeline.letter(rootcast_dns::Letter::B);
        let base = pre_event_baseline(out, &b.success);
        let worst = min_during_events(out, &b.success);
        assert!(worst < base, "B-root: worst {worst} !< baseline {base}");
    }
}
