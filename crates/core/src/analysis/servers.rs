//! Figures 12 & 13: individual servers inside watched sites.
//!
//! §3.5's finding: per-server behaviour can diverge sharply from
//! site-level behaviour. At K-FRA, replies collapsed onto a single
//! surviving server during each event (a different one each time); at
//! K-NRT all three servers stayed visible but slow, one markedly more
//! loaded than its siblings. Measurement studies must therefore observe
//! *all* servers of a site.

use crate::analysis::{event_windows, pre_event_baseline};
use crate::render::{num, sparkline, TextTable};
use crate::sim::SimOutput;
use rootcast_dns::Letter;
use rootcast_netsim::{BinnedSeries, Reduce};
use serde::Serialize;
use std::collections::BTreeMap;

/// Per-server data for one watched site.
#[derive(Debug, Clone, Serialize)]
pub struct ServerPanel {
    pub letter: Letter,
    pub site: String,
    /// Per-server VP counts per bin (key = server ordinal).
    pub counts: BTreeMap<u16, BinnedSeries>,
    /// Per-server median RTT (ms) per bin.
    pub rtt_ms: BTreeMap<u16, BinnedSeries>,
}

#[derive(Debug, Clone, Serialize)]
pub struct Figures12And13 {
    pub panels: Vec<ServerPanel>,
}

pub fn figures12_13(out: &SimOutput) -> Figures12And13 {
    let mut panels = Vec::new();
    for &letter in &out.letters {
        let data = out.pipeline.letter(letter);
        for (&site_idx, watch) in &data.watches {
            let rtt_ms = watch
                .rtts
                .iter()
                .map(|(&srv, samples)| {
                    let nanos = samples.reduce(Reduce::Median, f64::NAN);
                    (
                        srv,
                        BinnedSeries::from_values(
                            nanos.bin_width(),
                            nanos.values().iter().map(|v| v / 1e6).collect(),
                        ),
                    )
                })
                .collect();
            panels.push(ServerPanel {
                letter,
                site: data.site_codes[site_idx as usize].clone(),
                counts: watch.counts.clone(),
                rtt_ms,
            });
        }
    }
    Figures12And13 { panels }
}

impl ServerPanel {
    /// Which servers answered in the settled second half of each event
    /// window (the first minutes contain the pre-overload transition,
    /// which is not what Figure 12 characterizes).
    pub fn responding_during_events(&self, out: &SimOutput) -> Vec<Vec<u16>> {
        event_windows(out)
            .into_iter()
            .map(|(s, e)| {
                let half = s + (e - s) / 2;
                self.counts
                    .iter()
                    .filter(|(_, series)| series.window(half, e).values().iter().sum::<f64>() > 0.0)
                    .map(|(&srv, _)| srv)
                    .collect()
            })
            .collect()
    }

    /// Servers answering before the first event (the healthy set).
    pub fn responding_baseline(&self, out: &SimOutput) -> Vec<u16> {
        self.counts
            .iter()
            .filter(|(_, series)| pre_event_baseline(out, series) > 0.0)
            .map(|(&srv, _)| srv)
            .collect()
    }
}

impl Figures12And13 {
    pub fn site(&self, letter: Letter, code: &str) -> Option<&ServerPanel> {
        let code = code.to_ascii_uppercase();
        self.panels
            .iter()
            .find(|p| p.letter == letter && p.site == code)
    }

    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figures 12/13: per-server reachability and RTT at watched sites",
            &[
                "site",
                "server",
                "total answers",
                "median rtt ms",
                "count series",
            ],
        );
        for p in &self.panels {
            for (&srv, counts) in &p.counts {
                let rtt = p.rtt_ms.get(&srv).map(|s| s.median()).unwrap_or(f64::NAN);
                t.row(vec![
                    format!("{}-{}", p.letter, p.site),
                    format!("s{srv}"),
                    num(counts.values().iter().sum(), 0),
                    num(rtt, 1),
                    sparkline(counts.values()),
                ]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fixture::smoke;

    #[test]
    fn k_fra_concentrates_to_one_server() {
        let out = smoke();
        let figs = figures12_13(out);
        let fra = figs.site(Letter::K, "FRA").expect("K-FRA watched");
        let healthy = fra.responding_baseline(out);
        assert!(healthy.len() >= 2, "baseline servers {healthy:?}");
        let during = fra.responding_during_events(out);
        // In the (single) event the responding set shrinks to one
        // survivor — the §3.5 K-FRA pattern.
        assert_eq!(
            during[0].len(),
            1,
            "K-FRA during-event servers {:?}",
            during[0]
        );
    }

    #[test]
    fn k_nrt_keeps_all_servers_but_slow() {
        let out = smoke();
        let figs = figures12_13(out);
        let nrt = figs.site(Letter::K, "NRT").expect("K-NRT watched");
        let healthy = nrt.responding_baseline(out);
        let during = nrt.responding_during_events(out);
        // SharedLink mode: nobody disappears entirely.
        assert_eq!(
            during[0].len(),
            healthy.len(),
            "K-NRT lost servers: {:?} -> {:?}",
            healthy,
            during[0]
        );
    }

    #[test]
    fn per_server_rtt_rises_at_nrt() {
        let out = smoke();
        let figs = figures12_13(out);
        let nrt = figs.site(Letter::K, "NRT").expect("K-NRT watched");
        let (es, ee) = crate::analysis::event_windows(out)[0];
        let mut any_rise = false;
        for series in nrt.rtt_ms.values() {
            let base = pre_event_baseline(out, series);
            let w = series.window(es, ee);
            if !w.is_empty() && w.max() > base * 2.0 {
                any_rise = true;
            }
        }
        assert!(any_rise, "no K-NRT server showed RTT inflation");
    }

    #[test]
    fn render_contains_servers() {
        let figs = figures12_13(smoke());
        let s = figs.render().to_string();
        assert!(s.contains("s1"));
    }
}
