//! Figure 4: median RTT per letter over time.
//!
//! The paper plots only letters whose RTT visibly changes (B, C, G, H,
//! K) and notes that H's event-time median converges to B's — evidence
//! that H's (European) clients were re-routed across the Atlantic to its
//! West-coast backup when the East-coast primary withdrew.

use crate::analysis::{event_windows, pre_event_baseline};
use crate::render::{num, sparkline, TextTable};
use crate::sim::SimOutput;
use rootcast_dns::Letter;
use rootcast_netsim::BinnedSeries;
use serde::Serialize;

/// One letter's RTT trajectory.
#[derive(Debug, Clone, Serialize)]
pub struct RttRow {
    pub letter: Letter,
    /// Median RTT per bin, milliseconds (NaN where nothing succeeded).
    pub series_ms: BinnedSeries,
    /// Pre-event baseline median, ms.
    pub baseline_ms: f64,
    /// Peak bin-median during the events, ms.
    pub event_peak_ms: f64,
    /// `event_peak / baseline`; letters above [`SIGNIFICANT_CHANGE`] are
    /// the ones the paper plots.
    pub change_factor: f64,
}

/// Change factor beyond which a letter is considered visibly affected.
pub const SIGNIFICANT_CHANGE: f64 = 1.5;

#[derive(Debug, Clone, Serialize)]
pub struct Figure4 {
    pub rows: Vec<RttRow>,
}

pub fn figure4(out: &SimOutput) -> Figure4 {
    let rows = out
        .letters
        .iter()
        .map(|&letter| {
            let series_ms = out.pipeline.letter(letter).rtt_median_ms();
            let baseline_ms = pre_event_baseline(out, &series_ms);
            let mut peak: f64 = f64::NAN;
            for (s, e) in event_windows(out) {
                let w = series_ms.window(s, e);
                if !w.is_empty() {
                    let m = w.max();
                    peak = if peak.is_nan() { m } else { peak.max(m) };
                }
            }
            RttRow {
                letter,
                change_factor: if baseline_ms > 0.0 {
                    peak / baseline_ms
                } else {
                    f64::NAN
                },
                series_ms,
                baseline_ms,
                event_peak_ms: peak,
            }
        })
        .collect();
    Figure4 { rows }
}

impl Figure4 {
    /// The letters the figure would plot: visible change only.
    pub fn significant(&self) -> Vec<&RttRow> {
        self.rows
            .iter()
            .filter(|r| r.change_factor.is_finite() && r.change_factor >= SIGNIFICANT_CHANGE)
            .collect()
    }

    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 4: median RTT per letter (ms)",
            &[
                "letter",
                "baseline",
                "event peak",
                "factor",
                "plotted",
                "series",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.letter.to_string(),
                num(r.baseline_ms, 1),
                num(r.event_peak_ms, 1),
                num(r.change_factor, 2),
                if r.change_factor >= SIGNIFICANT_CHANGE {
                    "yes".into()
                } else {
                    "".into()
                },
                sparkline(r.series_ms.values()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fixture::smoke;

    #[test]
    fn h_root_rtt_jumps_when_primary_withdraws() {
        let fig = figure4(smoke());
        let h = fig.rows.iter().find(|r| r.letter == Letter::H).unwrap();
        assert!(
            h.change_factor > SIGNIFICANT_CHANGE,
            "H change factor {} (baseline {} peak {})",
            h.change_factor,
            h.baseline_ms,
            h.event_peak_ms
        );
    }

    #[test]
    fn unattacked_letters_rtt_stable() {
        let fig = figure4(smoke());
        for l in [Letter::L, Letter::M] {
            let r = fig.rows.iter().find(|r| r.letter == l).unwrap();
            assert!(
                r.change_factor < SIGNIFICANT_CHANGE,
                "{l} factor {}",
                r.change_factor
            );
        }
    }

    #[test]
    fn k_root_shows_bufferbloat() {
        // K's absorbing sites queue heavily: the letter-level median
        // must rise during the event.
        let fig = figure4(smoke());
        let k = fig.rows.iter().find(|r| r.letter == Letter::K).unwrap();
        assert!(
            k.event_peak_ms > k.baseline_ms * 2.0,
            "K baseline {} peak {}",
            k.baseline_ms,
            k.event_peak_ms
        );
    }

    #[test]
    fn significant_set_nonempty_and_renders() {
        let fig = figure4(smoke());
        assert!(!fig.significant().is_empty());
        assert!(fig.render().to_string().contains("Figure 4"));
    }
}
