//! The scenario driver: a thin builder over the subsystem
//! [`engine`](crate::engine).
//!
//! ## Structure of a run
//!
//! [`run`] validates the configuration
//! ([`ScenarioConfig::validate`]), builds a
//! [`SimWorld`](crate::engine::SimWorld) (topology, services, traffic
//! sources, the calibrated VP fleet) and drives six subsystems against
//! it on one deterministic schedule:
//!
//! * [`FluidTraffic`](crate::engine::FluidTraffic) (every minute):
//!   distribute attack + legitimate load over each service's current
//!   catchments, push it through the shared-facility links and per-site
//!   ingress queues, and let stress policies withdraw/re-announce.
//! * [`RssacAccounting`](crate::engine::RssacAccounting) (same cadence,
//!   ticking after the fluid step): RSSAC byte/query accounting and the
//!   `.nl` served-rate series.
//! * [`ProbeWheel`](crate::engine::ProbeWheel) (every minute): the
//!   Atlas fleet's wheel — each (VP, letter) pair probes on its own
//!   phase of the letter's probing interval (§2.4.1).
//! * [`ResolverRefresh`](crate::engine::ResolverRefresh) (every
//!   10 min): resolvers re-weight letter preferences from current
//!   RTT/loss — the letter-flip mechanism (§3.2.2).
//! * [`MaintenanceChurn`](crate::engine::MaintenanceChurn): background
//!   operator maintenance noise.
//! * [`FaultInjector`](crate::engine::FaultInjector) (seeded last, so
//!   same-instant faults land after production ticks): scheduled fault
//!   injection from the scenario's
//!   [`FaultPlan`](crate::engine::FaultPlan). An empty plan never
//!   wakes, leaving the run bit-identical to a five-subsystem one.
//!
//! Everything is deterministic in the scenario seed, at any rayon
//! thread count.

use crate::deployment::{self, LetterDeployment};
use crate::engine::metrics::keys;
use crate::engine::Substrate;
use crate::engine::{
    drive, FaultInjector, FluidTraffic, Instrumentation, MaintenanceChurn, ProbeWheel, Profiler,
    ResolverRefresh, RssacAccounting, RunProfile, RunStats, SimWorld, StatsCollector, Subsystem,
    TraceSnapshot,
};
use crate::error::RootcastError;
use rootcast_anycast::AnycastService;
use rootcast_atlas::{CleaningReport, MeasurementPipeline};
use rootcast_attack::{AttackSchedule, Botnet};
use rootcast_bgp::RouteCollector;
use rootcast_dns::Letter;
use rootcast_netsim::{BinnedSeries, MetricsSnapshot, SimDuration, SimRng, SimTime};
use rootcast_rssac::{DailyReport, RssacCollector};
use rootcast_topology::gen;
use std::collections::BTreeMap;

pub use crate::config::ScenarioConfig;

/// Everything a finished run hands to the analysis layer.
pub struct SimOutput {
    pub letters: Vec<Letter>,
    pub pipeline: MeasurementPipeline,
    pub cleaning: CleaningReport,
    pub collectors: BTreeMap<Letter, RouteCollector>,
    pub rssac: BTreeMap<Letter, RssacCollector>,
    /// Synthesized pre-event baseline (7-day mean) per reporting letter.
    pub rssac_baseline: BTreeMap<Letter, DailyReport>,
    /// Per-site served-query series for .nl (code, series), 10-min bins.
    pub nl_sites: Vec<(String, BinnedSeries)>,
    pub deployments: Vec<LetterDeployment>,
    pub attack: AttackSchedule,
    pub horizon: SimTime,
    pub n_ases: usize,
    pub n_vps_kept: usize,
    /// Probe interval for letters other than A.
    pub probe_interval: SimDuration,
    /// A-root's (slower) probe interval.
    pub a_probe_interval: SimDuration,
    /// Engine instrumentation summary (tick counts, wall time, load
    /// extremes). Empty when the run used a custom observer.
    pub run_stats: RunStats,
    /// Every engine metric, frozen at the end of the run (see
    /// [`metrics::keys`](crate::engine::metrics::keys) for the catalog).
    pub metrics: MetricsSnapshot,
    /// The structured event trace (empty unless
    /// [`ScenarioConfig::trace`] enabled it).
    pub trace: TraceSnapshot,
}

/// Run the scenario to completion with the default stats-collecting
/// observer. Fails fast with a typed error when the configuration
/// breaks an invariant ([`ScenarioConfig::validate`]).
pub fn run(cfg: &ScenarioConfig) -> Result<SimOutput, RootcastError> {
    let mut stats = StatsCollector::default();
    let mut out = run_observed(cfg, &mut stats)?;
    out.run_stats = stats.finish();
    Ok(out)
}

/// Run the scenario with a caller-supplied [`Instrumentation`]
/// observer. The observer sees the run but cannot influence it: outputs
/// are bit-identical for any observer.
pub fn run_observed(
    cfg: &ScenarioConfig,
    obs: &mut dyn Instrumentation,
) -> Result<SimOutput, RootcastError> {
    cfg.validate()?;
    let rng_factory = SimRng::new(cfg.seed);
    obs.on_phase_start("build_world");
    let world = SimWorld::build(cfg, &rng_factory, obs)?;
    world.obs.on_phase_end("build_world");
    drive_world(world)
}

/// Run the scenario over a prebuilt shared [`Substrate`] (topology,
/// deployments, baseline RIBs, botnet, fleet, calibration), paying only
/// the per-run build cost. `SimWorld::build` is exactly
/// `Substrate::build` + `SimWorld::from_substrate`, so the output is
/// bit-identical to [`run`] on the same config — the sweep runner's
/// determinism contract rests on this single shared build path. Fails
/// with a typed error when the substrate was built for different
/// substrate knobs ([`ScenarioConfig::substrate_key`]) or an override
/// names an unknown site.
pub fn run_with_substrate(
    cfg: &ScenarioConfig,
    substrate: &Substrate,
) -> Result<SimOutput, RootcastError> {
    let mut stats = StatsCollector::default();
    let mut out = run_observed_with_substrate(cfg, substrate, &mut stats)?;
    out.run_stats = stats.finish();
    Ok(out)
}

/// [`run_with_substrate`] with a caller-supplied observer.
pub fn run_observed_with_substrate(
    cfg: &ScenarioConfig,
    substrate: &Substrate,
    obs: &mut dyn Instrumentation,
) -> Result<SimOutput, RootcastError> {
    cfg.validate()?;
    let rng_factory = SimRng::new(cfg.seed);
    obs.on_phase_start("build_world");
    let world = SimWorld::from_substrate(cfg, &rng_factory, substrate, obs)?;
    world.obs.on_phase_end("build_world");
    drive_world(world)
}

/// Drive a built world to completion and package the output: the common
/// back half of every entry point.
fn drive_world(mut world: SimWorld<'_>) -> Result<SimOutput, RootcastError> {
    let cfg = world.cfg;
    let rng_factory = world.rng_factory;
    // Seeding order is the same-instant tie-break: accounting must
    // follow the fluid step whose window it settles, and faults apply
    // after every production subsystem has ticked the instant.
    let mut subsystems: Vec<Box<dyn Subsystem>> = vec![
        Box::new(FluidTraffic::new(cfg.fluid_step).with_reference(cfg.reference_kernels)),
        Box::new(RssacAccounting::new(cfg)),
        Box::new(ProbeWheel::new(&world)),
        Box::new(ResolverRefresh::new(cfg.resolver_update)),
        Box::new(MaintenanceChurn::new(
            rng_factory.stream("maintenance"),
            cfg.maintenance_mean,
        )),
        Box::new(FaultInjector::new(
            rng_factory.stream("faults"),
            cfg.faults.clone(),
        )),
    ];
    world.obs.on_phase_start("drive");
    drive(&mut world, &mut subsystems, cfg.horizon);
    world.obs.on_phase_end("drive");

    world.obs.on_phase_start("finalize");
    world.pipeline.finalize();

    // End-of-run metric settlement: stats accumulated inside the lower
    // layers (pipeline outcomes, scratch-buffer reuse, fleet cleaning)
    // are copied into the registry so the snapshot is the one place to
    // look.
    let outcomes = world.pipeline.outcome_stats();
    world.metrics.inc(keys::PROBES_SITE, outcomes.site);
    world.metrics.inc(keys::PROBES_TIMEOUT, outcomes.timeout);
    world.metrics.inc(keys::PROBES_ERROR, outcomes.error);
    world.metrics.inc(keys::PROBES_MISSED, outcomes.missed);
    let kept = world.cleaning.kept_count();
    world.metrics.set_gauge(keys::VPS_KEPT, kept as f64);
    world
        .metrics
        .set_gauge(keys::VPS_DROPPED, (world.fleet.len() - kept) as f64);
    let (reuses, allocs) = world.services.iter().fold((0, 0), |(r, a), svc| {
        let (r2, a2) = svc.scratch_stats();
        (r + r2, a + a2)
    });
    world.metrics.inc(keys::BGP_SCRATCH_REUSES, reuses);
    world.metrics.inc(keys::BGP_SCRATCH_ALLOCS, allocs);
    world
        .metrics
        .inc(keys::TRACE_EVENTS_DROPPED, world.trace.dropped_events());
    let metrics = world.metrics.snapshot();
    let trace = world.trace.snapshot();
    world.obs.on_phase_end("finalize");

    let SimWorld {
        graph,
        letters,
        services,
        nl_index,
        cleaning,
        pipeline,
        collectors,
        rssac,
        rssac_baseline,
        nl_series,
        deployments,
        ..
    } = world;

    let nl_sites = nl_index
        .map(|ni| {
            services[ni]
                .sites()
                .iter()
                .zip(nl_series)
                .map(|(s, series)| (s.spec.code.clone(), series))
                .collect()
        })
        .unwrap_or_default();

    Ok(SimOutput {
        letters,
        pipeline,
        n_vps_kept: cleaning.kept_count(),
        cleaning,
        collectors,
        rssac,
        rssac_baseline,
        nl_sites,
        deployments,
        attack: cfg.attack.clone(),
        horizon: cfg.horizon,
        n_ases: graph.len(),
        probe_interval: cfg.probe_interval,
        a_probe_interval: cfg.a_probe_interval,
        run_stats: RunStats::default(),
        metrics,
        trace,
    })
}

/// Run the scenario with both the default stats collector and the
/// [`Profiler`], returning the output alongside the finished
/// [`RunProfile`] (phase/tick wall times, chrome://tracing export).
/// Profiling is observation only: the output is bit-identical to
/// [`run`]'s.
pub fn run_profiled(cfg: &ScenarioConfig) -> Result<(SimOutput, RunProfile), RootcastError> {
    /// Tee every hook into the stats collector and the profiler.
    struct Tee {
        stats: StatsCollector,
        profiler: Profiler,
    }

    impl Instrumentation for Tee {
        fn on_phase_start(&mut self, phase: &'static str) {
            self.stats.on_phase_start(phase);
            self.profiler.on_phase_start(phase);
        }
        fn on_phase_end(&mut self, phase: &'static str) {
            self.stats.on_phase_end(phase);
            self.profiler.on_phase_end(phase);
        }
        fn on_subsystem_tick(
            &mut self,
            subsystem: &'static str,
            t: SimTime,
            wall: std::time::Duration,
        ) {
            self.stats.on_subsystem_tick(subsystem, t, wall);
            self.profiler.on_subsystem_tick(subsystem, t, wall);
        }
        fn on_letter_load(&mut self, t: SimTime, letter: Letter, offered: f64, served: f64) {
            self.stats.on_letter_load(t, letter, offered, served);
        }
        fn on_queue_depth(&mut self, t: SimTime, letter: Letter, site: &str, delay: SimDuration) {
            self.stats.on_queue_depth(t, letter, site, delay);
        }
        fn on_policy_transition(
            &mut self,
            t: SimTime,
            letter: Letter,
            changes: &rootcast_anycast::RoutingChanges,
        ) {
            self.stats.on_policy_transition(t, letter, changes);
        }
        fn on_fault(&mut self, t: SimTime, fault: &crate::engine::InjectedFault) {
            self.stats.on_fault(t, fault);
        }
    }

    let mut tee = Tee {
        stats: StatsCollector::default(),
        profiler: Profiler::default(),
    };
    let mut out = run_observed(cfg, &mut tee)?;
    out.run_stats = tee.stats.finish();
    Ok((out, tee.profiler.finish()))
}

/// Build the scenario's services and report, for each letter, the
/// attack load (q/s) each site would absorb at the *initial* routing —
/// i.e. the per-catchment exposure of §2.2's model. Used for capacity
/// planning, the policy explorer example, and deployment tuning.
pub fn attack_exposure(cfg: &ScenarioConfig) -> Vec<(Letter, Vec<(String, f64)>)> {
    let rng_factory = SimRng::new(cfg.seed);
    let graph = gen::generate(&cfg.topology, &rng_factory);
    let botnet = Botnet::generate(&graph, cfg.botnet.clone(), &rng_factory);
    let deployments = deployment::nov2015_deployments(&graph);
    deployments
        .iter()
        .map(|d| {
            let svc = AnycastService::new(
                &format!("{}-root", d.letter),
                Some(d.letter),
                &graph,
                d.sites.clone(),
            );
            let rate = cfg
                .attack
                .windows()
                .iter()
                .find(|w| w.targets_letter(d.letter))
                .map(|w| w.rate_qps)
                .unwrap_or(0.0);
            let per_site = svc.offered_per_site(botnet.weights(), rate);
            let named = svc
                .sites()
                .iter()
                .zip(per_site)
                .map(|(s, q)| (s.spec.code.clone(), q))
                .collect();
            (d.letter, named)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared small run for the driver's smoke tests (building it is
    /// the expensive part; assertions are cheap).
    fn smoke() -> SimOutput {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_hours(2);
        cfg.pipeline.horizon = cfg.horizon;
        cfg.attack = AttackSchedule::new(vec![rootcast_attack::AttackWindow {
            start: SimTime::from_mins(30),
            duration: SimDuration::from_mins(30),
            qname: "www.336901.com".into(),
            targets: AttackSchedule::nov2015_targets(),
            rate_qps: 2_000_000.0,
        }]);
        run(&cfg).expect("valid scenario")
    }

    #[test]
    fn driver_produces_consistent_output() {
        let out = smoke();
        assert_eq!(out.letters.len(), 13);
        assert!(out.n_vps_kept > 300, "kept {}", out.n_vps_kept);
        // Every letter has pipeline data.
        for &l in &out.letters {
            let d = out.pipeline.letter(l);
            assert!(!d.site_codes.is_empty());
        }
        // B-root suffers during the attack: its success series dips.
        let b = out.pipeline.letter(Letter::B);
        let pre: f64 = b
            .success
            .window(SimTime::ZERO, SimTime::from_mins(30))
            .max();
        let during: f64 = b
            .success
            .window(SimTime::from_mins(40), SimTime::from_mins(60))
            .min();
        assert!(
            during < pre * 0.5,
            "B-root should dip under 2 Mq/s: pre={pre} during={during}"
        );
        // L-root (not attacked) stays healthy.
        let l = out.pipeline.letter(Letter::L);
        let l_pre = l
            .success
            .window(SimTime::ZERO, SimTime::from_mins(30))
            .max();
        let l_during = l
            .success
            .window(SimTime::from_mins(40), SimTime::from_mins(60))
            .min();
        assert!(
            l_during > l_pre * 0.8,
            "L-root should stay up: pre={l_pre} during={l_during}"
        );
        // RSSAC: exactly the five reporting letters.
        assert_eq!(out.rssac.len(), 5);
        assert!(out.rssac.contains_key(&Letter::A));
        // .nl series exist.
        assert_eq!(out.nl_sites.len(), 2);
        // The default observer collected engine stats: the five
        // production subsystems ticked (the fault injector never wakes
        // on an empty plan), and load extremes were recorded.
        assert_eq!(out.run_stats.subsystems.len(), 5);
        assert!(out.run_stats.faults.is_empty());
        for name in ["fluid", "rssac", "probes", "resolvers", "maintenance"] {
            assert!(
                out.run_stats.subsystems.contains_key(name),
                "missing stats for {name}"
            );
        }
        let fluid_ticks = out.run_stats.subsystems["fluid"].ticks;
        assert_eq!(fluid_ticks, 120); // one per minute over 2 h
        assert_eq!(out.run_stats.subsystems["rssac"].ticks, fluid_ticks);
        assert!(out.run_stats.peak_offered_qps > 0.0);
        assert!(out.run_stats.worst_served_ratio < 1.0); // B-root melted
    }

    #[test]
    fn runs_are_deterministic() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(40);
        cfg.pipeline.horizon = cfg.horizon;
        let a = run(&cfg).expect("valid scenario");
        let b = run(&cfg).expect("valid scenario");
        for &l in &a.letters {
            assert_eq!(
                a.pipeline.letter(l).success.values(),
                b.pipeline.letter(l).success.values(),
                "letter {l} series differ between identical runs"
            );
        }
        assert_eq!(a.n_vps_kept, b.n_vps_kept);
    }
}
