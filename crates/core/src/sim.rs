//! The scenario driver: wires topology, routing, services, attack,
//! measurement, and reporting into one deterministic simulation of the
//! Nov 30 – Dec 1 2015 events (or any variant).
//!
//! ## Structure of a run
//!
//! The driver interleaves three activities on the shared event queue:
//!
//! * **Fluid steps** (every minute): distribute attack + legitimate
//!   load over each service's current catchments, push it through the
//!   shared-facility links and per-site ingress queues, let stress
//!   policies withdraw/re-announce routes, and account RSSAC traffic.
//! * **Probe ticks** (every minute): the Atlas fleet's wheel — each
//!   (VP, letter) pair probes on its own phase of the letter's probing
//!   interval (4 min; 30 min for A-root, §2.4.1), producing cleaned
//!   observations for the measurement pipeline.
//! * **Resolver updates** (every 10 min): recursive resolvers re-weight
//!   their letter preferences from current RTT/loss — the letter-flip
//!   mechanism (§3.2.2).
//!
//! Everything is deterministic in the scenario seed.

use crate::deployment::{self, facilities, LetterDeployment};
use rootcast_anycast::{AnycastService, FacilityTable, SiteIdx};
use rootcast_atlas::{
    clean_fleet, clean_outcome, execute_probe, ChaosTarget, CleaningReport, FleetParams,
    MeasurementPipeline, PipelineConfig, RawMeasurement, TargetView, VpFleet,
};
use rootcast_attack::{
    population_weights, AttackSchedule, Botnet, BotnetParams, LetterObservation,
    ResolverPopulation, DEFAULT_LEGIT_TOTAL_QPS,
};
use rootcast_bgp::RouteCollector;
use rootcast_dns::rrl::blended_suppression;
use rootcast_dns::{Letter, Message, Name, RootZone, RrClass, RrType};
use rootcast_netsim::rng::exp_sample;
use rootcast_netsim::{
    BinnedSeries, EventQueue, SimDuration, SimRng, SimTime,
};
use rootcast_rssac::{DailyReport, RssacCollector};
use rootcast_topology::{gen, AsId, Tier, TopologyParams};
use rand::Rng;
use std::collections::BTreeMap;

/// Full scenario configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub seed: u64,
    pub topology: TopologyParams,
    pub fleet: FleetParams,
    pub botnet: BotnetParams,
    pub attack: AttackSchedule,
    /// Analysis horizon (the paper's window: 48 h from Nov 30 00:00).
    pub horizon: SimTime,
    /// Fluid model step; must divide the probe wheel minute.
    pub fluid_step: SimDuration,
    /// Probe interval for every letter except A.
    pub probe_interval: SimDuration,
    /// A-root's (slower) probe interval at event time.
    pub a_probe_interval: SimDuration,
    /// Total legitimate root-query load across all letters, q/s.
    pub legit_total_qps: f64,
    /// Resolver preference refresh period.
    pub resolver_update: SimDuration,
    pub pipeline: PipelineConfig,
    /// Number of BGPmon-style collector peers (paper: 152).
    pub n_collector_peers: usize,
    /// Capacity of each shared facility link, q/s: (facility, capacity).
    pub facility_capacities: Vec<(rootcast_anycast::FacilityId, f64)>,
    /// Mean time between background maintenance withdrawals (route
    /// churn noise visible in Figure 9 outside the events); None = off.
    pub maintenance_mean: Option<SimDuration>,
    /// Include the .nl collateral-damage service.
    pub include_nl: bool,
    /// Legitimate .nl query load, q/s (both anycast sites combined).
    pub nl_qps: f64,
}

impl ScenarioConfig {
    /// The canonical full-scale reproduction: 48 h, ~9300 VPs, 5 Mq/s
    /// per attacked letter.
    pub fn nov2015() -> ScenarioConfig {
        ScenarioConfig {
            seed: 20151130,
            topology: TopologyParams::default(),
            fleet: FleetParams::default(),
            botnet: BotnetParams::default(),
            attack: AttackSchedule::nov2015(5_000_000.0),
            horizon: SimTime::from_hours(48),
            fluid_step: SimDuration::from_mins(1),
            probe_interval: SimDuration::from_mins(4),
            a_probe_interval: SimDuration::from_mins(30),
            legit_total_qps: DEFAULT_LEGIT_TOTAL_QPS,
            resolver_update: SimDuration::from_mins(10),
            pipeline: PipelineConfig::paper_default(),
            n_collector_peers: 152,
            facility_capacities: vec![
                // Tuned against the canonical seed's attack exposure so
                // the Frankfurt link saturates once K-LHR's catchment
                // shifts into K-FRA, and Sydney saturates under E-SYD's
                // exposure — the couplings behind Figures 14 and 15.
                (facilities::FRA_SHARED, 95_000.0),
                (facilities::SYD_SHARED, 30_000.0),
            ],
            maintenance_mean: Some(SimDuration::from_mins(90)),
            include_nl: true,
            nl_qps: 80_000.0,
        }
    }

    /// A scaled-down configuration for tests and fast iteration: small
    /// topology, few hundred VPs, 12-hour horizon (covers event 1).
    pub fn small() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::nov2015();
        cfg.topology = TopologyParams {
            n_tier1: 6,
            n_tier2: 30,
            n_stub: 400,
            ..TopologyParams::default()
        };
        cfg.fleet = FleetParams::tiny(400);
        cfg.botnet.n_members = 120;
        cfg.horizon = SimTime::from_hours(12);
        cfg.pipeline.horizon = cfg.horizon;
        cfg.pipeline.rtt_subsample = 2;
        cfg
    }
}

/// Adapter exposing an [`AnycastService`] as a probe target.
struct ServiceTarget<'a> {
    svc: &'a AnycastService,
}

impl ChaosTarget for ServiceTarget<'_> {
    fn letter(&self) -> Letter {
        self.svc.letter.expect("root service has a letter")
    }

    fn view(&self, asn: AsId, client_hash: u64) -> Option<TargetView> {
        let pv = self.svc.probe_view(asn, client_hash)?;
        Some(TargetView {
            site_code: self.svc.site(pv.site).spec.code.clone(),
            server: pv.server,
            rtt: pv.rtt,
            drop_prob: pv.drop_prob,
        })
    }
}

/// Everything a finished run hands to the analysis layer.
pub struct SimOutput {
    pub letters: Vec<Letter>,
    pub pipeline: MeasurementPipeline,
    pub cleaning: CleaningReport,
    pub collectors: BTreeMap<Letter, RouteCollector>,
    pub rssac: BTreeMap<Letter, RssacCollector>,
    /// Synthesized pre-event baseline (7-day mean) per reporting letter.
    pub rssac_baseline: BTreeMap<Letter, DailyReport>,
    /// Per-site served-query series for .nl (code, series), 10-min bins.
    pub nl_sites: Vec<(String, BinnedSeries)>,
    pub deployments: Vec<LetterDeployment>,
    pub attack: AttackSchedule,
    pub horizon: SimTime,
    pub n_ases: usize,
    pub n_vps_kept: usize,
    /// Probe interval for letters other than A.
    pub probe_interval: SimDuration,
    /// A-root's (slower) probe interval.
    pub a_probe_interval: SimDuration,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Fluid model step.
    Fluid,
    /// Probe wheel tick (minute granularity).
    Probes,
    /// Resolver preference refresh.
    Resolvers,
    /// Background maintenance withdrawal.
    Maintenance,
    /// Re-announce after maintenance: (service index, site index).
    MaintenanceEnd(usize, SiteIdx),
}

/// Run the scenario to completion.
pub fn run(cfg: &ScenarioConfig) -> SimOutput {
    assert_eq!(
        cfg.probe_interval.as_secs() % 60,
        0,
        "probe interval must be whole minutes"
    );
    assert_eq!(cfg.a_probe_interval.as_secs() % 60, 0);
    let rng_factory = SimRng::new(cfg.seed);
    let graph = gen::generate(&cfg.topology, &rng_factory);
    let n_ases = graph.len();

    // --- Services -------------------------------------------------------
    let deployments = deployment::nov2015_deployments(&graph);
    let mut services: Vec<AnycastService> = deployments
        .iter()
        .map(|d| {
            AnycastService::new(
                &format!("{}-root", d.letter),
                Some(d.letter),
                &graph,
                d.sites.clone(),
            )
        })
        .collect();
    let letters: Vec<Letter> = deployments.iter().map(|d| d.letter).collect();
    let nl_index = if cfg.include_nl {
        services.push(AnycastService::new(
            ".nl anycast",
            None,
            &graph,
            deployment::nl_deployment(&graph),
        ));
        Some(services.len() - 1)
    } else {
        None
    };

    let mut facility_table = FacilityTable::new();
    for &(fid, cap) in &cfg.facility_capacities {
        facility_table.register(fid, cap, cap * 0.5);
    }

    // --- Traffic sources -------------------------------------------------
    let botnet = Botnet::generate(&graph, cfg.botnet.clone(), &rng_factory);
    let pop_weights = population_weights(&graph);
    let mut resolvers = ResolverPopulation::new(n_ases);
    // Cached per-letter legitimate weight vectors and aggregate letter
    // shares (refreshed on resolver updates). `offered_per_site`
    // normalizes its weight vector, so the letter's *total* legitimate
    // rate must be scaled by its aggregate share separately.
    let mut legit_weights: Vec<Vec<f64>> = letters
        .iter()
        .map(|&l| resolvers.letter_weights(l, &pop_weights))
        .collect();
    let mut legit_shares: [f64; 13] = resolvers.aggregate_shares(&pop_weights);
    // Snapshot of the converged pre-event shares; frozen once the first
    // attack window opens. This is the analogue of the paper's 7-day
    // baseline: each letter's *normal* query share, which is RTT-shaped
    // (distant letters like B and H receive less resolver traffic).
    let mut baseline_shares = legit_shares;
    let first_attack = cfg
        .attack
        .windows()
        .first()
        .map(|w| w.start)
        .unwrap_or(SimTime::MAX);

    // --- Measurement -----------------------------------------------------
    let fleet = VpFleet::generate(&graph, &cfg.fleet, &rng_factory);
    // Calibration pass: one probe per (VP, letter) to feed hijack
    // detection, exactly how the paper's cleaning classifies VPs.
    let mut calibration: Vec<RawMeasurement> = Vec::with_capacity(fleet.len() * letters.len());
    {
        let mut cal_rng = rng_factory.stream("calibration");
        for vp in fleet.iter() {
            for (si, _) in letters.iter().enumerate() {
                let target = ServiceTarget {
                    svc: &services[si],
                };
                calibration.push(execute_probe(vp, &target, SimTime::ZERO, &mut cal_rng));
            }
        }
    }
    let cleaning = clean_fleet(&fleet, &calibration);
    let excluded = cleaning.excluded_set();

    let mut pipeline = MeasurementPipeline::new(cfg.pipeline.clone(), fleet.len());
    for (i, &letter) in letters.iter().enumerate() {
        let codes: Vec<String> = services[i]
            .sites()
            .iter()
            .map(|s| s.spec.code.clone())
            .collect();
        pipeline.register_letter(letter, codes);
    }

    // --- Route collectors (BGPmon) ----------------------------------------
    let mut collectors: BTreeMap<Letter, RouteCollector> = BTreeMap::new();
    {
        let mut rng = rng_factory.stream("bgpmon");
        let stubs = graph.by_tier(Tier::Stub);
        let peers: Vec<AsId> = (0..cfg.n_collector_peers)
            .map(|_| stubs[rng.gen_range(0..stubs.len())])
            .collect();
        for (i, &letter) in letters.iter().enumerate() {
            let mut c = RouteCollector::new(peers.clone());
            c.prime(services[i].rib());
            collectors.insert(letter, c);
        }
    }

    // --- RSSAC ------------------------------------------------------------
    let n_days = (cfg.horizon.as_secs() / 86_400).max(1) as usize;
    let mut rssac: BTreeMap<Letter, RssacCollector> = BTreeMap::new();
    for d in &deployments {
        if let Some(capture) = d.rssac_capture {
            rssac.insert(d.letter, RssacCollector::new(d.letter, n_days, capture));
        }
    }
    // Attack queries offered per (reporting letter, day) — for unique-
    // source estimation at the end.
    let mut attack_queries_by_day: BTreeMap<Letter, Vec<f64>> = rssac
        .keys()
        .map(|&l| (l, vec![0.0; n_days]))
        .collect();
    // Legit queries per (reporting letter, day).
    let mut legit_queries_by_day: BTreeMap<Letter, Vec<f64>> = rssac
        .keys()
        .map(|&l| (l, vec![0.0; n_days]))
        .collect();

    // Packet sizes from real encodings (Table 3's byte accounting).
    let zone = RootZone::nov2015();
    let attack_sizes: Vec<(SimTime, usize, usize)> = cfg
        .attack
        .windows()
        .iter()
        .map(|w| {
            let q = Message::query(
                0,
                Name::parse(&w.qname).expect("valid attack qname"),
                RrType::A,
                RrClass::In,
            );
            let qsize = q.wire_size();
            let rsize = zone.answer(&q).wire_size();
            (w.start, qsize, rsize)
        })
        .collect();
    let legit_query_size: usize = {
        let q = Message::query(
            0,
            Name::parse("www.example.com").expect("static"),
            RrType::A,
            RrClass::In,
        );
        q.wire_size() + 11 // typical EDNS0 OPT
    };
    let legit_response_size: usize = {
        let q = Message::query(
            0,
            Name::parse("www.example.com").expect("static"),
            RrType::A,
            RrClass::In,
        );
        zone.answer(&q).wire_size() + 11
    };

    // --- .nl bookkeeping ---------------------------------------------------
    let bin = cfg.pipeline.bin;
    let n_bins = (cfg.horizon.as_nanos() / bin.as_nanos()) as usize;
    let mut nl_series: Vec<BinnedSeries> = nl_index
        .map(|i| {
            services[i]
                .sites()
                .iter()
                .map(|_| BinnedSeries::zeros(bin, n_bins))
                .collect()
        })
        .unwrap_or_default();

    // --- Event loop ---------------------------------------------------------
    let mut queue: EventQueue<Ev> = EventQueue::new();
    queue.schedule(SimTime::ZERO + cfg.fluid_step, Ev::Fluid);
    queue.schedule(SimTime::ZERO + SimDuration::from_mins(1), Ev::Probes);
    queue.schedule(SimTime::ZERO + cfg.resolver_update, Ev::Resolvers);
    let mut maint_rng = rng_factory.stream("maintenance");
    if let Some(mean) = cfg.maintenance_mean {
        let dt = SimDuration::from_secs_f64(exp_sample(&mut maint_rng, 1.0 / mean.as_secs_f64()));
        queue.schedule(SimTime::ZERO + dt, Ev::Maintenance);
    }

    let mut last_fluid = SimTime::ZERO;
    let interval_minutes = cfg.probe_interval.as_secs() / 60;
    let a_interval_minutes = cfg.a_probe_interval.as_secs() / 60;
    // Precomputed probe wheel: for each minute slot (mod the interval
    // cycle), the (vp index, letter index) pairs due to probe. Avoids
    // re-deriving every pair's phase on every tick — the full scenario
    // would otherwise evaluate ~350 M phase checks.
    let wheel_period = lcm(interval_minutes.max(1), a_interval_minutes.max(1)) as usize;
    let mut wheel: Vec<Vec<(u32, usize)>> = vec![Vec::new(); wheel_period];
    for vp in fleet.iter() {
        if excluded.contains(&vp.id) {
            continue;
        }
        for (i, &letter) in letters.iter().enumerate() {
            let interval = if letter == Letter::A {
                a_interval_minutes
            } else {
                interval_minutes
            };
            let phase = (u64::from(vp.id.0)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(letter as u64 * 7))
                % interval;
            let mut slot = phase as usize;
            while slot < wheel_period {
                wheel[slot].push((vp.id.0, i));
                slot += interval as usize;
            }
        }
    }

    while let Some((t, ev)) = queue.pop_until(cfg.horizon) {
        match ev {
            Ev::Fluid => {
                let dt = t - last_fluid;
                // 1. Offered load per service/site under current ribs.
                let mut offered: Vec<Vec<f64>> = Vec::with_capacity(services.len());
                let mut offered_attack: Vec<Vec<f64>> = Vec::with_capacity(services.len());
                for (i, svc) in services.iter().enumerate() {
                    if let Some(letter) = svc.letter {
                        let atk_rate = cfg.attack.rate_for(letter, last_fluid);
                        let atk = svc.offered_per_site(botnet.weights(), atk_rate);
                        let leg = svc.offered_per_site(
                            &legit_weights[i],
                            cfg.legit_total_qps * legit_shares[letter as usize],
                        );
                        let sum: Vec<f64> =
                            atk.iter().zip(&leg).map(|(a, b)| a + b).collect();
                        offered_attack.push(atk);
                        offered.push(sum);
                    } else {
                        let leg = svc.offered_per_site(&pop_weights, cfg.nl_qps);
                        offered_attack.push(vec![0.0; leg.len()]);
                        offered.push(leg);
                    }
                }
                // 2. Facility links first (shared risk), then site queues.
                for (svc, off) in services.iter().zip(&offered) {
                    svc.stage_facility_load(off, &mut facility_table);
                }
                facility_table.advance(t);
                for (svc, off) in services.iter_mut().zip(&offered) {
                    svc.advance_queues(t, off, &facility_table);
                }
                // 3. Stress policies; observe routing changes.
                for (i, svc) in services.iter_mut().enumerate() {
                    let changes = svc.apply_policies(t, &graph);
                    if !changes.is_empty() {
                        if let Some(letter) = svc.letter {
                            collectors
                                .get_mut(&letter)
                                .expect("collector per letter")
                                .observe(t, svc.rib());
                        }
                        let _ = i;
                    }
                }
                // 4. RSSAC accounting over [last_fluid, t).
                for (i, svc) in services.iter().enumerate() {
                    let Some(letter) = svc.letter else { continue };
                    let Some(collector) = rssac.get_mut(&letter) else {
                        continue;
                    };
                    let atk_rate_prev = cfg.attack.rate_for(letter, last_fluid);
                    let stressed = atk_rate_prev > 0.0;
                    let day = (last_fluid.as_secs() / 86_400) as usize;
                    // Served per site splits proportionally between
                    // attack and legit (same queues).
                    let mut atk_served = 0.0;
                    let mut leg_served = 0.0;
                    for (s, site) in svc.sites().iter().enumerate() {
                        let pass =
                            (1.0 - site.facility_loss) * (1.0 - site.last_loss);
                        let atk = offered_attack[i][s] * pass;
                        atk_served += atk;
                        leg_served += (offered[i][s] * pass) - atk;
                    }
                    // RRL suppresses most attack responses (fixed qname,
                    // heavy-hitter sources) — Verisign reported 60%.
                    let suppression = blended_suppression(
                        atk_rate_prev.max(1.0),
                        botnet.heavy_share(),
                        botnet.n_heavy_sources(),
                        5.0,
                    );
                    let (aq, ar) = attack_sizes
                        .iter()
                        .rev()
                        .find(|(start, _, _)| *start <= last_fluid)
                        .map(|&(_, q, r)| (q, r))
                        .unwrap_or((44, 488));
                    collector.add_fluid(
                        last_fluid,
                        dt,
                        atk_served,
                        atk_served * (1.0 - suppression),
                        aq,
                        ar,
                        stressed,
                    );
                    collector.add_fluid(
                        last_fluid,
                        dt,
                        leg_served,
                        leg_served * 0.98,
                        legit_query_size,
                        legit_response_size,
                        stressed,
                    );
                    if let Some(days) = attack_queries_by_day.get_mut(&letter) {
                        if day < days.len() {
                            days[day] += atk_served * dt.as_secs_f64();
                        }
                    }
                    if let Some(days) = legit_queries_by_day.get_mut(&letter) {
                        if day < days.len() {
                            days[day] += leg_served * dt.as_secs_f64();
                        }
                    }
                }
                // 5. .nl served-rate series.
                if let Some(ni) = nl_index {
                    let served = services[ni].served_per_site();
                    for (s, series) in nl_series.iter_mut().enumerate() {
                        series.add_at(last_fluid, served[s] * dt.as_secs_f64());
                    }
                }
                last_fluid = t;
                if t + cfg.fluid_step <= cfg.horizon {
                    queue.schedule(t + cfg.fluid_step, Ev::Fluid);
                }
            }
            Ev::Probes => {
                let minute = t.as_secs() / 60;
                let mut probe_rng = rng_factory.indexed_stream("probes", minute);
                for &(vp_id, i) in &wheel[(minute as usize) % wheel_period] {
                    let vp = fleet.vp(rootcast_atlas::VpId(vp_id));
                    let letter = letters[i];
                    let target = ServiceTarget {
                        svc: &services[i],
                    };
                    let m = execute_probe(vp, &target, t, &mut probe_rng);
                    let obs = clean_outcome(&m);
                    pipeline.record(vp.id, letter, t, &obs);
                }
                if t + SimDuration::from_mins(1) <= cfg.horizon {
                    queue.schedule(t + SimDuration::from_mins(1), Ev::Probes);
                }
            }
            Ev::Resolvers => {
                for node in graph.nodes() {
                    let a = node.id.0 as usize;
                    if pop_weights[a] <= 0.0 {
                        continue;
                    }
                    let mut obs = [LetterObservation::unreachable(); 13];
                    for (i, &letter) in letters.iter().enumerate() {
                        let svc = &services[i];
                        if let Some(pv) = svc.probe_view(node.id, u64::from(node.id.0)) {
                            obs[letter as usize] = LetterObservation {
                                rtt: Some(pv.rtt),
                                loss: pv.drop_prob,
                            };
                        }
                    }
                    resolvers.update_as(a, &obs);
                }
                for (i, &letter) in letters.iter().enumerate() {
                    legit_weights[i] = resolvers.letter_weights(letter, &pop_weights);
                }
                legit_shares = resolvers.aggregate_shares(&pop_weights);
                if t < first_attack {
                    baseline_shares = legit_shares;
                }
                if t + cfg.resolver_update <= cfg.horizon {
                    queue.schedule(t + cfg.resolver_update, Ev::Resolvers);
                }
            }
            Ev::Maintenance => {
                // A random announced *small* site of a random letter goes
                // down for 10 minutes (operator maintenance; background
                // churn). Operators drain big sites far more carefully,
                // so restricting maintenance to sites whose catchment is
                // under 3% of ASes keeps the quiet-period flip counts at
                // the low level Figure 8 shows outside the events.
                let svc_idx = maint_rng.gen_range(0..letters.len());
                let svc = &mut services[svc_idx];
                let sizes = svc.rib().catchment_sizes(svc.sites().len());
                let limit = (n_ases as f64 * 0.10) as usize;
                let announced: Vec<SiteIdx> = svc
                    .announced_sites()
                    .into_iter()
                    .filter(|&i| sizes[i] <= limit)
                    .collect();
                if !announced.is_empty() {
                    let site = announced[maint_rng.gen_range(0..announced.len())];
                    if svc.set_announced(site, false, &graph) {
                        collectors
                            .get_mut(&letters[svc_idx])
                            .expect("collector")
                            .observe(t, svc.rib());
                        let end = t + SimDuration::from_mins(10);
                        if end <= cfg.horizon {
                            queue.schedule(end, Ev::MaintenanceEnd(svc_idx, site));
                        }
                    }
                }
                if let Some(mean) = cfg.maintenance_mean {
                    let dt = SimDuration::from_secs_f64(exp_sample(
                        &mut maint_rng,
                        1.0 / mean.as_secs_f64(),
                    ));
                    let next = t + dt;
                    if next <= cfg.horizon {
                        queue.schedule(next, Ev::Maintenance);
                    }
                }
            }
            Ev::MaintenanceEnd(svc_idx, site) => {
                let svc = &mut services[svc_idx];
                if svc.set_announced(site, true, &graph) {
                    collectors
                        .get_mut(&letters[svc_idx])
                        .expect("collector")
                        .observe(t, svc.rib());
                }
            }
        }
    }
    pipeline.finalize();

    // --- Unique-source estimates per reporting letter/day -----------------
    // Baseline resolvers contribute ~3-5 M distinct addresses per day
    // (Table 3's rightmost column); the attack adds the spoofed cloud.
    for (&letter, days) in &attack_queries_by_day {
        let collector = rssac.get_mut(&letter).expect("reporting letter");
        let leg = &legit_queries_by_day[&letter];
        let baseline_legit = cfg.legit_total_qps / 13.0 * 86_400.0;
        for (day, (&atk_q, &leg_q)) in days.iter().zip(leg).enumerate() {
            // Legit uniqueness scales sublinearly with query volume:
            // more queries from the same resolvers, plus new resolvers
            // flipping in.
            let legit_unique = 2.9e6 * (leg_q / baseline_legit).max(0.01).powf(0.7);
            let attack_unique = if atk_q > 0.0 {
                botnet.expected_unique_sources(atk_q)
            } else {
                0.0
            };
            collector.add_unique_sources(day, legit_unique + attack_unique);
        }
    }

    // --- Synthesized 7-day baseline reports --------------------------------
    // Pre-event days carry only legitimate traffic; the mean report is
    // computed analytically from the same constants the simulation used.
    let mut rssac_baseline = BTreeMap::new();
    for (&letter, _) in &rssac {
        let mut c = RssacCollector::new(letter, 1, 1.0);
        let day = SimDuration::from_hours(24);
        let qps = cfg.legit_total_qps * baseline_shares[letter as usize];
        c.add_fluid(
            SimTime::ZERO,
            day,
            qps,
            qps * 0.98,
            legit_query_size,
            legit_response_size,
            false,
        );
        c.add_unique_sources(0, if letter == Letter::A { 5.35e6 } else { 2.9e6 });
        rssac_baseline.insert(letter, c.report(0));
    }

    let nl_sites = nl_index
        .map(|ni| {
            services[ni]
                .sites()
                .iter()
                .zip(nl_series)
                .map(|(s, series)| (s.spec.code.clone(), series))
                .collect()
        })
        .unwrap_or_default();

    SimOutput {
        letters,
        pipeline,
        n_vps_kept: cleaning.kept_count(),
        cleaning,
        collectors,
        rssac,
        rssac_baseline,
        nl_sites,
        deployments,
        attack: cfg.attack.clone(),
        horizon: cfg.horizon,
        n_ases,
        probe_interval: cfg.probe_interval,
        a_probe_interval: cfg.a_probe_interval,
    }
}

/// Build the scenario's services and report, for each letter, the
/// attack load (q/s) each site would absorb at the *initial* routing —
/// i.e. the per-catchment exposure of §2.2's model. Used for capacity
/// planning, the policy explorer example, and deployment tuning.
pub fn attack_exposure(cfg: &ScenarioConfig) -> Vec<(Letter, Vec<(String, f64)>)> {
    let rng_factory = SimRng::new(cfg.seed);
    let graph = gen::generate(&cfg.topology, &rng_factory);
    let botnet = Botnet::generate(&graph, cfg.botnet.clone(), &rng_factory);
    let deployments = deployment::nov2015_deployments(&graph);
    deployments
        .iter()
        .map(|d| {
            let svc = AnycastService::new(
                &format!("{}-root", d.letter),
                Some(d.letter),
                &graph,
                d.sites.clone(),
            );
            let rate = cfg
                .attack
                .windows()
                .iter()
                .find(|w| w.targets_letter(d.letter))
                .map(|w| w.rate_qps)
                .unwrap_or(0.0);
            let per_site = svc.offered_per_site(botnet.weights(), rate);
            let named = svc
                .sites()
                .iter()
                .zip(per_site)
                .map(|(s, q)| (s.spec.code.clone(), q))
                .collect();
            (d.letter, named)
        })
        .collect()
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared small run for the driver's smoke tests (building it is
    /// the expensive part; assertions are cheap).
    fn smoke() -> SimOutput {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_hours(2);
        cfg.pipeline.horizon = cfg.horizon;
        cfg.attack = AttackSchedule::new(vec![rootcast_attack::AttackWindow {
            start: SimTime::from_mins(30),
            duration: SimDuration::from_mins(30),
            qname: "www.336901.com".into(),
            targets: AttackSchedule::nov2015_targets(),
            rate_qps: 2_000_000.0,
        }]);
        run(&cfg)
    }

    #[test]
    fn driver_produces_consistent_output() {
        let out = smoke();
        assert_eq!(out.letters.len(), 13);
        assert!(out.n_vps_kept > 300, "kept {}", out.n_vps_kept);
        // Every letter has pipeline data.
        for &l in &out.letters {
            let d = out.pipeline.letter(l);
            assert!(!d.site_codes.is_empty());
        }
        // B-root suffers during the attack: its success series dips.
        let b = out.pipeline.letter(Letter::B);
        let pre: f64 = b.success.window(SimTime::ZERO, SimTime::from_mins(30)).max();
        let during: f64 = b
            .success
            .window(SimTime::from_mins(40), SimTime::from_mins(60))
            .min();
        assert!(
            during < pre * 0.5,
            "B-root should dip under 2 Mq/s: pre={pre} during={during}"
        );
        // L-root (not attacked) stays healthy.
        let l = out.pipeline.letter(Letter::L);
        let l_pre = l.success.window(SimTime::ZERO, SimTime::from_mins(30)).max();
        let l_during = l
            .success
            .window(SimTime::from_mins(40), SimTime::from_mins(60))
            .min();
        assert!(
            l_during > l_pre * 0.8,
            "L-root should stay up: pre={l_pre} during={l_during}"
        );
        // RSSAC: exactly the five reporting letters.
        assert_eq!(out.rssac.len(), 5);
        assert!(out.rssac.contains_key(&Letter::A));
        // .nl series exist.
        assert_eq!(out.nl_sites.len(), 2);
    }

    #[test]
    fn runs_are_deterministic() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(40);
        cfg.pipeline.horizon = cfg.horizon;
        let a = run(&cfg);
        let b = run(&cfg);
        for &l in &a.letters {
            assert_eq!(
                a.pipeline.letter(l).success.values(),
                b.pipeline.letter(l).success.values(),
                "letter {l} series differ between identical runs"
            );
        }
        assert_eq!(a.n_vps_kept, b.n_vps_kept);
    }
}
