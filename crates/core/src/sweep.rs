//! Multi-scenario sweep engine: run a *playbook* of scenario variants
//! (policies, site capacities, attack schedules, fault plans) over one
//! shared substrate, and compare the outcomes.
//!
//! The paper's core method is exactly this — contrasting how different
//! anycast configurations weather the same stress (Table 2,
//! Figures 3–14) — and "Anycast Agility" generalizes it to a grid of
//! routing/policy responses. The engine pieces:
//!
//! * [`SweepPlan`]: a base [`ScenarioConfig`] plus a list of labelled
//!   [`ConfigPatch`] deltas — written explicitly or generated as the
//!   cartesian product of [`SweepAxis`] values ([`SweepPlan::grid`]).
//! * A sharded runner ([`run_sweep`] / [`run_sweep_with`]): runs are
//!   grouped by [`ScenarioConfig::substrate_key`]; each shard builds
//!   its expensive immutable [`Substrate`] (topology + baseline RIBs +
//!   calibrated fleet) once and `Arc`-shares it across the shard's
//!   runs, which execute in a deterministic rayon fan-out.
//! * Checkpoint/resume: with [`SweepOptions::checkpoint`] set, every
//!   completed run appends its [`SweepRecord`] to a JSONL manifest
//!   keyed by the resolved config's hash; a restarted sweep reloads
//!   the manifest and re-runs only what's missing.
//! * [`SweepReport`]: per-scenario headline metrics, a cross-scenario
//!   comparison table, best→worst ranking, CSV/JSONL export, and
//!   sweep-level metric rollups summed from each run's
//!   `MetricsRegistry` snapshot.
//!
//! ## Determinism contract
//!
//! `SimWorld::build` is literally `Substrate::build` followed by
//! `SimWorld::from_substrate`, so a shared-substrate run cannot differ
//! from a standalone [`run`](crate::sim::run): there is one build
//! path. Per-run seeds are derived as FNV-1a(base seed, run label)
//! under [`SeedMode::PerRun`] (or inherited under the default
//! [`SeedMode::Shared`]), runs are mutually independent, and results
//! are collected in plan order — so a sweep is bit-identical to N
//! independent `run` calls at any thread count, resumed or not. The
//! pin lives in `tests/determinism.rs`, wired to [`output_digest`].

use crate::analysis;
use crate::config::{ScenarioConfig, SiteOverride};
use crate::engine::{FaultPlan, Substrate};
use crate::error::{RootcastError, SweepError};
use crate::render::{num, TextTable};
use crate::sim::{run, run_with_substrate, SimOutput};
use rayon::prelude::*;
use rootcast_anycast::FacilityId;
use rootcast_attack::AttackSchedule;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// FNV-1a over a byte stream — the crate's standalone digest primitive
/// (no dependencies, stable across platforms and runs).
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fnv1a_str(s: &str) -> u64 {
    fnv1a(s.bytes())
}

/// A delta over a base [`ScenarioConfig`]: only per-run knobs, so the
/// knobs a patch *cannot* express (topology, fleet, botnet sizing,
/// `.nl` inclusion) are exactly the ones that would force a new
/// substrate — except `seed`, which re-derives everything and lands
/// the run in its own shard.
#[derive(Debug, Clone, Default)]
pub struct ConfigPatch {
    /// Replace the master seed (puts the run in a different shard).
    pub seed: Option<u64>,
    /// Replace the attack schedule.
    pub attack: Option<AttackSchedule>,
    /// Replace the fault plan.
    pub faults: Option<FaultPlan>,
    /// Replace the shared-facility capacities.
    pub facility_capacities: Option<Vec<(FacilityId, f64)>>,
    /// Replace the total legitimate query load, q/s.
    pub legit_total_qps: Option<f64>,
    /// Site overrides appended after the base config's own (later
    /// entries win per field, letting grid axes compose).
    pub site_overrides: Vec<SiteOverride>,
}

impl ConfigPatch {
    /// The empty patch: the run is the base config verbatim.
    pub fn none() -> ConfigPatch {
        ConfigPatch::default()
    }

    pub fn with_seed(mut self, seed: u64) -> ConfigPatch {
        self.seed = Some(seed);
        self
    }

    pub fn with_attack(mut self, attack: AttackSchedule) -> ConfigPatch {
        self.attack = Some(attack);
        self
    }

    pub fn with_faults(mut self, faults: FaultPlan) -> ConfigPatch {
        self.faults = Some(faults);
        self
    }

    pub fn with_facility_capacities(mut self, caps: Vec<(FacilityId, f64)>) -> ConfigPatch {
        self.facility_capacities = Some(caps);
        self
    }

    pub fn with_legit_total_qps(mut self, qps: f64) -> ConfigPatch {
        self.legit_total_qps = Some(qps);
        self
    }

    pub fn with_site_override(mut self, ov: SiteOverride) -> ConfigPatch {
        self.site_overrides.push(ov);
        self
    }

    /// Compose two patches; `later`'s fields win, site overrides
    /// concatenate (grid axes merge left to right).
    pub fn merged(&self, later: &ConfigPatch) -> ConfigPatch {
        let mut out = self.clone();
        if later.seed.is_some() {
            out.seed = later.seed;
        }
        if later.attack.is_some() {
            out.attack = later.attack.clone();
        }
        if later.faults.is_some() {
            out.faults = later.faults.clone();
        }
        if later.facility_capacities.is_some() {
            out.facility_capacities = later.facility_capacities.clone();
        }
        if later.legit_total_qps.is_some() {
            out.legit_total_qps = later.legit_total_qps;
        }
        out.site_overrides
            .extend(later.site_overrides.iter().cloned());
        out
    }

    /// Materialize the patched config.
    pub fn apply(&self, base: &ScenarioConfig) -> ScenarioConfig {
        let mut cfg = base.clone();
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        if let Some(attack) = &self.attack {
            cfg.attack = attack.clone();
        }
        if let Some(faults) = &self.faults {
            cfg.faults = faults.clone();
        }
        if let Some(caps) = &self.facility_capacities {
            cfg.facility_capacities = caps.clone();
        }
        if let Some(qps) = self.legit_total_qps {
            cfg.legit_total_qps = qps;
        }
        cfg.site_overrides
            .extend(self.site_overrides.iter().cloned());
        cfg
    }
}

/// One labelled scenario variant in a plan.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Unique human-readable label (`"policy=withdraw,rate=5M"`).
    pub label: String,
    pub patch: ConfigPatch,
}

impl SweepRun {
    pub fn new(label: &str, patch: ConfigPatch) -> SweepRun {
        SweepRun {
            label: label.to_string(),
            patch,
        }
    }
}

/// One axis of a cartesian grid: a named knob and its labelled values.
#[derive(Debug, Clone)]
pub struct SweepAxis {
    pub name: String,
    pub points: Vec<(String, ConfigPatch)>,
}

impl SweepAxis {
    pub fn new(name: &str, points: Vec<(&str, ConfigPatch)>) -> SweepAxis {
        SweepAxis {
            name: name.to_string(),
            points: points
                .into_iter()
                .map(|(l, p)| (l.to_string(), p))
                .collect(),
        }
    }
}

/// How each run's master seed is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedMode {
    /// Every run inherits the base seed (unless its patch sets one):
    /// one substrate serves the whole sweep. The default, and what a
    /// policy comparison wants — same world, different responses.
    #[default]
    Shared,
    /// Each run derives its own seed as FNV-1a(base seed ⊕ label):
    /// a replication study. Every distinct seed is its own shard.
    PerRun,
}

/// A sweep: base config, seed mode, and the labelled variants.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    pub name: String,
    pub base: ScenarioConfig,
    pub seed_mode: SeedMode,
    pub runs: Vec<SweepRun>,
}

impl SweepPlan {
    /// A plan from an explicit run list.
    pub fn explicit(name: &str, base: ScenarioConfig, runs: Vec<SweepRun>) -> SweepPlan {
        SweepPlan {
            name: name.to_string(),
            base,
            seed_mode: SeedMode::default(),
            runs,
        }
    }

    /// The cartesian product of the axes, labels joined as
    /// `"axis=value,axis=value"`, patches merged left to right.
    pub fn grid(name: &str, base: ScenarioConfig, axes: &[SweepAxis]) -> SweepPlan {
        let mut runs = vec![SweepRun::new("", ConfigPatch::none())];
        for axis in axes {
            let mut next = Vec::with_capacity(runs.len() * axis.points.len());
            for run in &runs {
                for (value, patch) in &axis.points {
                    let label = if run.label.is_empty() {
                        format!("{}={}", axis.name, value)
                    } else {
                        format!("{},{}={}", run.label, axis.name, value)
                    };
                    next.push(SweepRun {
                        label,
                        patch: run.patch.merged(patch),
                    });
                }
            }
            runs = next;
        }
        SweepPlan {
            name: name.to_string(),
            base,
            seed_mode: SeedMode::default(),
            runs,
        }
    }

    pub fn with_seed_mode(mut self, mode: SeedMode) -> SweepPlan {
        self.seed_mode = mode;
        self
    }

    /// The seed a [`SeedMode::PerRun`] sweep derives for `label`.
    pub fn derived_seed(&self, label: &str) -> u64 {
        fnv1a_str(&format!("{}#{}", self.base.seed, label))
    }

    /// Materialize run `i`'s full config: patch applied, seed resolved.
    /// This is the exact config a standalone [`run`](crate::sim::run)
    /// must be handed to reproduce the sweep's record bit for bit.
    pub fn resolve(&self, i: usize) -> ScenarioConfig {
        let run = &self.runs[i];
        let mut cfg = run.patch.apply(&self.base);
        if self.seed_mode == SeedMode::PerRun && run.patch.seed.is_none() {
            cfg.seed = self.derived_seed(&run.label);
        }
        cfg
    }
}

/// Hash identifying a resolved (label, config) pair — the checkpoint
/// manifest key. Uses the config's `Debug` rendering: every knob
/// (including attack windows, fault plans, and site overrides) feeds
/// the digest, and f64 `Debug` is shortest-roundtrip so distinct
/// values cannot collide through formatting.
pub fn config_hash(label: &str, cfg: &ScenarioConfig) -> u64 {
    fnv1a_str(&format!("{label}\u{1f}{cfg:?}"))
}

/// A bit-exact digest of everything the analysis layer consumes from a
/// [`SimOutput`] — per-letter success series, RSSAC day reports, `.nl`
/// series, collector logs — with floats folded in via `to_bits`, so
/// "close" is not equal. Two runs agree on this digest iff the
/// determinism suite's `Summary` would call them identical.
pub fn output_digest(out: &SimOutput) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    fold(out.n_ases as u64);
    fold(out.n_vps_kept as u64);
    for &l in &out.letters {
        for &v in out.pipeline.letter(l).success.values() {
            fold(v.to_bits());
        }
    }
    for (l, c) in &out.rssac {
        fold(*l as u64);
        for day in 0..c.n_days() {
            let r = c.report(day);
            fold(r.queries.to_bits());
            fold(r.responses.to_bits());
            fold(r.unique_sources.to_bits());
        }
    }
    for (code, series) in &out.nl_sites {
        fold(fnv1a_str(code));
        for &v in series.values() {
            fold(v.to_bits());
        }
    }
    for (l, c) in &out.collectors {
        fold(*l as u64);
        fold(c.log().len() as u64);
    }
    h
}

/// Per-run headline metrics: what the comparison table and the ranking
/// read. Every field is finite by construction, even on maximally
/// degraded runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Headline {
    pub n_ases: usize,
    pub n_vps_kept: usize,
    /// Worst per-letter availability through the attack windows:
    /// min(during-event VP success) / pre-event baseline, over all
    /// letters. 1.0 = no visible dip; 0.0 = a letter went dark (or the
    /// run had no usable baseline at all).
    pub worst_letter_availability: f64,
    /// Same ratio averaged over all letters.
    pub mean_letter_availability: f64,
    /// Peak offered load on any single letter, q/s.
    pub peak_offered_qps: f64,
    /// Lowest served/offered ratio any letter hit.
    pub worst_served_ratio: f64,
    /// Stress-policy routing transitions over the run.
    pub policy_transitions: u64,
    /// BGP collector route-change events, all letters.
    pub route_events: u64,
    /// Fault transitions the injector applied.
    pub faults_injected: u64,
}

/// Per-letter availability: the during-event floor of the VP success
/// series relative to its pre-event baseline, clamped to `[0, 1]` and
/// never non-finite. Degraded inputs degrade the *value*, not the type:
/// no events → 1.0 (nothing to dip through); a dead baseline → 0.0.
fn letter_availability(out: &SimOutput, series: &rootcast_netsim::BinnedSeries) -> f64 {
    let baseline = analysis::pre_event_baseline(out, series);
    if analysis::event_windows(out).is_empty() {
        return 1.0;
    }
    if !baseline.is_finite() || baseline <= 0.0 {
        return 0.0;
    }
    let floor = analysis::min_during_events(out, series);
    if !floor.is_finite() {
        // Events exist but no bin intersects them (fault-gapped
        // coverage): report no dip rather than poisoning the ranking.
        return 1.0;
    }
    (floor / baseline).clamp(0.0, 1.0)
}

fn headline(out: &SimOutput) -> Headline {
    let avail: Vec<f64> = out
        .letters
        .iter()
        .map(|&l| letter_availability(out, &out.pipeline.letter(l).success))
        .collect();
    let worst = avail.iter().copied().fold(1.0_f64, f64::min);
    let mean = if avail.is_empty() {
        1.0
    } else {
        avail.iter().sum::<f64>() / avail.len() as f64
    };
    let finite_or = |v: f64, d: f64| if v.is_finite() { v } else { d };
    Headline {
        n_ases: out.n_ases,
        n_vps_kept: out.n_vps_kept,
        worst_letter_availability: worst,
        mean_letter_availability: mean,
        peak_offered_qps: finite_or(out.run_stats.peak_offered_qps, 0.0),
        worst_served_ratio: finite_or(out.run_stats.worst_served_ratio, 1.0),
        policy_transitions: out.run_stats.policy_transitions,
        route_events: out.collectors.values().map(|c| c.log().len() as u64).sum(),
        faults_injected: out.run_stats.faults.len() as u64,
    }
}

/// Everything a finished (or resumed) run contributes to the report —
/// and exactly what one checkpoint-manifest line holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRecord {
    pub label: String,
    /// The resolved master seed this run used.
    pub seed: u64,
    /// [`ScenarioConfig::substrate_key`] — which shard served the run.
    pub substrate_key: u64,
    /// [`config_hash`] of (label, resolved config): the manifest key.
    pub config_hash: u64,
    /// [`output_digest`] — the bit-exact identity of the run's output.
    pub output_digest: u64,
    /// Host wall time of the run, milliseconds.
    pub wall_ms: f64,
    pub headline: Headline,
    /// The run's engine counters (for sweep-level rollups; stable
    /// across resume because they ride in the manifest).
    pub counters: Vec<(String, u64)>,
    /// True when this record was loaded from a checkpoint manifest
    /// instead of executed in this sweep.
    pub resumed: bool,
}

impl SweepRecord {
    /// One compact JSON object — the checkpoint-manifest line format.
    /// The 64-bit identities (seed, keys, digests) are encoded as
    /// decimal strings: the JSON value tree stores numbers as `f64`,
    /// which cannot hold a full hash. `resumed` is deliberately not
    /// written — it describes the *reading* sweep, not the run.
    pub fn to_json(&self) -> String {
        let u = |v: u64| Value::String(v.to_string());
        let n = |v: f64| Value::Number(v);
        let h = &self.headline;
        let headline = Value::Object(BTreeMap::from([
            ("n_ases".into(), n(h.n_ases as f64)),
            ("n_vps_kept".into(), n(h.n_vps_kept as f64)),
            (
                "worst_letter_availability".into(),
                n(h.worst_letter_availability),
            ),
            (
                "mean_letter_availability".into(),
                n(h.mean_letter_availability),
            ),
            ("peak_offered_qps".into(), n(h.peak_offered_qps)),
            ("worst_served_ratio".into(), n(h.worst_served_ratio)),
            ("policy_transitions".into(), n(h.policy_transitions as f64)),
            ("route_events".into(), n(h.route_events as f64)),
            ("faults_injected".into(), n(h.faults_injected as f64)),
        ]));
        let counters = Value::Array(
            self.counters
                .iter()
                .map(|(name, v)| Value::Array(vec![Value::String(name.clone()), n(*v as f64)]))
                .collect(),
        );
        Value::Object(BTreeMap::from([
            ("label".into(), Value::String(self.label.clone())),
            ("seed".into(), u(self.seed)),
            ("substrate_key".into(), u(self.substrate_key)),
            ("config_hash".into(), u(self.config_hash)),
            ("output_digest".into(), u(self.output_digest)),
            ("wall_ms".into(), n(self.wall_ms)),
            ("headline".into(), headline),
            ("counters".into(), counters),
        ]))
        .to_string()
    }

    /// Parse a manifest line. `None` on any malformed or incomplete
    /// document — a record cut short by a kill is skipped, not fatal.
    /// The parsed record is marked `resumed`.
    pub fn from_json(s: &str) -> Option<SweepRecord> {
        let v = Value::parse(s)?;
        let u = |key: &str| v.get(key)?.as_str()?.parse::<u64>().ok();
        let h = v.get("headline")?;
        let hf = |key: &str| h.get(key)?.as_f64();
        let hu = |key: &str| h.get(key)?.as_u64();
        let headline = Headline {
            n_ases: hu("n_ases")? as usize,
            n_vps_kept: hu("n_vps_kept")? as usize,
            worst_letter_availability: hf("worst_letter_availability")?,
            mean_letter_availability: hf("mean_letter_availability")?,
            peak_offered_qps: hf("peak_offered_qps")?,
            worst_served_ratio: hf("worst_served_ratio")?,
            policy_transitions: hu("policy_transitions")?,
            route_events: hu("route_events")?,
            faults_injected: hu("faults_injected")?,
        };
        let mut counters = Vec::new();
        for item in v.get("counters")?.as_array()? {
            let pair = item.as_array()?;
            match pair {
                [name, count] => counters.push((name.as_str()?.to_string(), count.as_u64()?)),
                _ => return None,
            }
        }
        Some(SweepRecord {
            label: v.get("label")?.as_str()?.to_string(),
            seed: u("seed")?,
            substrate_key: u("substrate_key")?,
            config_hash: u("config_hash")?,
            output_digest: u("output_digest")?,
            wall_ms: v.get("wall_ms")?.as_f64()?,
            headline,
            counters,
            resumed: true,
        })
    }
}

/// Runner knobs.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// JSONL manifest of completed runs. When the file exists, records
    /// whose [`config_hash`] matches a pending run are reused instead
    /// of re-executed; every newly completed run is appended. Unparsable
    /// lines (a write cut short by a kill) are skipped, not fatal.
    pub checkpoint: Option<PathBuf>,
    /// Execute at most this many pending runs, in deterministic plan
    /// order, and leave the rest pending — the cooperative "kill" the
    /// resume tests and the CI smoke job use. `None` = run everything.
    pub stop_after: Option<usize>,
    /// Rebuild the substrate for every run instead of sharing one per
    /// shard. Outputs are bit-identical either way (single build
    /// path); this exists so the bench can price the naive loop.
    pub no_substrate_reuse: bool,
}

/// Sweep-level rollup: the engine counters summed over every record
/// (executed or resumed) in the report.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsRollup {
    pub counters: Vec<(String, u64)>,
}

impl MetricsRollup {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    fn absorb(&mut self, counters: &[(String, u64)]) {
        for (name, v) in counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, acc)) => *acc += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
    }
}

/// What a sweep hands back: one record per completed run (plan order),
/// the labels still pending (only under [`SweepOptions::stop_after`]),
/// and the cross-run aggregates.
#[derive(Debug, Clone)]
pub struct SweepReport {
    pub name: String,
    pub records: Vec<SweepRecord>,
    /// Labels whose runs were not executed (cooperative stop).
    pub pending: Vec<String>,
    /// Distinct substrates the runs sharded into.
    pub n_substrates: usize,
    /// How many records were reused from the checkpoint manifest.
    pub n_resumed: usize,
    pub rollup: MetricsRollup,
}

impl SweepReport {
    /// True when a cooperative stop left runs pending.
    pub fn is_partial(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Records sorted best → worst: primary key worst-letter
    /// availability (higher is better), then mean availability, then
    /// fewer policy transitions (less routing churn wins ties), then
    /// label for total determinism.
    pub fn ranking(&self) -> Vec<&SweepRecord> {
        let mut v: Vec<&SweepRecord> = self.records.iter().collect();
        v.sort_by(|a, b| {
            b.headline
                .worst_letter_availability
                .total_cmp(&a.headline.worst_letter_availability)
                .then_with(|| {
                    b.headline
                        .mean_letter_availability
                        .total_cmp(&a.headline.mean_letter_availability)
                })
                .then_with(|| {
                    a.headline
                        .policy_transitions
                        .cmp(&b.headline.policy_transitions)
                })
                .then_with(|| a.label.cmp(&b.label))
        });
        v
    }

    /// The cross-scenario comparison table, one row per record in plan
    /// order.
    pub fn comparison(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!("Sweep {:?}: {} scenarios", self.name, self.records.len()),
            &[
                "scenario",
                "worst avail",
                "mean avail",
                "worst served",
                "peak Mq/s",
                "transitions",
                "route events",
                "faults",
                "wall ms",
            ],
        );
        for r in &self.records {
            t.row(vec![
                r.label.clone(),
                num(r.headline.worst_letter_availability, 3),
                num(r.headline.mean_letter_availability, 3),
                num(r.headline.worst_served_ratio, 3),
                num(r.headline.peak_offered_qps / 1e6, 2),
                r.headline.policy_transitions.to_string(),
                r.headline.route_events.to_string(),
                r.headline.faults_injected.to_string(),
                num(r.wall_ms, 0),
            ]);
        }
        t
    }

    /// Comparison table plus the best→worst ranking, as display text.
    pub fn render(&self) -> String {
        let mut s = self.comparison().to_string();
        s.push_str("\nranking (best → worst):\n");
        for (i, r) in self.ranking().iter().enumerate() {
            s.push_str(&format!(
                "  {:>2}. {}  (worst avail {})\n",
                i + 1,
                r.label,
                num(r.headline.worst_letter_availability, 3)
            ));
        }
        if self.is_partial() {
            s.push_str(&format!("pending: {}\n", self.pending.join(", ")));
        }
        s
    }

    /// The comparison table as CSV.
    pub fn to_csv(&self) -> String {
        self.comparison().to_csv()
    }

    /// One JSON object per record (the checkpoint manifest format).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for r in &self.records {
            s.push_str(&r.to_json());
            s.push('\n');
        }
        s
    }
}

/// Load the checkpoint manifest: `config_hash` → record. Missing file
/// is an empty manifest; unparsable lines (interrupted writes) are
/// skipped.
fn load_manifest(path: &Path) -> Result<BTreeMap<u64, SweepRecord>, SweepError> {
    let mut manifest = BTreeMap::new();
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(manifest),
        Err(e) => return Err(SweepError::Checkpoint(format!("{}: {e}", path.display()))),
    };
    for line in std::io::BufReader::new(file).lines() {
        let line = line.map_err(|e| SweepError::Checkpoint(format!("{}: {e}", path.display())))?;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rec) = SweepRecord::from_json(&line) {
            manifest.insert(rec.config_hash, rec);
        }
    }
    Ok(manifest)
}

/// Run a sweep with default options (share substrates, no checkpoint).
pub fn run_sweep(plan: &SweepPlan) -> Result<SweepReport, RootcastError> {
    run_sweep_with(plan, &SweepOptions::default())
}

/// Run a sweep. Every run's config is resolved and validated up front
/// (one bad variant fails the sweep before any work), pending runs are
/// sharded by substrate key, and each shard executes as a deterministic
/// rayon fan-out over its `Arc`-shared [`Substrate`].
pub fn run_sweep_with(plan: &SweepPlan, opts: &SweepOptions) -> Result<SweepReport, RootcastError> {
    if plan.runs.is_empty() {
        return Err(SweepError::EmptyPlan.into());
    }
    let n = plan.runs.len();
    let resolved: Vec<ScenarioConfig> = (0..n).map(|i| plan.resolve(i)).collect();
    for cfg in &resolved {
        cfg.validate()?;
    }
    let hashes: Vec<u64> = resolved
        .iter()
        .enumerate()
        .map(|(i, cfg)| config_hash(&plan.runs[i].label, cfg))
        .collect();

    let manifest = match &opts.checkpoint {
        Some(path) => load_manifest(path)?,
        None => BTreeMap::new(),
    };
    let mut slots: Vec<Option<SweepRecord>> = hashes
        .iter()
        .map(|h| {
            manifest.get(h).cloned().map(|mut rec| {
                rec.resumed = true;
                rec
            })
        })
        .collect();
    let n_resumed = slots.iter().filter(|s| s.is_some()).count();

    // Shard the pending runs by substrate key, shards ordered by first
    // appearance in the plan, runs in plan order within a shard.
    let mut shards: Vec<(u64, Vec<usize>)> = Vec::new();
    for i in 0..n {
        if slots[i].is_some() {
            continue;
        }
        let key = resolved[i].substrate_key();
        match shards.iter_mut().find(|(k, _)| *k == key) {
            Some((_, idxs)) => idxs.push(i),
            None => shards.push((key, vec![i])),
        }
    }
    let n_substrates = shards.len();

    let ckpt: Option<Mutex<std::fs::File>> = match &opts.checkpoint {
        Some(path) => Some(Mutex::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| SweepError::Checkpoint(format!("{}: {e}", path.display())))?,
        )),
        None => None,
    };

    // Cooperative stop: only the first `budget` pending runs (in shard
    // order = plan order per shard) execute. Deterministic regardless
    // of thread timing, unlike killing workers mid-flight.
    let mut budget = opts.stop_after.unwrap_or(usize::MAX);
    for (_, idxs) in &shards {
        if budget == 0 {
            break;
        }
        let batch: Vec<usize> = idxs.iter().copied().take(budget).collect();
        budget -= batch.len();
        let substrate = if opts.no_substrate_reuse {
            None
        } else {
            Some(Substrate::build(&resolved[batch[0]]))
        };
        let results: Vec<(usize, Result<SweepRecord, RootcastError>)> = batch
            .par_iter()
            .map(|&i| {
                let cfg = &resolved[i];
                let t0 = Instant::now();
                let out = match &substrate {
                    Some(s) => run_with_substrate(cfg, s),
                    None => run(cfg),
                };
                let rec = out.map(|out| {
                    let rec = SweepRecord {
                        label: plan.runs[i].label.clone(),
                        seed: cfg.seed,
                        substrate_key: cfg.substrate_key(),
                        config_hash: hashes[i],
                        output_digest: output_digest(&out),
                        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                        headline: headline(&out),
                        counters: out.metrics.counters.clone(),
                        resumed: false,
                    };
                    if let Some(f) = &ckpt {
                        // One line per record; failures surface on the
                        // next resume as a shorter manifest, never as a
                        // corrupted sweep.
                        let line = rec.to_json();
                        let mut f = f.lock().expect("checkpoint lock");
                        let _ = writeln!(f, "{line}");
                    }
                    rec
                });
                (i, rec)
            })
            .collect();
        for (i, rec) in results {
            slots[i] = Some(rec?);
        }
    }

    let mut records = Vec::with_capacity(n);
    let mut pending = Vec::new();
    let mut rollup = MetricsRollup::default();
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(rec) => {
                rollup.absorb(&rec.counters);
                records.push(rec);
            }
            None => pending.push(plan.runs[i].label.clone()),
        }
    }
    Ok(SweepReport {
        name: plan.name.clone(),
        records,
        pending,
        n_substrates,
        n_resumed,
        rollup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootcast_anycast::SiteTuning;
    use rootcast_dns::Letter;

    fn base() -> ScenarioConfig {
        // Deliberately tiny: the sweep tests exercise plumbing, not
        // simulation fidelity (determinism pins live in tests/).
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = rootcast_netsim::SimTime::from_mins(20);
        cfg.pipeline.horizon = cfg.horizon;
        cfg.include_nl = false;
        cfg
    }

    #[test]
    fn config_debug_carries_no_process_dependent_addresses() {
        // `config_hash` and `substrate_key` hash the config's `Debug`
        // form, and the checkpoint manifest compares those hashes
        // *across processes*. A raw `fn`-pointer field debug-prints its
        // ASLR-randomized address ("0x5570..."), which silently
        // invalidated every manifest entry on resume — bias functions
        // are `NamedFn`s now, and nothing else may regress.
        let repr = format!("{:?}", ScenarioConfig::nov2015());
        assert!(
            !repr.contains("0x"),
            "ScenarioConfig Debug output contains a pointer address; \
             config hashes will not survive a process restart: {repr}"
        );
    }

    #[test]
    fn grid_is_the_cartesian_product_with_merged_patches() {
        let axes = [
            SweepAxis::new(
                "policy",
                vec![
                    ("absorb", ConfigPatch::none()),
                    (
                        "thin",
                        ConfigPatch::none().with_site_override(SiteOverride::new(
                            Letter::K,
                            "LHR",
                            SiteTuning::none().with_capacity(10_000.0),
                        )),
                    ),
                ],
            ),
            SweepAxis::new(
                "legit",
                vec![
                    ("low", ConfigPatch::none().with_legit_total_qps(100_000.0)),
                    ("high", ConfigPatch::none().with_legit_total_qps(900_000.0)),
                    ("base", ConfigPatch::none()),
                ],
            ),
        ];
        let plan = SweepPlan::grid("grid", base(), &axes);
        assert_eq!(plan.runs.len(), 6);
        assert_eq!(plan.runs[0].label, "policy=absorb,legit=low");
        assert_eq!(plan.runs[5].label, "policy=thin,legit=base");
        // The merged patch keeps both axes' deltas.
        let cfg = plan.resolve(4); // policy=thin,legit=high
        assert_eq!(cfg.legit_total_qps, 900_000.0);
        assert_eq!(cfg.site_overrides.len(), 1);
        assert_eq!(cfg.site_overrides[0].letter, Letter::K);
        // Shared seed mode: every run keeps the base seed and shares a
        // substrate key.
        assert!((0..6).all(|i| plan.resolve(i).seed == plan.base.seed));
        let k0 = plan.resolve(0).substrate_key();
        assert!((1..6).all(|i| plan.resolve(i).substrate_key() == k0));
    }

    #[test]
    fn per_run_seeds_split_shards() {
        let plan = SweepPlan::explicit(
            "seeds",
            base(),
            vec![
                SweepRun::new("a", ConfigPatch::none()),
                SweepRun::new("b", ConfigPatch::none()),
            ],
        )
        .with_seed_mode(SeedMode::PerRun);
        let a = plan.resolve(0);
        let b = plan.resolve(1);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.substrate_key(), b.substrate_key());
        // Derivation is stable: same label, same seed.
        assert_eq!(a.seed, plan.derived_seed("a"));
    }

    #[test]
    fn config_hash_distinguishes_variants() {
        let b = base();
        let mut thin = b.clone();
        thin.site_overrides.push(SiteOverride::new(
            Letter::K,
            "LHR",
            SiteTuning::none().with_capacity(10_000.0),
        ));
        assert_ne!(config_hash("x", &b), config_hash("x", &thin));
        assert_ne!(config_hash("x", &b), config_hash("y", &b));
    }

    #[test]
    fn empty_plan_is_a_typed_error() {
        let plan = SweepPlan::explicit("empty", base(), vec![]);
        match run_sweep(&plan) {
            Err(RootcastError::Sweep(SweepError::EmptyPlan)) => {}
            other => panic!("expected EmptyPlan, got {other:?}"),
        }
    }

    #[test]
    fn bad_variant_fails_the_sweep_up_front() {
        let plan = SweepPlan::explicit(
            "bad",
            base(),
            vec![SweepRun::new(
                "nan",
                ConfigPatch::none().with_legit_total_qps(f64::NAN),
            )],
        );
        assert!(matches!(run_sweep(&plan), Err(RootcastError::Config(_))));
    }

    #[test]
    fn unknown_override_site_is_a_typed_error() {
        let plan = SweepPlan::explicit(
            "unknown-site",
            base(),
            vec![SweepRun::new(
                "bogus",
                ConfigPatch::none().with_site_override(SiteOverride::new(
                    Letter::K,
                    "XXX",
                    SiteTuning::none().with_capacity(1.0),
                )),
            )],
        );
        match run_sweep(&plan) {
            Err(RootcastError::Config(crate::config::ConfigError::BadOverride(m))) => {
                assert!(m.contains("XXX"), "message: {m}");
            }
            other => panic!("expected BadOverride, got {other:?}"),
        }
    }

    #[test]
    fn report_ranks_and_serializes() {
        let axes = [SweepAxis::new(
            "legit",
            vec![
                ("low", ConfigPatch::none().with_legit_total_qps(50_000.0)),
                ("base", ConfigPatch::none()),
            ],
        )];
        let plan = SweepPlan::grid("rank", base(), &axes);
        let report = run_sweep(&plan).expect("sweep runs");
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.n_substrates, 1, "shared seed shares a substrate");
        assert!(!report.is_partial());
        let ranking = report.ranking();
        assert_eq!(ranking.len(), 2);
        assert!(
            ranking[0].headline.worst_letter_availability
                >= ranking[1].headline.worst_letter_availability
        );
        // Every rendered cell is finite, and exports round-trip.
        let text = report.render();
        assert!(text.contains("Sweep"), "{text}");
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 1 + 2, "header + two rows");
        let jsonl = report.to_jsonl();
        for (line, orig) in jsonl.lines().zip(&report.records) {
            let rec = SweepRecord::from_json(line).expect("round-trips");
            assert_eq!(
                SweepRecord {
                    resumed: false,
                    ..rec
                },
                *orig,
                "manifest line loses information"
            );
        }
        // The rollup saw both runs' counters.
        assert!(report.rollup.counter("fluid.windows").unwrap_or(0) > 0);
    }
}
