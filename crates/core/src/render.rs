//! Small text/CSV rendering helpers shared by the analysis modules.
//!
//! Every analysis result renders as a plain-text table (what the example
//! binaries print) and as CSV (what you'd feed a plotting tool to redraw
//! the paper's figures).

use std::fmt;

/// A rectangular table of strings with a header row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(title: &str, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; its length must match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Render as CSV (RFC 4180 quoting for cells containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths from headers and cells.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "=== {} ===", self.title)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "{:<width$}", h, width = widths[i] + 2)?;
        }
        writeln!(f)?;
        for (i, _) in self.headers.iter().enumerate() {
            write!(f, "{:-<width$}  ", "", width = widths[i])?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{:<width$}", cell, width = widths[i] + 2)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Format a float with limited precision. Non-finite values (NaN from
/// an empty window, ±inf from a zero denominator) render as "–" so no
/// table ever shows a literal `NaN`; the `Coverage` annotations say
/// *why* a cell is undefined.
pub fn num(v: f64, decimals: usize) -> String {
    if !v.is_finite() {
        "–".to_string()
    } else {
        format!("{v:.decimals$}")
    }
}

/// Render an ASCII sparkline of a series (8 levels), for quick visual
/// inspection of time series in terminal output.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else {
                let idx = (((v - min) / span) * 7.0).round() as usize;
                BARS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new("demo", &["letter", "worst"]);
        t.row(vec!["K".into(), "5344".into()]);
        t.row(vec!["B".into(), "1290".into()]);
        let s = t.to_string();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("letter"));
        assert!(s.contains("5344"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = TextTable::new("demo", &["name", "note"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn num_handles_non_finite() {
        assert_eq!(num(f64::NAN, 2), "–");
        assert_eq!(num(f64::INFINITY, 2), "–");
        assert_eq!(num(f64::NEG_INFINITY, 2), "–");
        assert_eq!(num(1.23456, 2), "1.23");
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
        let with_nan = sparkline(&[0.0, f64::NAN, 1.0]);
        assert_eq!(with_nan.chars().nth(1), Some(' '));
    }
}
