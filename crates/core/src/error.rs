//! The crate-wide typed error hierarchy.
//!
//! Hand-rolled (no new dependencies): one umbrella enum wrapping the
//! per-layer error types, with `From` impls so fallible paths compose
//! with `?` across crate boundaries. Every error carries enough context
//! to act on without a backtrace.

use crate::config::ConfigError;
use rootcast_atlas::PipelineError;
use rootcast_dns::{Letter, NameError, WireError};
use std::fmt;

/// An analysis builder was asked for something the run cannot answer.
/// These replace the old library panics: a caller driving figures over
/// a degraded or differently-configured run gets a typed error (or a
/// skip) instead of an `.expect` blowing up the process.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// A raster figure was requested for a letter the pipeline did not
    /// record per-VP timelines for (`PipelineConfig::raster_letters`).
    LetterNotRastered {
        letter: Letter,
        /// The letters that *were* rastered, for the error message.
        available: Vec<Letter>,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::LetterNotRastered { letter, available } => write!(
                f,
                "letter {letter} has no per-VP raster timelines (rastered: {})",
                available
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// The sweep runner failed outside any individual scenario run.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The plan has no runs.
    EmptyPlan,
    /// Checkpoint manifest I/O or parse failure (path, cause).
    Checkpoint(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptyPlan => write!(f, "sweep plan has no runs"),
            SweepError::Checkpoint(m) => write!(f, "checkpoint manifest: {m}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Any error a rootcast driver or analysis can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum RootcastError {
    /// The scenario configuration failed validation.
    Config(ConfigError),
    /// DNS wire-format parsing failed.
    Wire(WireError),
    /// Domain-name parsing failed.
    Name(NameError),
    /// The measurement pipeline rejected an operation.
    Pipeline(PipelineError),
    /// An analysis builder was asked for data the run does not hold.
    Analysis(AnalysisError),
    /// The multi-scenario sweep runner failed.
    Sweep(SweepError),
}

impl fmt::Display for RootcastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RootcastError::Config(e) => write!(f, "scenario config: {e}"),
            RootcastError::Wire(e) => write!(f, "dns wire format: {e}"),
            RootcastError::Name(e) => write!(f, "domain name: {e}"),
            RootcastError::Pipeline(e) => write!(f, "measurement pipeline: {e}"),
            RootcastError::Analysis(e) => write!(f, "analysis: {e}"),
            RootcastError::Sweep(e) => write!(f, "sweep: {e}"),
        }
    }
}

impl std::error::Error for RootcastError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RootcastError::Config(e) => Some(e),
            RootcastError::Wire(e) => Some(e),
            RootcastError::Name(e) => Some(e),
            RootcastError::Pipeline(e) => Some(e),
            RootcastError::Analysis(e) => Some(e),
            RootcastError::Sweep(e) => Some(e),
        }
    }
}

impl From<AnalysisError> for RootcastError {
    fn from(e: AnalysisError) -> RootcastError {
        RootcastError::Analysis(e)
    }
}

impl From<SweepError> for RootcastError {
    fn from(e: SweepError) -> RootcastError {
        RootcastError::Sweep(e)
    }
}

impl From<ConfigError> for RootcastError {
    fn from(e: ConfigError) -> RootcastError {
        RootcastError::Config(e)
    }
}

impl From<WireError> for RootcastError {
    fn from(e: WireError) -> RootcastError {
        RootcastError::Wire(e)
    }
}

impl From<NameError> for RootcastError {
    fn from(e: NameError) -> RootcastError {
        RootcastError::Name(e)
    }
}

impl From<PipelineError> for RootcastError {
    fn from(e: PipelineError) -> RootcastError {
        RootcastError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_and_displays_layer_errors() {
        let e: RootcastError = WireError::Truncated.into();
        assert!(e.to_string().contains("wire"));
        assert!(e.source().is_some());

        let e: RootcastError = ConfigError::BadTiming("horizon".into()).into();
        assert!(matches!(e, RootcastError::Config(_)));
        assert!(e.to_string().contains("horizon"));
    }
}
