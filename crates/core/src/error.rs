//! The crate-wide typed error hierarchy.
//!
//! Hand-rolled (no new dependencies): one umbrella enum wrapping the
//! per-layer error types, with `From` impls so fallible paths compose
//! with `?` across crate boundaries. Every error carries enough context
//! to act on without a backtrace.

use crate::config::ConfigError;
use rootcast_atlas::PipelineError;
use rootcast_dns::{NameError, WireError};
use std::fmt;

/// Any error a rootcast driver or analysis can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum RootcastError {
    /// The scenario configuration failed validation.
    Config(ConfigError),
    /// DNS wire-format parsing failed.
    Wire(WireError),
    /// Domain-name parsing failed.
    Name(NameError),
    /// The measurement pipeline rejected an operation.
    Pipeline(PipelineError),
}

impl fmt::Display for RootcastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RootcastError::Config(e) => write!(f, "scenario config: {e}"),
            RootcastError::Wire(e) => write!(f, "dns wire format: {e}"),
            RootcastError::Name(e) => write!(f, "domain name: {e}"),
            RootcastError::Pipeline(e) => write!(f, "measurement pipeline: {e}"),
        }
    }
}

impl std::error::Error for RootcastError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RootcastError::Config(e) => Some(e),
            RootcastError::Wire(e) => Some(e),
            RootcastError::Name(e) => Some(e),
            RootcastError::Pipeline(e) => Some(e),
        }
    }
}

impl From<ConfigError> for RootcastError {
    fn from(e: ConfigError) -> RootcastError {
        RootcastError::Config(e)
    }
}

impl From<WireError> for RootcastError {
    fn from(e: WireError) -> RootcastError {
        RootcastError::Wire(e)
    }
}

impl From<NameError> for RootcastError {
    fn from(e: NameError) -> RootcastError {
        RootcastError::Name(e)
    }
}

impl From<PipelineError> for RootcastError {
    fn from(e: PipelineError) -> RootcastError {
        RootcastError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_and_displays_layer_errors() {
        let e: RootcastError = WireError::Truncated.into();
        assert!(e.to_string().contains("wire"));
        assert!(e.source().is_some());

        let e: RootcastError = ConfigError::BadTiming("horizon".into()).into();
        assert!(matches!(e, RootcastError::Config(_)));
        assert!(e.to_string().contains("horizon"));
    }
}
