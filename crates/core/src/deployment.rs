//! The November 2015 deployments: 13 root letters per Table 2, plus the
//! co-located `.nl` TLD service used in the collateral-damage analysis.
//!
//! Architecture facts come from the paper (Table 2 and §3): site counts,
//! global/local splits, B's unicast and H's primary/backup design, and
//! the specific site lists of E- and K-root from Figures 5/6. Capacities
//! are **not public** (the paper: "we know neither site capacity …
//! something generally kept private by operators as a defensive
//! measure"), so we assign them to reproduce the *observed outcome
//! ordering*: A rode out the attack untouched; B (one site) was hit
//! worst; H's primary coast failed over; J saw only a few VPs lose
//! service; K's AMS absorbed with seconds of bufferbloat while LHR was
//! nearly unreachable. Each choice is documented inline.

use rootcast_anycast::{LoadBalancerMode, SiteSpec, StressPolicy};
use rootcast_bgp::Scope;
use rootcast_dns::Letter;
use rootcast_netsim::stats::mix64;
use rootcast_netsim::SimDuration;
use rootcast_topology::{city_by_code, AsGraph, AsId, Relation, Tier};

/// Facility ids used by the canonical scenario.
pub mod facilities {
    use rootcast_anycast::FacilityId;
    /// The Frankfurt data center shared by K-FRA, D-FRA and nl-FRA
    /// (§3.6: "there are seven Root Letters hosted in Frankfurt").
    pub const FRA_SHARED: FacilityId = FacilityId(1);
    /// The Sydney facility shared by E-SYD, D-SYD and nl-SYD.
    pub const SYD_SHARED: FacilityId = FacilityId(2);
}

/// One letter's full deployment.
#[derive(Debug, Clone)]
pub struct LetterDeployment {
    pub letter: Letter,
    pub sites: Vec<SiteSpec>,
    /// RSSAC-002 capture quality while under stress, for the five
    /// letters that reported at event time (None = not reporting).
    /// Values are chosen to reproduce Table 3's undercounting pattern:
    /// A measured the full event, J/K captured fractions, H almost
    /// nothing relative to its offered load.
    pub rssac_capture: Option<f64>,
}

impl LetterDeployment {
    /// Total configured capacity across sites, q/s.
    pub fn total_capacity(&self) -> f64 {
        self.sites.iter().map(|s| s.capacity_qps).sum()
    }

    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }
}

/// Pick a host AS in `city_code`, preferring transit (Tier-2) ASes —
/// where real anycast sites sit — and falling back to any AS in the
/// city. `salt` spreads different letters' sites in the same city over
/// different hosts.
pub fn host_in_city(graph: &AsGraph, city_code: &str, salt: u64) -> AsId {
    let (city_id, _) =
        city_by_code(city_code).unwrap_or_else(|| panic!("unknown city code {city_code}"));
    let mut tier2: Vec<AsId> = Vec::new();
    let mut others: Vec<AsId> = Vec::new();
    for node in graph.nodes() {
        if node.city == city_id {
            match node.tier {
                Tier::Tier2 => tier2.push(node.id),
                _ => others.push(node.id),
            }
        }
    }
    let pool = if !tier2.is_empty() { tier2 } else { others };
    assert!(
        !pool.is_empty(),
        "no AS available in {city_code}; enlarge the topology"
    );
    pool[(mix64(salt) % pool.len() as u64) as usize]
}

/// Number of ASes in `root`'s customer cone (`root` plus transitive
/// customers) — the BGP notion of how much of the Internet sits
/// "behind" a host.
fn customer_cone_size(graph: &AsGraph, root: AsId) -> usize {
    let mut seen = vec![false; graph.len()];
    let mut stack = vec![root];
    seen[root.0 as usize] = true;
    let mut count = 0;
    while let Some(id) = stack.pop() {
        count += 1;
        for adj in graph.neighbors(id) {
            if adj.relation == Relation::Customer && !seen[adj.neighbor.0 as usize] {
                seen[adj.neighbor.0 as usize] = true;
                stack.push(adj.neighbor);
            }
        }
    }
    count
}

/// Pick the transit AS in `city_code` with the largest (or smallest)
/// customer cone. Sites whose observed behavior hinges on catchment
/// *size* — K-AMS's IX-scale absorber, K-LHR's pinned peering leg —
/// use this instead of the salted pick, so the outcome is a structural
/// property of the deployment rather than an accident of the topology
/// seed. Ties break on AS id, keeping the choice deterministic.
pub fn host_in_city_by_cone(graph: &AsGraph, city_code: &str, largest: bool) -> AsId {
    let (city_id, _) =
        city_by_code(city_code).unwrap_or_else(|| panic!("unknown city code {city_code}"));
    let mut tier2: Vec<AsId> = Vec::new();
    let mut others: Vec<AsId> = Vec::new();
    for node in graph.nodes() {
        if node.city == city_id {
            match node.tier {
                Tier::Tier2 => tier2.push(node.id),
                _ => others.push(node.id),
            }
        }
    }
    let pool = if !tier2.is_empty() { tier2 } else { others };
    assert!(
        !pool.is_empty(),
        "no AS available in {city_code}; enlarge the topology"
    );
    pool.into_iter()
        .min_by_key(|&id| {
            let cone = customer_cone_size(graph, id) as i64;
            (if largest { -cone } else { cone }, id.0)
        })
        .expect("non-empty pool")
}

/// Does any AS exist in this city? (Small test topologies may not cover
/// every catalog city.)
pub fn city_is_populated(graph: &AsGraph, city_code: &str) -> bool {
    city_by_code(city_code)
        .map(|(id, _)| graph.nodes().any(|n| n.city == id))
        .unwrap_or(false)
}

/// Shorthand for a site builder with a per-letter salt.
fn site(graph: &AsGraph, letter: Letter, code: &str, ordinal: u64, capacity_qps: f64) -> SiteSpec {
    let salt = (letter as u64) << 32 | ordinal;
    SiteSpec::global(code, host_in_city(graph, code, salt), capacity_qps)
}

/// A buffer sized to `seconds` of capacity — the bufferbloat dial. Two
/// seconds of buffering reproduces K-AMS's RTT inflation to ~2 s.
fn buffer_secs(capacity_qps: f64, seconds: f64) -> f64 {
    capacity_qps * seconds
}

/// Build all 13 letters against `graph`.
///
/// Letters with large real deployments are represented with fewer sites
/// than Table 2 reports (the synthetic topology has ~90 cities), but the
/// *ordering* of deployment sizes is preserved — the property behind the
/// paper's site-count/reachability correlation (§3.2.1).
pub fn nov2015_deployments(graph: &AsGraph) -> Vec<LetterDeployment> {
    let mut out = Vec::with_capacity(13);

    // Helper: spread `codes` into plain global absorb sites.
    let spread = |letter: Letter, codes: &[&str], capacity: f64| -> Vec<SiteSpec> {
        codes
            .iter()
            .enumerate()
            .filter(|(_, c)| city_is_populated(graph, c))
            .map(|(i, c)| {
                site(graph, letter, c, i as u64, capacity).with_buffer(buffer_secs(capacity, 1.0))
            })
            .collect()
    };

    // --- A (Verisign): 5 global sites, provisioned to ride out 5 Mq/s
    // ("A continu[ed] to serve all regular queries throughout").
    out.push(LetterDeployment {
        letter: Letter::A,
        sites: spread(Letter::A, &["IAD", "LGA", "FRA", "HKG", "LAX"], 2_000_000.0),
        rssac_capture: Some(1.0),
    });

    // --- B (USC/ISI): unicast, one Los Angeles site. Smallest capacity
    // of any letter: the 5 Mq/s event crushes it (worst reachability in
    // Figure 3) while successful queries keep a *stable RTT* — we give
    // it a shallow buffer so overload drops rather than queues.
    out.push(LetterDeployment {
        letter: Letter::B,
        sites: vec![
            site(graph, Letter::B, "LAX", 0, 350_000.0).with_buffer(buffer_secs(350_000.0, 0.05))
        ],
        rssac_capture: None,
    });

    // --- C (Cogent): 8 global sites, moderate capacity.
    out.push(LetterDeployment {
        letter: Letter::C,
        sites: spread(
            Letter::C,
            &["IAD", "LGA", "ORD", "LAX", "FRA", "CDG", "MAD", "NRT"],
            450_000.0,
        ),
        rssac_capture: None,
    });

    // --- D (U. Maryland): many sites, NOT attacked. D-FRA and D-SYD sit
    // in shared facilities — the collateral-damage bystanders of §3.6.
    let mut d_sites = spread(
        Letter::D,
        &[
            "IAD", "LGA", "ORD", "ATL", "SEA", "DEN", "DFW", "MIA", "YYZ", "LHR", "CDG", "AMS",
            "VIE", "ARN", "GRU", "NRT", "HKG", "QPG",
        ],
        350_000.0,
    );
    // D-FRA is a locally-scoped site in the shared Frankfurt facility:
    // a mid-size catchment whose dip is visible in Figure 14 without
    // denting D's letter-level reachability (Figure 3 shows D flat).
    d_sites.push(
        SiteSpec::global("FRA", host_in_city_by_cone(graph, "FRA", true), 350_000.0)
            .with_scope(Scope::Local)
            .with_facility(facilities::FRA_SHARED),
    );
    d_sites
        .push(site(graph, Letter::D, "SYD", 101, 350_000.0).with_facility(facilities::SYD_SHARED));
    out.push(LetterDeployment {
        letter: Letter::D,
        sites: d_sites,
        rssac_capture: None,
    });

    // --- E (NASA): the paper's Figure 6a site list. Five sites
    // (AMS, CDG, WAW, SYD, NLV) "shut down" after the Dec 1 event:
    // withdraw-sticky. The rest: large sites absorb, small local sites
    // serve their host cones.
    let e_caps: &[(&str, f64)] = &[
        ("AMS", 38_000.0),
        ("FRA", 420_000.0),
        ("LHR", 380_000.0),
        ("ARC", 350_000.0),
        ("CDG", 50_000.0),
        ("VIE", 200_000.0),
        ("QPG", 200_000.0),
        ("ORD", 220_000.0),
        ("KBP", 150_000.0),
        ("ZRH", 160_000.0),
        ("IAD", 260_000.0),
        ("PAO", 240_000.0),
        ("WAW", 22_000.0),
        ("ATL", 200_000.0),
        ("BER", 150_000.0),
        ("SYD", 9_000.0),
        ("SEA", 180_000.0),
        ("NLV", 35_000.0),
        ("MIA", 170_000.0),
        ("NRT", 140_000.0),
        ("TRN", 120_000.0),
        ("AKL", 100_000.0),
        ("MAN", 110_000.0),
        ("BUR", 110_000.0),
        ("LGA", 150_000.0),
        ("PER", 80_000.0),
        ("SNA", 80_000.0),
        ("LBA", 60_000.0),
        ("SIN", 60_000.0),
        ("DXB", 50_000.0),
        ("KGL", 40_000.0),
        ("LAD", 40_000.0),
    ];
    let e_sticky = ["AMS", "CDG", "WAW", "SYD", "NLV"];
    let e_local = ["LBA", "SIN", "DXB", "KGL", "LAD", "PER", "SNA"];
    let e_sites = e_caps
        .iter()
        .enumerate()
        .filter(|(_, (c, _))| city_is_populated(graph, c))
        .map(|(i, &(code, cap))| {
            let mut s =
                site(graph, Letter::E, code, i as u64, cap).with_buffer(buffer_secs(cap, 1.2));
            if e_sticky.contains(&code) {
                s = s.with_policy(StressPolicy::withdraw_after_episode(2));
            } else if e_local.contains(&code) {
                s = s.with_scope(Scope::Local);
            }
            if code == "SYD" {
                s = s.with_facility(facilities::SYD_SHARED);
            }
            s
        })
        .collect();
    out.push(LetterDeployment {
        letter: Letter::E,
        sites: e_sites,
        rssac_capture: None,
    });

    // --- F (ISC): 5 global + many local sites; well provisioned.
    let f_global = ["PAO", "ORD", "LGA", "LHR", "HKG"];
    let f_local = [
        "AMS", "CDG", "MAD", "ROM", "PRG", "ARN", "OSL", "HEL", "GRU", "EZE", "SCL", "JNB", "NBO",
        "TPE", "ICN", "BKK", "YYZ", "MEX", "DUB",
    ];
    let mut f_sites: Vec<SiteSpec> = f_global
        .iter()
        .enumerate()
        .filter(|(_, c)| city_is_populated(graph, c))
        .map(|(i, &c)| {
            site(graph, Letter::F, c, i as u64, 600_000.0).with_buffer(buffer_secs(600_000.0, 1.0))
        })
        .collect();
    f_sites.extend(
        f_local
            .iter()
            .enumerate()
            .filter(|(_, c)| city_is_populated(graph, c))
            .map(|(i, &c)| {
                site(graph, Letter::F, c, 100 + i as u64, 150_000.0).with_scope(Scope::Local)
            }),
    );
    out.push(LetterDeployment {
        letter: Letter::F,
        sites: f_sites,
        rssac_capture: None,
    });

    // --- G (U.S. DoD): 6 global sites, modest capacity. Half the sites
    // withdraw under stress (Figure 4 shows G's RTT jumping as routes
    // moved); the other half absorb, so the letter keeps partial
    // service from farther, slower sites instead of going fully dark.
    out.push(LetterDeployment {
        letter: Letter::G,
        sites: ["IAD", "ORD", "SAN", "BWI", "DEN", "SEA"]
            .iter()
            .enumerate()
            .filter(|(_, c)| city_is_populated(graph, c))
            .map(|(i, &c)| {
                let s = site(graph, Letter::G, c, i as u64, 320_000.0);
                if i % 2 == 0 {
                    s.with_policy(StressPolicy::withdraw_default())
                } else {
                    s.with_buffer(buffer_secs(320_000.0, 1.5))
                }
            })
            .collect(),
        rssac_capture: None,
    });

    // --- H (ARL): two sites, primary (east coast, BWI) and backup
    // (San Diego) de-preferred via prepending. Under overload the
    // primary's session drops, traffic crosses the continent, and the
    // median RTT from (European) VPs converges to B's — Figure 4.
    out.push(LetterDeployment {
        letter: Letter::H,
        sites: vec![
            site(graph, Letter::H, "BWI", 0, 600_000.0).with_policy(StressPolicy::Withdraw {
                overload_ratio: 2.0,
                sustain: SimDuration::from_mins(4),
                retry_after: Some(SimDuration::from_mins(20)),
                after_episodes: 1,
            }),
            site(graph, Letter::H, "SAN", 1, 600_000.0).with_prepend(4),
        ],
        rssac_capture: Some(0.35),
    });

    // --- I (Netnod): ~49 global sites, healthy capacity: mild impact.
    out.push(LetterDeployment {
        letter: Letter::I,
        sites: spread(
            Letter::I,
            &[
                "ARN", "OSL", "CPH", "HEL", "AMS", "LHR", "FRA", "CDG", "MIL", "VIE", "WAW", "MOW",
                "IAD", "ORD", "PAO", "MIA", "YYZ", "HKG", "NRT", "QPG", "SYD", "JNB", "DXB", "GRU",
            ],
            550_000.0,
        ),
        rssac_capture: None,
    });

    // --- J (Verisign): the largest deployment; big global capacity so
    // only a few VPs lose service (Figure 3).
    out.push(LetterDeployment {
        letter: Letter::J,
        sites: spread(
            Letter::J,
            &[
                "IAD", "LGA", "ATL", "ORD", "DFW", "DEN", "SEA", "PAO", "LAX", "MIA", "YYZ", "MEX",
                "GRU", "EZE", "LHR", "FRA", "AMS", "CDG", "MAD", "ARN", "VIE", "PRG", "IST", "NRT",
                "ICN", "HKG", "QPG", "BOM", "SYD", "AKL",
            ],
            650_000.0,
        ),
        rssac_capture: Some(0.40),
    });

    // --- K (RIPE): the paper's main case study; Figure 6b's site list.
    // Per-site tuning reproduces §3.3–§3.5:
    //  * K-AMS — huge catchment, absorbs with ~2 s of bufferbloat;
    //  * K-LHR — a withdrawing global origin *plus* a small local origin
    //    pinned to its host's customer cone: the "stuck" VPs that keep
    //    getting occasional replies while everyone else flips to AMS;
    //  * K-FRA — absorber in the shared Frankfurt facility, failover-
    //    concentrating load balancer (one surviving server, §3.5);
    //  * K-NRT — absorber behind one congested shared link (all three
    //    servers slow, one hash-hot, §3.5).
    let mut k_sites: Vec<SiteSpec> = Vec::new();
    {
        // AMS-IX peering gives K-AMS the biggest catchment in the
        // deployment by construction: host on the largest-cone transit.
        let cap_ams = 150_000.0;
        k_sites.push(
            SiteSpec::global("AMS", host_in_city_by_cone(graph, "AMS", true), cap_ams)
                .with_buffer(buffer_secs(cap_ams, 2.2)),
        );
        let cap_lhr = 80_000.0;
        k_sites.push(
            site(graph, Letter::K, "LHR", 1, cap_lhr)
                .with_buffer(buffer_secs(cap_lhr, 1.0))
                .with_policy(StressPolicy::Withdraw {
                    overload_ratio: 1.5,
                    sustain: SimDuration::from_mins(4),
                    retry_after: Some(SimDuration::from_mins(25)),
                    after_episodes: 1,
                }),
        );
        // The pinned peering leg of K-LHR (same airport code: both
        // origins present as "K-LHR" in CHAOS identities). Hosted on
        // the smallest-cone transit so that when the global origin
        // withdraws, only the host's own cone stays "stuck" here and
        // everyone else flips to AMS — the §3.3 behavior.
        k_sites.push(
            SiteSpec::global("LHR", host_in_city_by_cone(graph, "LHR", false), 60_000.0)
                .with_scope(Scope::Local)
                .with_buffer(buffer_secs(60_000.0, 0.3)),
        );
        let cap_fra = 60_000.0;
        k_sites.push(
            site(graph, Letter::K, "FRA", 3, cap_fra)
                .with_buffer(buffer_secs(cap_fra, 0.8))
                .with_lb_mode(LoadBalancerMode::FailoverConcentrate)
                .with_facility(facilities::FRA_SHARED),
        );
        // K-NRT serves the region's biggest cone through one congested
        // shared link.
        let cap_nrt = 55_000.0;
        k_sites.push(
            SiteSpec::global("NRT", host_in_city_by_cone(graph, "NRT", true), cap_nrt)
                .with_buffer(buffer_secs(cap_nrt, 1.8))
                .with_lb_mode(LoadBalancerMode::SharedLink),
        );
        let k_rest: &[(&str, f64)] = &[
            ("MIA", 300_000.0),
            ("VIE", 280_000.0),
            ("LED", 250_000.0),
            ("MIL", 200_000.0),
            ("ZRH", 200_000.0),
            ("WAW", 150_000.0),
            ("BNE", 180_000.0),
            ("PRG", 180_000.0),
            ("GVA", 180_000.0),
            ("ATH", 120_000.0),
            ("MKC", 120_000.0),
            ("RIX", 100_000.0),
            ("THR", 100_000.0),
            ("BUD", 100_000.0),
            ("KAE", 80_000.0),
            ("BEG", 80_000.0),
            ("HEL", 80_000.0),
            ("PLX", 60_000.0),
            ("OVB", 60_000.0),
            ("POZ", 60_000.0),
            ("ABO", 50_000.0),
            ("AVN", 50_000.0),
            ("BCN", 50_000.0),
            ("REY", 50_000.0),
            ("DOH", 40_000.0),
            ("RNO", 40_000.0),
        ];
        let k_local = [
            "KAE", "PLX", "OVB", "POZ", "ABO", "AVN", "BCN", "REY", "DOH", "RNO",
        ];
        for (i, &(code, cap)) in k_rest.iter().enumerate() {
            if !city_is_populated(graph, code) {
                continue;
            }
            let mut s =
                site(graph, Letter::K, code, 10 + i as u64, cap).with_buffer(buffer_secs(cap, 1.2));
            if k_local.contains(&code) {
                s = s.with_scope(Scope::Local);
            }
            k_sites.push(s);
        }
    }
    out.push(LetterDeployment {
        letter: Letter::K,
        sites: k_sites,
        rssac_capture: Some(0.22),
    });

    // --- L (ICANN): the widest deployment, NOT attacked. Its RSSAC
    // reports show the letter-flip inflow during event 2 (§3.2.2).
    out.push(LetterDeployment {
        letter: Letter::L,
        sites: spread(
            Letter::L,
            &[
                "IAD", "LGA", "ATL", "ORD", "DFW", "DEN", "SEA", "PAO", "LAX", "MIA", "YYZ", "YVR",
                "MEX", "BOG", "GRU", "EZE", "SCL", "LHR", "FRA", "AMS", "CDG", "MAD", "BCN", "ROM",
                "ZRH", "VIE", "PRG", "WAW", "ARN", "HEL", "IST", "MOW", "CAI", "JNB", "NBO", "LOS",
                "DXB", "TLV", "BOM", "DEL", "BKK", "KUL", "QPG", "CGK", "HKG", "TPE", "ICN", "NRT",
                "SYD", "AKL",
            ],
            500_000.0,
        ),
        rssac_capture: Some(1.0),
    });

    // --- M (WIDE): 6 sites centered on Japan, NOT attacked.
    out.push(LetterDeployment {
        letter: Letter::M,
        sites: spread(
            Letter::M,
            &["NRT", "ICN", "HKG", "QPG", "CDG", "PAO"],
            500_000.0,
        ),
        rssac_capture: None,
    });

    assert_eq!(out.len(), 13);
    out
}

/// The `.nl` anycast deployment used for Figure 15: two anycast sites
/// co-located with root-server sites in the shared facilities. (SIDN
/// also ran four unicast deployments; the figure shows only the two
/// anycast sites that collapsed, which is what we model.)
pub fn nl_deployment(graph: &AsGraph) -> Vec<SiteSpec> {
    // Salts distinct from every letter's salt space ("nl" in ASCII).
    const NL_SALT_FRA: u64 = 0x6E6C_0001;
    const NL_SALT_SYD: u64 = 0x6E6C_0002;
    vec![
        SiteSpec::global("FRA", host_in_city(graph, "FRA", NL_SALT_FRA), 100_000.0)
            .with_facility(facilities::FRA_SHARED),
        SiteSpec::global("SYD", host_in_city(graph, "SYD", NL_SALT_SYD), 100_000.0)
            .with_facility(facilities::SYD_SHARED),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootcast_netsim::SimRng;
    use rootcast_topology::{gen, TopologyParams};

    fn graph() -> AsGraph {
        gen::generate(&TopologyParams::default(), &SimRng::new(42))
    }

    #[test]
    fn thirteen_letters_configured() {
        let g = graph();
        let deps = nov2015_deployments(&g);
        assert_eq!(deps.len(), 13);
        let letters: Vec<Letter> = deps.iter().map(|d| d.letter).collect();
        assert_eq!(letters, Letter::ALL.to_vec());
    }

    #[test]
    fn site_count_ordering_matches_table2() {
        let g = graph();
        let deps = nov2015_deployments(&g);
        let count = |l: Letter| deps.iter().find(|d| d.letter == l).unwrap().n_sites();
        // B unicast, H two sites; L the widest; K > C; J large.
        assert_eq!(count(Letter::B), 1);
        assert_eq!(count(Letter::H), 2);
        assert!(count(Letter::L) >= count(Letter::J));
        assert!(count(Letter::J) > count(Letter::C));
        assert!(count(Letter::K) > count(Letter::C));
        assert!(count(Letter::E) > 20);
    }

    #[test]
    fn capacity_ordering_reflects_outcomes() {
        let g = graph();
        let deps = nov2015_deployments(&g);
        let cap = |l: Letter| {
            deps.iter()
                .find(|d| d.letter == l)
                .unwrap()
                .total_capacity()
        };
        // A provisioned beyond the 5 Mq/s event; B far below.
        assert!(cap(Letter::A) > 5_000_000.0);
        assert!(cap(Letter::B) < 500_000.0);
        assert!(cap(Letter::J) > cap(Letter::K));
    }

    #[test]
    fn k_lhr_has_global_and_local_legs() {
        let g = graph();
        let deps = nov2015_deployments(&g);
        let k = deps.iter().find(|d| d.letter == Letter::K).unwrap();
        let lhr: Vec<&SiteSpec> = k.sites.iter().filter(|s| s.code == "LHR").collect();
        assert_eq!(lhr.len(), 2);
        assert!(lhr.iter().any(|s| s.scope == Scope::Global));
        assert!(lhr.iter().any(|s| s.scope == Scope::Local));
    }

    #[test]
    fn shared_facilities_host_bystanders() {
        let g = graph();
        let deps = nov2015_deployments(&g);
        let in_fra_shared: Vec<Letter> = deps
            .iter()
            .flat_map(|d| {
                d.sites
                    .iter()
                    .filter(|s| s.facility == Some(facilities::FRA_SHARED))
                    .map(move |_| d.letter)
            })
            .collect();
        assert!(in_fra_shared.contains(&Letter::K));
        assert!(in_fra_shared.contains(&Letter::D));
        let nl = nl_deployment(&g);
        assert_eq!(nl.len(), 2);
        assert_eq!(nl[0].facility, Some(facilities::FRA_SHARED));
        assert_eq!(nl[1].facility, Some(facilities::SYD_SHARED));
    }

    #[test]
    fn rssac_reporters_match_paper() {
        let g = graph();
        let deps = nov2015_deployments(&g);
        let reporters: Vec<Letter> = deps
            .iter()
            .filter(|d| d.rssac_capture.is_some())
            .map(|d| d.letter)
            .collect();
        assert_eq!(
            reporters,
            vec![Letter::A, Letter::H, Letter::J, Letter::K, Letter::L]
        );
    }

    #[test]
    fn host_selection_is_deterministic_and_in_city() {
        let g = graph();
        let a = host_in_city(&g, "FRA", 1);
        assert_eq!(a, host_in_city(&g, "FRA", 1));
        let (fra, _) = rootcast_topology::city_by_code("FRA").unwrap();
        assert_eq!(g.node(a).city, fra);
        // Salts spread across hosts when a city has several candidates
        // (AMS in the default catalog has multiple ASes of some tier).
        let hosts: std::collections::BTreeSet<AsId> =
            (0..16).map(|i| host_in_city(&g, "AMS", i)).collect();
        assert!(!hosts.is_empty());
    }
}
