//! Deterministic fault injection: the sixth engine subsystem.
//!
//! The paper's subject is behaviour under partial failure — sites
//! withdraw, RSSAC reports arrive with holes, Atlas probes disconnect
//! mid-event, BGPmon collectors go quiet — and a reproduction should be
//! able to rehearse those failure modes on purpose. A [`FaultPlan`] on
//! the scenario config schedules faults declaratively; the
//! [`FaultInjector`] applies each one at its instant, reverts it when
//! its window closes, and emits every injection and recovery through
//! the [`Instrumentation`](crate::engine::Instrumentation) observer so
//! [`RunStats`](crate::engine::RunStats) records exactly what was done
//! to the run.
//!
//! ## Determinism contract
//!
//! Fault application happens on the single-threaded engine loop, and
//! any randomness (e.g. which VPs a dropout wave takes) comes from the
//! injector's dedicated `"faults"` RNG stream — no other subsystem's
//! stream is touched. Same seed + same plan ⇒ bit-identical outputs at
//! any rayon thread count, and an empty plan leaves the run
//! bit-identical to one without the injector at all.
//!
//! ## Degradation semantics
//!
//! Faults thin *observation*, not physics: an RSSAC gap stops the
//! letter's monitoring (coverage drops below 1.0) while the traffic
//! itself still flows; a probe dropout suppresses measurements (the
//! pipeline counts them as missed); a collector blackout stops route
//! logging while peers keep converging. Site and facility faults are
//! the exception — they change the simulated world, like the real
//! crashes they model.

use crate::engine::{SimWorld, Subsystem};
use rand::Rng;
use rootcast_anycast::FacilityId;
use rootcast_dns::Letter;
use rootcast_netsim::{ChaCha8Rng, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One kind of injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// A site of `letter` crashes: its announcement is withdrawn for the
    /// fault window and restored on recovery. Routing changes are
    /// observed by the letter's collector like any operator action.
    SiteCrash { letter: Letter, site: String },
    /// A shared facility goes dark: every service routed through it
    /// loses all traffic there until recovery.
    FacilityOutage { facility: FacilityId },
    /// The letter's RSSAC monitoring records nothing for the window —
    /// the report's [`Coverage`](rootcast_netsim::Coverage) drops.
    RssacGap { letter: Letter },
    /// The letter's RSSAC monitoring mis-scales recorded traffic by
    /// `factor` (a corrupted interval; `factor` in `[0, 1]`).
    RssacCorrupt { letter: Letter, factor: f64 },
    /// A dropout wave: each kept VP disconnects with probability
    /// `fraction` and issues no probes until recovery. `letters` scopes
    /// the wave (empty = all letters), modelling per-destination
    /// connectivity loss.
    ProbeDropout { fraction: f64, letters: Vec<Letter> },
    /// Firmware-downgrade churn: each kept VP reverts to pre-4650
    /// firmware with probability `fraction`. Downgraded VPs still probe
    /// (burning the same RNG draws) but their measurements are
    /// discarded by the cleaning rule, counted as missed.
    FirmwareDowngrade { fraction: f64 },
    /// The letter's BGPmon-style collector logs no route events for the
    /// window; peer state keeps converging silently.
    CollectorBlackout { letter: Letter },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::SiteCrash { letter, site } => write!(f, "site-crash {letter}/{site}"),
            FaultKind::FacilityOutage { facility } => {
                write!(f, "facility-outage #{}", facility.0)
            }
            FaultKind::RssacGap { letter } => write!(f, "rssac-gap {letter}"),
            FaultKind::RssacCorrupt { letter, factor } => {
                write!(f, "rssac-corrupt {letter} x{factor}")
            }
            FaultKind::ProbeDropout { fraction, letters } => {
                write!(f, "probe-dropout {:.0}%", fraction * 100.0)?;
                if !letters.is_empty() {
                    write!(f, " towards ")?;
                    for (i, l) in letters.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{l}")?;
                    }
                }
                Ok(())
            }
            FaultKind::FirmwareDowngrade { fraction } => {
                write!(f, "firmware-downgrade {:.0}%", fraction * 100.0)
            }
            FaultKind::CollectorBlackout { letter } => {
                write!(f, "collector-blackout {letter}")
            }
        }
    }
}

/// One scheduled fault: inject at `at`, recover at `at + duration`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    pub at: SimTime,
    pub duration: SimDuration,
    pub kind: FaultKind,
}

impl FaultSpec {
    /// The recovery instant.
    pub fn end(&self) -> SimTime {
        self.at + self.duration
    }
}

/// A declarative, seed-deterministic fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan (the default): no faults, bit-identical behaviour
    /// to a run without the injector.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Append one fault; returns `self` for chaining.
    pub fn with(mut self, at: SimTime, duration: SimDuration, kind: FaultKind) -> FaultPlan {
        self.faults.push(FaultSpec { at, duration, kind });
        self
    }
}

/// Whether a fault record marks an injection or the matching recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    Inject,
    Recover,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultAction::Inject => "inject",
            FaultAction::Recover => "recover",
        })
    }
}

/// One applied fault transition, as reported through the observer and
/// accumulated on [`RunStats`](crate::engine::RunStats).
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedFault {
    pub at: SimTime,
    pub action: FaultAction,
    /// Human-readable description of what was done (includes a note
    /// when a fault degraded to a no-op, e.g. an unknown site code).
    pub description: String,
}

/// How an active fault affects one (VP, letter) probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeAction {
    /// Probe normally.
    Normal,
    /// VP is offline for this letter: no probe, no RNG draw; the
    /// pipeline counts a missed probe.
    Skip,
    /// VP probes (RNG draws happen) but the measurement is discarded
    /// as unusable (old firmware); counted as missed.
    Discard,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeFaultMode {
    Skip,
    Discard,
}

#[derive(Debug)]
struct ProbeFault {
    vps: BTreeSet<u32>,
    /// `None` = every letter.
    letters: Option<BTreeSet<Letter>>,
    mode: ProbeFaultMode,
}

/// The live fault state other subsystems consult, owned by the world.
/// Empty (the default) means every query below answers "healthy".
#[derive(Debug, Default)]
pub struct FaultState {
    /// Per-letter RSSAC capture multiplier; `0.0` = full gap. Letters
    /// absent from the map are monitored normally.
    rssac_factor: BTreeMap<Letter, f64>,
    /// Active probe-fleet faults, keyed by plan index.
    probe_faults: BTreeMap<usize, ProbeFault>,
}

impl FaultState {
    /// The letter's active RSSAC capture multiplier, if any fault
    /// covers it right now (`Some(0.0)` = gap, `Some(f)` = corrupted).
    pub fn rssac_factor(&self, letter: Letter) -> Option<f64> {
        self.rssac_factor.get(&letter).copied()
    }

    /// How the active faults affect a probe from `vp` towards `letter`.
    /// [`ProbeAction::Skip`] wins over [`ProbeAction::Discard`]: an
    /// offline VP cannot probe no matter what firmware it runs.
    pub fn probe_action(&self, vp: u32, letter: Letter) -> ProbeAction {
        let mut action = ProbeAction::Normal;
        for fault in self.probe_faults.values() {
            if !fault.vps.contains(&vp) {
                continue;
            }
            if let Some(scope) = &fault.letters {
                if !scope.contains(&letter) {
                    continue;
                }
            }
            match fault.mode {
                ProbeFaultMode::Skip => return ProbeAction::Skip,
                ProbeFaultMode::Discard => action = ProbeAction::Discard,
            }
        }
        action
    }

    /// True when any fault is currently active.
    pub fn any_active(&self) -> bool {
        !self.rssac_factor.is_empty() || !self.probe_faults.is_empty()
    }
}

/// The fault-injection subsystem. Always seeded last, so same-instant
/// faults apply after the production subsystems finish their ticks.
pub struct FaultInjector {
    rng: ChaCha8Rng,
    plan: FaultPlan,
    /// `(instant, plan index, inject?)`, sorted; `cursor` advances as
    /// events are consumed.
    events: Vec<(SimTime, usize, bool)>,
    cursor: usize,
}

impl FaultInjector {
    /// `rng` must be a dedicated stream (the driver uses `"faults"`).
    /// An empty plan schedules no wake-ups: the injector never ticks.
    pub fn new(rng: ChaCha8Rng, plan: FaultPlan) -> FaultInjector {
        let mut events: Vec<(SimTime, usize, bool)> = Vec::with_capacity(plan.faults.len() * 2);
        for (i, f) in plan.faults.iter().enumerate() {
            events.push((f.at, i, true));
            events.push((f.end(), i, false));
        }
        // Recoveries sort before injections at the same instant (false
        // < true), so back-to-back windows hand over cleanly.
        events.sort();
        FaultInjector {
            rng,
            plan,
            events,
            cursor: 0,
        }
    }

    /// Apply one transition, returning the record to emit.
    fn apply(
        &mut self,
        world: &mut SimWorld,
        t: SimTime,
        idx: usize,
        inject: bool,
    ) -> InjectedFault {
        let kind = self.plan.faults[idx].kind.clone();
        let mut note = String::new();
        match &kind {
            FaultKind::SiteCrash { letter, site } => {
                match world.letters.iter().position(|l| l == letter) {
                    None => note = " (unknown letter, ignored)".into(),
                    Some(svc_idx) => match world.services[svc_idx].site_by_code(site) {
                        None => note = " (unknown site, ignored)".into(),
                        Some(s) => {
                            let graph = &world.graph;
                            if world.services[svc_idx].set_announced(s, !inject, graph) {
                                world.observe_routes(t, svc_idx);
                            } else {
                                note = " (already in that state)".into();
                            }
                        }
                    },
                }
            }
            FaultKind::FacilityOutage { facility } => {
                if !world.facility_table.set_out(*facility, inject) {
                    note = " (unregistered facility, ignored)".into();
                }
            }
            FaultKind::RssacGap { letter } => {
                if inject {
                    world.faults.rssac_factor.insert(*letter, 0.0);
                } else {
                    world.faults.rssac_factor.remove(letter);
                }
                if !world.rssac.contains_key(letter) {
                    note = " (letter does not report RSSAC)".into();
                }
            }
            FaultKind::RssacCorrupt { letter, factor } => {
                if inject {
                    world.faults.rssac_factor.insert(*letter, *factor);
                } else {
                    world.faults.rssac_factor.remove(letter);
                }
                if !world.rssac.contains_key(letter) {
                    note = " (letter does not report RSSAC)".into();
                }
            }
            FaultKind::ProbeDropout { fraction, letters } => {
                if inject {
                    let vps = self.draw_vps(world, *fraction);
                    note = format!(" ({} VPs)", vps.len());
                    world.faults.probe_faults.insert(
                        idx,
                        ProbeFault {
                            vps,
                            letters: if letters.is_empty() {
                                None
                            } else {
                                Some(letters.iter().copied().collect())
                            },
                            mode: ProbeFaultMode::Skip,
                        },
                    );
                } else {
                    world.faults.probe_faults.remove(&idx);
                }
            }
            FaultKind::FirmwareDowngrade { fraction } => {
                if inject {
                    let vps = self.draw_vps(world, *fraction);
                    note = format!(" ({} VPs)", vps.len());
                    world.faults.probe_faults.insert(
                        idx,
                        ProbeFault {
                            vps,
                            letters: None,
                            mode: ProbeFaultMode::Discard,
                        },
                    );
                } else {
                    world.faults.probe_faults.remove(&idx);
                }
            }
            FaultKind::CollectorBlackout { letter } => match world.collectors.get_mut(letter) {
                Some(c) => c.set_dark(t, inject),
                None => note = " (no collector for letter, ignored)".into(),
            },
        }
        InjectedFault {
            at: t,
            action: if inject {
                FaultAction::Inject
            } else {
                FaultAction::Recover
            },
            description: format!("{kind}{note}"),
        }
    }

    /// Pick each kept (non-excluded) VP independently with probability
    /// `fraction`, from the injector's own stream.
    fn draw_vps(&mut self, world: &SimWorld, fraction: f64) -> BTreeSet<u32> {
        let excluded = world.cleaning.excluded_set();
        world
            .fleet
            .iter()
            .filter(|vp| !excluded.contains(&vp.id))
            .filter(|_| self.rng.gen_bool(fraction))
            .map(|vp| vp.id.0)
            .collect()
    }
}

impl Subsystem for FaultInjector {
    fn name(&self) -> &'static str {
        "faults"
    }

    fn initial_wakeups(&mut self) -> Vec<SimTime> {
        // Every transition instant, deduplicated (several faults may
        // share one) — an empty plan parks the injector forever.
        let mut at: Vec<SimTime> = self.events.iter().map(|&(t, _, _)| t).collect();
        at.dedup();
        at
    }

    fn tick(&mut self, world: &mut SimWorld, t: SimTime) -> Vec<SimTime> {
        while let Some(&(at, idx, inject)) = self.events.get(self.cursor) {
            if at != t {
                break;
            }
            self.cursor += 1;
            let record = self.apply(world, t, idx, inject);
            let key = match record.action {
                FaultAction::Inject => crate::engine::metrics::keys::FAULT_INJECTIONS,
                FaultAction::Recover => crate::engine::metrics::keys::FAULT_RECOVERIES,
            };
            world.metrics.inc(key, 1);
            world.trace.record_with(t, || {
                let description = record.description.clone();
                match record.action {
                    FaultAction::Inject => {
                        crate::engine::trace::TraceEventKind::FaultInjected { description }
                    }
                    FaultAction::Recover => {
                        crate::engine::trace::TraceEventKind::FaultRecovered { description }
                    }
                }
            });
            world.obs.on_fault(t, &record);
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::engine::instrument::{NoopInstrumentation, StatsCollector};
    use rootcast_netsim::SimRng;

    fn world_fixture<'a>(
        cfg: &'a ScenarioConfig,
        rngf: &'a SimRng,
        obs: &'a mut dyn crate::engine::Instrumentation,
    ) -> SimWorld<'a> {
        SimWorld::build(cfg, rngf, obs).expect("world builds")
    }

    #[test]
    fn empty_plan_never_wakes() {
        let rngf = SimRng::new(3);
        let mut inj = FaultInjector::new(rngf.stream("faults"), FaultPlan::none());
        assert!(inj.initial_wakeups().is_empty());
    }

    #[test]
    fn site_crash_withdraws_and_recovers() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(30);
        cfg.pipeline.horizon = cfg.horizon;
        let plan = FaultPlan::none().with(
            SimTime::from_mins(5),
            SimDuration::from_mins(10),
            FaultKind::SiteCrash {
                letter: Letter::B,
                site: "LAX".into(),
            },
        );
        let rngf = SimRng::new(cfg.seed);
        let mut obs = StatsCollector::default();
        let mut world = world_fixture(&cfg, &rngf, &mut obs);
        let b = world.letters.iter().position(|&l| l == Letter::B).unwrap();
        let lax = world.services[b].site_by_code("LAX").unwrap();
        let mut inj = FaultInjector::new(rngf.stream("faults"), plan);

        let wakeups = inj.initial_wakeups();
        assert_eq!(wakeups, vec![SimTime::from_mins(5), SimTime::from_mins(15)]);
        inj.tick(&mut world, SimTime::from_mins(5));
        assert!(!world.services[b].site(lax).announced);
        inj.tick(&mut world, SimTime::from_mins(15));
        assert!(world.services[b].site(lax).announced);

        let stats = obs.finish();
        assert_eq!(stats.faults.len(), 2);
        assert_eq!(stats.faults[0].action, FaultAction::Inject);
        assert_eq!(stats.faults[1].action, FaultAction::Recover);
        assert!(stats.faults[0].description.contains("site-crash B/LAX"));
    }

    #[test]
    fn unknown_site_degrades_to_noop() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(30);
        cfg.pipeline.horizon = cfg.horizon;
        let plan = FaultPlan::none().with(
            SimTime::from_mins(1),
            SimDuration::from_mins(1),
            FaultKind::SiteCrash {
                letter: Letter::K,
                site: "XXX".into(),
            },
        );
        let rngf = SimRng::new(cfg.seed);
        let mut obs = StatsCollector::default();
        let mut world = world_fixture(&cfg, &rngf, &mut obs);
        let mut inj = FaultInjector::new(rngf.stream("faults"), plan);
        inj.tick(&mut world, SimTime::from_mins(1));
        let stats = obs.finish();
        assert!(stats.faults[0].description.contains("unknown site"));
    }

    #[test]
    fn dropout_wave_is_deterministic_and_scoped() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(30);
        cfg.pipeline.horizon = cfg.horizon;
        let plan = FaultPlan::none().with(
            SimTime::from_mins(2),
            SimDuration::from_mins(10),
            FaultKind::ProbeDropout {
                fraction: 0.5,
                letters: vec![Letter::E],
            },
        );
        let rngf = SimRng::new(cfg.seed);

        let run_wave = || {
            let mut obs = NoopInstrumentation;
            let mut world = world_fixture(&cfg, &rngf, &mut obs);
            let mut inj = FaultInjector::new(rngf.stream("faults"), plan.clone());
            inj.tick(&mut world, SimTime::from_mins(2));
            let dark: Vec<u32> = world
                .fleet
                .iter()
                .filter(|vp| world.faults.probe_action(vp.id.0, Letter::E) == ProbeAction::Skip)
                .map(|vp| vp.id.0)
                .collect();
            // The wave is scoped: the same VPs probe K normally.
            for &vp in &dark {
                assert_eq!(
                    world.faults.probe_action(vp, Letter::K),
                    ProbeAction::Normal
                );
            }
            assert!(!dark.is_empty());
            (dark, world.faults.any_active())
        };
        let (a, active) = run_wave();
        let (b, _) = run_wave();
        assert_eq!(a, b, "dropout membership must be seed-deterministic");
        assert!(active);
    }

    #[test]
    fn rssac_factor_tracks_gap_and_corrupt_windows() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(30);
        cfg.pipeline.horizon = cfg.horizon;
        let plan = FaultPlan::none()
            .with(
                SimTime::from_mins(1),
                SimDuration::from_mins(4),
                FaultKind::RssacGap { letter: Letter::H },
            )
            .with(
                SimTime::from_mins(1),
                SimDuration::from_mins(4),
                FaultKind::RssacCorrupt {
                    letter: Letter::K,
                    factor: 0.5,
                },
            );
        let rngf = SimRng::new(cfg.seed);
        let mut obs = NoopInstrumentation;
        let mut world = world_fixture(&cfg, &rngf, &mut obs);
        let mut inj = FaultInjector::new(rngf.stream("faults"), plan);
        inj.tick(&mut world, SimTime::from_mins(1));
        assert_eq!(world.faults.rssac_factor(Letter::H), Some(0.0));
        assert_eq!(world.faults.rssac_factor(Letter::K), Some(0.5));
        assert_eq!(world.faults.rssac_factor(Letter::A), None);
        inj.tick(&mut world, SimTime::from_mins(5));
        assert!(!world.faults.any_active());
    }
}
