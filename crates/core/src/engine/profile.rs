//! The run profiler: per-phase and per-subsystem wall-clock timing,
//! rendered as a breakdown table or exported as chrome://tracing
//! trace-event JSON.
//!
//! [`Profiler`] is an [`Instrumentation`] observer — it watches phase
//! markers and subsystem ticks without touching simulation state, so a
//! profiled run's outputs stay bit-identical to an unprofiled one. The
//! finished [`RunProfile`] renders two ways:
//!
//! * [`RunProfile::breakdown`] — text tables of phase and subsystem
//!   wall time for terminal inspection;
//! * [`RunProfile::chrome_trace`] — a trace-event JSON array (`B`/`E`
//!   phase pairs plus `X` complete events for ticks, timestamps in
//!   microseconds) that loads directly into `chrome://tracing`,
//!   Perfetto, or `scripts/trace.sh`.

use crate::engine::instrument::Instrumentation;
use crate::render::TextTable;
use rootcast_netsim::SimTime;
use serde_json::Value;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// One driver phase (`build_world`, `drive`, `finalize`) as a closed
/// begin/end interval on the profiler's wall clock, microseconds since
/// the profiler was armed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    pub name: &'static str,
    pub start_us: u64,
    pub end_us: u64,
}

impl PhaseSpan {
    pub fn wall(&self) -> Duration {
        Duration::from_micros(self.end_us - self.start_us)
    }
}

/// One subsystem tick as a complete span: which subsystem, at which
/// simulated instant, over which wall interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickSpan {
    pub subsystem: &'static str,
    pub t: SimTime,
    pub start_us: u64,
    pub dur_us: u64,
}

/// The profiling observer. Arm it, pass it to
/// [`run_observed`](crate::sim::run_observed) (or use
/// [`run_profiled`](crate::sim::run_profiled), which combines it with
/// the default stats collector), then call [`Profiler::finish`].
#[derive(Debug)]
pub struct Profiler {
    armed: Instant,
    open: Vec<(&'static str, u64)>,
    phases: Vec<PhaseSpan>,
    ticks: Vec<TickSpan>,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler {
            armed: Instant::now(),
            open: Vec::new(),
            phases: Vec::new(),
            ticks: Vec::new(),
        }
    }
}

impl Profiler {
    fn now_us(&self) -> u64 {
        self.armed.elapsed().as_micros() as u64
    }

    /// Close out and return the profile. Unclosed phases (a panic path)
    /// are closed at the current instant so the export stays well-formed.
    pub fn finish(mut self) -> RunProfile {
        let now = self.now_us();
        while let Some((name, start_us)) = self.open.pop() {
            self.phases.push(PhaseSpan {
                name,
                start_us,
                end_us: now,
            });
        }
        RunProfile {
            phases: self.phases,
            ticks: self.ticks,
        }
    }
}

impl Instrumentation for Profiler {
    fn on_phase_start(&mut self, phase: &'static str) {
        let now = self.now_us();
        self.open.push((phase, now));
    }

    fn on_phase_end(&mut self, phase: &'static str) {
        let now = self.now_us();
        match self.open.pop() {
            Some((name, start_us)) => {
                debug_assert_eq!(name, phase, "phase markers must nest");
                self.phases.push(PhaseSpan {
                    name,
                    start_us,
                    end_us: now,
                });
            }
            None => debug_assert!(false, "phase end {phase:?} without a start"),
        }
    }

    fn on_subsystem_tick(&mut self, subsystem: &'static str, t: SimTime, wall: Duration) {
        let end = self.now_us();
        let dur_us = wall.as_micros() as u64;
        self.ticks.push(TickSpan {
            subsystem,
            t,
            start_us: end.saturating_sub(dur_us),
            dur_us,
        });
    }
}

/// Per-subsystem aggregate over a profiled run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SubsystemProfile {
    pub ticks: u64,
    pub wall: Duration,
    pub max_tick: Duration,
}

/// The finished profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunProfile {
    /// Driver phases in completion order.
    pub phases: Vec<PhaseSpan>,
    /// Every subsystem tick, in tick order.
    pub ticks: Vec<TickSpan>,
}

impl RunProfile {
    /// Aggregate tick spans per subsystem.
    pub fn subsystems(&self) -> BTreeMap<&'static str, SubsystemProfile> {
        let mut agg: BTreeMap<&'static str, SubsystemProfile> = BTreeMap::new();
        for tick in &self.ticks {
            let s = agg.entry(tick.subsystem).or_default();
            s.ticks += 1;
            let d = Duration::from_micros(tick.dur_us);
            s.wall += d;
            if d > s.max_tick {
                s.max_tick = d;
            }
        }
        agg
    }

    /// Render the phase and subsystem breakdown as text tables.
    pub fn breakdown(&self) -> Vec<TextTable> {
        let mut phases = TextTable::new("Run phases", &["phase", "wall ms"]);
        for p in &self.phases {
            phases.row(vec![
                p.name.to_string(),
                format!("{:.2}", p.wall().as_secs_f64() * 1e3),
            ]);
        }
        let mut subs = TextTable::new(
            "Subsystem wall time",
            &["subsystem", "ticks", "total ms", "mean µs", "max µs"],
        );
        for (name, s) in self.subsystems() {
            let mean_us = if s.ticks > 0 {
                s.wall.as_micros() as f64 / s.ticks as f64
            } else {
                0.0
            };
            subs.row(vec![
                name.to_string(),
                s.ticks.to_string(),
                format!("{:.2}", s.wall.as_secs_f64() * 1e3),
                format!("{mean_us:.1}"),
                s.max_tick.as_micros().to_string(),
            ]);
        }
        vec![phases, subs]
    }

    /// Export as a chrome://tracing trace-event JSON array: one `B`/`E`
    /// pair per phase, one `X` complete event per subsystem tick (its
    /// `args` carry the simulated instant), sorted by timestamp.
    pub fn chrome_trace(&self) -> String {
        fn event(
            name: &str,
            ph: &str,
            ts: u64,
            tid: u64,
            extra: impl FnOnce(&mut BTreeMap<String, Value>),
        ) -> (u64, Value) {
            let mut obj = BTreeMap::new();
            obj.insert("name".into(), Value::String(name.to_string()));
            obj.insert("ph".into(), Value::String(ph.to_string()));
            obj.insert("ts".into(), Value::Number(ts as f64));
            obj.insert("pid".into(), Value::Number(1.0));
            obj.insert("tid".into(), Value::Number(tid as f64));
            extra(&mut obj);
            (ts, Value::Object(obj))
        }
        // tid 1 = driver phases, tid 2 = subsystem ticks.
        let mut events: Vec<(u64, Value)> = Vec::new();
        for p in &self.phases {
            events.push(event(p.name, "B", p.start_us, 1, |_| {}));
            events.push(event(p.name, "E", p.end_us, 1, |_| {}));
        }
        for t in &self.ticks {
            events.push(event(t.subsystem, "X", t.start_us, 2, |obj| {
                obj.insert("dur".into(), Value::Number(t.dur_us as f64));
                let mut args = BTreeMap::new();
                args.insert(
                    "sim_time_s".into(),
                    Value::Number(t.t.as_nanos() as f64 / 1e9),
                );
                obj.insert("args".into(), Value::Object(args));
            }));
        }
        // Stable sort: timestamps ascending, insertion order breaking
        // ties, so a B at ts X stays ahead of its E at the same ts.
        events.sort_by_key(|&(ts, _)| ts);
        Value::Array(events.into_iter().map(|(_, v)| v).collect()).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_fixture() -> RunProfile {
        RunProfile {
            phases: vec![
                PhaseSpan {
                    name: "build_world",
                    start_us: 0,
                    end_us: 1_000,
                },
                PhaseSpan {
                    name: "drive",
                    start_us: 1_000,
                    end_us: 5_000,
                },
            ],
            ticks: vec![
                TickSpan {
                    subsystem: "fluid",
                    t: SimTime::from_mins(1),
                    start_us: 1_100,
                    dur_us: 300,
                },
                TickSpan {
                    subsystem: "fluid",
                    t: SimTime::from_mins(2),
                    start_us: 2_000,
                    dur_us: 500,
                },
                TickSpan {
                    subsystem: "probes",
                    t: SimTime::from_mins(1),
                    start_us: 1_500,
                    dur_us: 200,
                },
            ],
        }
    }

    #[test]
    fn profiler_collects_nested_phases_and_ticks() {
        let mut p = Profiler::default();
        p.on_phase_start("drive");
        p.on_subsystem_tick("fluid", SimTime::from_mins(1), Duration::from_micros(40));
        p.on_phase_end("drive");
        let profile = p.finish();
        assert_eq!(profile.phases.len(), 1);
        assert_eq!(profile.phases[0].name, "drive");
        assert!(profile.phases[0].end_us >= profile.phases[0].start_us);
        assert_eq!(profile.ticks.len(), 1);
        assert_eq!(profile.ticks[0].dur_us, 40);
    }

    #[test]
    fn finish_closes_dangling_phases() {
        let mut p = Profiler::default();
        p.on_phase_start("drive");
        let profile = p.finish();
        assert_eq!(profile.phases.len(), 1);
        assert!(profile.phases[0].end_us >= profile.phases[0].start_us);
    }

    #[test]
    fn breakdown_aggregates_subsystems() {
        let profile = profile_fixture();
        let subs = profile.subsystems();
        assert_eq!(subs["fluid"].ticks, 2);
        assert_eq!(subs["fluid"].wall, Duration::from_micros(800));
        assert_eq!(subs["fluid"].max_tick, Duration::from_micros(500));
        let tables = profile.breakdown();
        assert_eq!(tables.len(), 2);
        let s = tables[1].to_string();
        assert!(s.contains("fluid"), "{s}");
        assert!(s.contains("probes"), "{s}");
    }

    #[test]
    fn chrome_trace_is_sorted_and_balanced() {
        let json = profile_fixture().chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        // Two phases -> two B and two E events; three ticks -> three X.
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        // Timestamps appear in non-decreasing order.
        let ts: Vec<u64> = json
            .split("\"ts\":")
            .skip(1)
            .map(|s| {
                s.split(|c: char| !c.is_ascii_digit())
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "unsorted ts: {ts:?}");
        // Sim-time args ride along on the tick spans.
        assert!(json.contains("\"sim_time_s\":60"));
    }
}
