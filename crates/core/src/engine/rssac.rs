//! RSSAC-002 accounting and the `.nl` served-rate series.
//!
//! Ticks at the fluid cadence, *after* [`FluidTraffic`] at every
//! instant (it is seeded later, and the engine's FIFO tie-break keeps
//! that order), consuming the offered loads the fluid subsystem
//! published to the world's [`FluidScratch`]. Packet sizes come from
//! real wire encodings — legitimate queries carry an actual EDNS0 OPT
//! pseudo-record, not a byte-count estimate. The finish step settles
//! the per-day unique-source estimates and synthesizes the pre-event
//! baseline reports the analysis layer compares against (Table 3).
//!
//! [`FluidTraffic`]: crate::engine::FluidTraffic
//! [`FluidScratch`]: crate::engine::FluidScratch

use crate::engine::metrics::keys;
use crate::engine::trace::TraceEventKind;
use crate::engine::{SimWorld, Subsystem};
use rootcast_dns::rrl::blended_suppression;
use rootcast_dns::{edns0_opt, Letter, Message, Name, RootZone, RrClass, RrType};
use rootcast_netsim::{SimDuration, SimTime};
use rootcast_rssac::RssacCollector;

/// EDNS0 UDP payload size advertised by typical resolvers.
const EDNS0_PAYLOAD: u16 = 4096;

/// The RSSAC accounting subsystem. Owns the byte-size tables (Table 3's
/// accounting) computed once from real wire encodings.
pub struct RssacAccounting {
    step: SimDuration,
    /// Per attack window: (start, query wire size, response wire size).
    attack_sizes: Vec<(SimTime, usize, usize)>,
    legit_query_size: usize,
    legit_response_size: usize,
    /// Was each letter's accounting stressed (RRL active) in its
    /// previous observed window? Indexed by `Letter as usize`, for
    /// activation edge detection.
    stressed_prev: [bool; 13],
}

impl RssacAccounting {
    /// Encode the scenario's packet-size tables from the real wire
    /// codec. `step` must equal the fluid cadence so every published
    /// scratch window is accounted exactly once.
    pub fn new(cfg: &crate::config::ScenarioConfig) -> RssacAccounting {
        let zone = RootZone::nov2015();
        let attack_sizes: Vec<(SimTime, usize, usize)> = cfg
            .attack
            .windows()
            .iter()
            .map(|w| {
                let q = Message::query(
                    0,
                    Name::parse(&w.qname).expect("valid attack qname"),
                    RrType::A,
                    RrClass::In,
                );
                let qsize = q.wire_size();
                let rsize = zone.answer(&q).wire_size();
                (w.start, qsize, rsize)
            })
            .collect();
        // Legitimate traffic carries EDNS0: a real OPT pseudo-record in
        // the additional section of both query and referral response.
        let q = Message::query(
            0,
            Name::parse("www.example.com").expect("static"),
            RrType::A,
            RrClass::In,
        );
        let mut response = zone.answer(&q);
        let mut query = q;
        query.additionals.push(edns0_opt(EDNS0_PAYLOAD));
        response.additionals.push(edns0_opt(EDNS0_PAYLOAD));
        RssacAccounting {
            step: cfg.fluid_step,
            attack_sizes,
            legit_query_size: query.wire_size(),
            legit_response_size: response.wire_size(),
            stressed_prev: [false; 13],
        }
    }

    /// The (query, response) wire sizes of the attack traffic active at
    /// `t` (the most recent window at or before it).
    pub fn attack_sizes_at(&self, t: SimTime) -> (usize, usize) {
        self.attack_sizes
            .iter()
            .rev()
            .find(|(start, _, _)| *start <= t)
            .map(|&(_, q, r)| (q, r))
            .unwrap_or((44, 488))
    }

    /// Wire size of a legitimate query (with its EDNS0 OPT record).
    pub fn legit_query_size(&self) -> usize {
        self.legit_query_size
    }

    /// Wire size of a legitimate referral response (with EDNS0 OPT).
    pub fn legit_response_size(&self) -> usize {
        self.legit_response_size
    }
}

impl Subsystem for RssacAccounting {
    fn name(&self) -> &'static str {
        "rssac"
    }

    fn initial_wakeups(&mut self) -> Vec<SimTime> {
        vec![SimTime::ZERO + self.step]
    }

    fn tick(&mut self, world: &mut SimWorld, t: SimTime) -> Vec<SimTime> {
        debug_assert_eq!(
            world.fluid.last_fluid, t,
            "accounting must run after the fluid subsystem at the same instant"
        );
        let window_start = world.fluid.window_start;
        let dt = world.fluid.dt;
        let cfg = world.cfg;
        let day = (window_start.as_secs() / 86_400) as usize;

        for (i, svc) in world.services.iter().enumerate() {
            let Some(letter) = svc.letter else { continue };
            let fault_factor = world.faults.rssac_factor(letter);
            let Some(collector) = world.rssac.get_mut(&letter) else {
                continue;
            };
            // A gapped reporting window: the letter served traffic (the
            // physics above this tick are untouched) but its measurement
            // apparatus recorded nothing. Mark the window unobserved and
            // skip both the collector and the per-day accumulators.
            if fault_factor.is_some_and(|f| f <= 0.0) {
                collector.note_window(window_start, dt, false);
                world.metrics.inc(keys::RSSAC_WINDOWS_GAPPED, 1);
                continue;
            }
            let atk_rate = cfg.attack.rate_for(letter, window_start);
            let stressed = atk_rate > 0.0;
            world.metrics.inc(keys::RSSAC_WINDOWS_OBSERVED, 1);
            if stressed && !self.stressed_prev[letter as usize] {
                world.metrics.inc(keys::RRL_ACTIVATIONS, 1);
                world.trace.record_with(t, || TraceEventKind::RrlActivated {
                    letter: (b'A' + letter as u8) as char,
                });
            }
            self.stressed_prev[letter as usize] = stressed;
            // Served per site splits proportionally between attack and
            // legit (same queues).
            let mut atk_served = 0.0;
            let mut leg_served = 0.0;
            for (s, site) in svc.sites().iter().enumerate() {
                let pass = (1.0 - site.facility_loss) * (1.0 - site.last_loss);
                let atk = world.fluid.offered_attack[i][s] * pass;
                atk_served += atk;
                leg_served += (world.fluid.offered[i][s] * pass) - atk;
            }
            // A corrupted window under-reports by the fault's factor.
            // Fault-free windows skip the multiplication entirely so
            // their accounting stays bit-identical to a plan-less run.
            if let Some(f) = fault_factor {
                atk_served *= f;
                leg_served *= f;
            }
            collector.note_window(window_start, dt, true);
            // RRL suppresses most attack responses (fixed qname,
            // heavy-hitter sources) — Verisign reported 60%.
            let suppression = blended_suppression(
                atk_rate.max(1.0),
                world.botnet.heavy_share(),
                world.botnet.n_heavy_sources(),
                5.0,
            );
            let (aq, ar) = self.attack_sizes_at(window_start);
            collector.add_fluid(
                window_start,
                dt,
                atk_served,
                atk_served * (1.0 - suppression),
                aq,
                ar,
                stressed,
            );
            collector.add_fluid(
                window_start,
                dt,
                leg_served,
                leg_served * 0.98,
                self.legit_query_size,
                self.legit_response_size,
                stressed,
            );
            if let Some(days) = world.attack_queries_by_day.get_mut(&letter) {
                if day < days.len() {
                    days[day] += atk_served * dt.as_secs_f64();
                }
            }
            if let Some(days) = world.legit_queries_by_day.get_mut(&letter) {
                if day < days.len() {
                    days[day] += leg_served * dt.as_secs_f64();
                }
            }
        }

        // The .nl served-rate series rides the same fluid windows.
        if let Some(ni) = world.nl_index {
            let svc = &world.services[ni];
            for (s, series) in world.nl_series.iter_mut().enumerate() {
                series.add_at(window_start, svc.site(s).served_qps() * dt.as_secs_f64());
            }
        }

        vec![t + self.step]
    }

    fn finish(&mut self, world: &mut SimWorld) {
        let cfg = world.cfg;
        // Unique-source estimates per reporting letter/day: baseline
        // resolvers contribute ~3-5 M distinct addresses per day
        // (Table 3's rightmost column); the attack adds the spoofed
        // cloud.
        for (&letter, days) in &world.attack_queries_by_day {
            let collector = world.rssac.get_mut(&letter).expect("reporting letter");
            let leg = &world.legit_queries_by_day[&letter];
            let baseline_legit = cfg.legit_total_qps / 13.0 * 86_400.0;
            for (day, (&atk_q, &leg_q)) in days.iter().zip(leg).enumerate() {
                // Legit uniqueness scales sublinearly with query
                // volume: more queries from the same resolvers, plus
                // new resolvers flipping in.
                let legit_unique = 2.9e6 * (leg_q / baseline_legit).max(0.01).powf(0.7);
                let attack_unique = if atk_q > 0.0 {
                    world.botnet.expected_unique_sources(atk_q)
                } else {
                    0.0
                };
                collector.add_unique_sources(day, legit_unique + attack_unique);
            }
        }

        // Synthesized 7-day baseline reports: pre-event days carry only
        // legitimate traffic; the mean report is computed analytically
        // from the same constants the simulation used.
        for &letter in world.rssac.keys() {
            let mut c = RssacCollector::new(letter, 1, 1.0);
            let day = SimDuration::from_hours(24);
            let qps = cfg.legit_total_qps * world.baseline_shares[letter as usize];
            c.add_fluid(
                SimTime::ZERO,
                day,
                qps,
                qps * 0.98,
                self.legit_query_size,
                self.legit_response_size,
                false,
            );
            c.add_unique_sources(0, if letter == Letter::A { 5.35e6 } else { 2.9e6 });
            world.rssac_baseline.insert(letter, c.report(0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::engine::instrument::NoopInstrumentation;
    use crate::engine::FluidTraffic;
    use rootcast_netsim::SimRng;

    #[test]
    fn packet_sizes_come_from_real_encodings() {
        let cfg = ScenarioConfig::small();
        let acct = RssacAccounting::new(&cfg);
        // The OPT pseudo-record is exactly 11 wire bytes, so the legit
        // sizes are the bare encodings plus 11 — now measured, not
        // estimated.
        let q = Message::query(
            0,
            Name::parse("www.example.com").unwrap(),
            RrType::A,
            RrClass::In,
        );
        let zone = RootZone::nov2015();
        assert_eq!(acct.legit_query_size(), q.wire_size() + 11);
        assert_eq!(acct.legit_response_size(), zone.answer(&q).wire_size() + 11);
        // Attack sizes track the schedule's windows; before the first
        // window the paper's 44/488-byte defaults apply.
        assert_eq!(acct.attack_sizes_at(SimTime::ZERO), (44, 488));
        let first = cfg.attack.windows()[0].start;
        let (aq, ar) = acct.attack_sizes_at(first);
        assert!(aq > 0 && ar > aq, "attack sizes ({aq}, {ar})");
    }

    #[test]
    fn accounting_consumes_fluid_windows() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(30);
        cfg.pipeline.horizon = cfg.horizon;
        let rngf = SimRng::new(cfg.seed);
        let mut obs = NoopInstrumentation;
        let mut world = SimWorld::build(&cfg, &rngf, &mut obs).expect("world builds");
        let mut fluid = FluidTraffic::new(cfg.fluid_step);
        let mut acct = RssacAccounting::new(&cfg);

        // Two fluid windows, each followed by its accounting tick.
        for m in 1..=2u64 {
            let t = SimTime::from_mins(m);
            fluid.tick(&mut world, t);
            let next = acct.tick(&mut world, t);
            assert_eq!(next, vec![t + cfg.fluid_step]);
        }
        // No attack in the first half hour, so day-0 legit queries
        // accumulated but attack queries did not.
        for (&letter, days) in &world.legit_queries_by_day {
            assert!(days[0] > 0.0, "{letter} accounted no legit queries");
            assert_eq!(world.attack_queries_by_day[&letter][0], 0.0);
        }
        // The .nl series accumulated served queries too.
        let total: f64 = world
            .nl_series
            .iter()
            .map(|s| s.values().iter().sum::<f64>())
            .sum();
        assert!(total > 0.0, ".nl series stayed empty");

        // The finish step settles unique sources and the baseline.
        acct.finish(&mut world);
        assert_eq!(world.rssac_baseline.len(), world.rssac.len());
        let a = &world.rssac_baseline[&Letter::A];
        assert!(a.unique_sources > 0.0);
    }
}
