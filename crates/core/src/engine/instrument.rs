//! Run instrumentation: an observer trait the engine and subsystems
//! call into, plus the default collector behind [`RunStats`].
//!
//! Hooks are no-ops by default, so a custom observer implements only
//! what it cares about. Instrumentation lives *outside* simulation
//! state — observers see the run but cannot influence it, so a run's
//! outputs are identical whether or not anything is listening.

use crate::engine::faults::InjectedFault;
use rootcast_anycast::RoutingChanges;
use rootcast_dns::Letter;
use rootcast_netsim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::time::Duration;

/// Observer hooks for a simulation run.
///
/// All methods have empty default bodies. Wall-clock durations are
/// host-side measurements (they vary run to run); everything else is
/// deterministic simulation state.
pub trait Instrumentation {
    /// A driver phase (`build_world`, `drive`, `finalize`) began.
    /// Phases nest like a stack; every start is matched by an
    /// [`on_phase_end`](Instrumentation::on_phase_end) with the same name.
    fn on_phase_start(&mut self, _phase: &'static str) {}

    /// The innermost open driver phase ended.
    fn on_phase_end(&mut self, _phase: &'static str) {}

    /// A subsystem finished its tick at simulated time `t`, having
    /// consumed `wall` of host time.
    fn on_subsystem_tick(&mut self, _subsystem: &'static str, _t: SimTime, _wall: Duration) {}

    /// Per-letter load for the fluid window ending at `t`: total
    /// offered q/s across the letter's sites and the fraction served
    /// after facility and ingress losses.
    fn on_letter_load(
        &mut self,
        _t: SimTime,
        _letter: Letter,
        _offered_qps: f64,
        _served_qps: f64,
    ) {
    }

    /// Ingress queue depth (as queueing delay) of one site after the
    /// fluid window ending at `t`. Only called for non-empty queues.
    fn on_queue_depth(&mut self, _t: SimTime, _letter: Letter, _site: &str, _delay: SimDuration) {}

    /// A stress policy changed routing (withdrawal / re-announcement).
    fn on_policy_transition(&mut self, _t: SimTime, _letter: Letter, _changes: &RoutingChanges) {}

    /// The fault injector applied a transition (injection or recovery)
    /// from the scenario's [`FaultPlan`](crate::engine::FaultPlan).
    fn on_fault(&mut self, _t: SimTime, _fault: &InjectedFault) {}
}

/// The do-nothing observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopInstrumentation;

impl Instrumentation for NoopInstrumentation {}

/// Wall-time and counter summary of one subsystem over a run.
#[derive(Debug, Default, Clone)]
pub struct SubsystemStats {
    pub ticks: u64,
    pub wall: Duration,
}

/// Aggregated run statistics, exposed on
/// [`SimOutput`](crate::sim::SimOutput) by [`run`](crate::sim::run).
#[derive(Debug, Default, Clone)]
pub struct RunStats {
    /// Host wall time per driver phase (`build_world`, `drive`,
    /// `finalize`), accumulated over matched start/end pairs.
    pub phases: BTreeMap<&'static str, Duration>,
    /// Per-subsystem tick counts and host wall time.
    pub subsystems: BTreeMap<&'static str, SubsystemStats>,
    /// Peak offered load seen by any single letter, q/s.
    pub peak_offered_qps: f64,
    /// Lowest served/offered ratio seen by any letter in any window.
    pub worst_served_ratio: f64,
    /// Deepest ingress queue seen, as (letter, site code, delay).
    pub deepest_queue: Option<(Letter, String, SimDuration)>,
    /// Total routing transitions driven by stress policies.
    pub policy_transitions: u64,
    /// Every fault transition the injector applied, in order — the
    /// run's injected-fault ledger.
    pub faults: Vec<InjectedFault>,
}

impl RunStats {
    /// Total host wall time across all subsystem ticks.
    pub fn total_wall(&self) -> Duration {
        self.subsystems.values().map(|s| s.wall).sum()
    }

    /// Total ticks across all subsystems.
    pub fn total_ticks(&self) -> u64 {
        self.subsystems.values().map(|s| s.ticks).sum()
    }
}

/// The default observer: accumulates [`RunStats`].
#[derive(Debug, Clone)]
pub struct StatsCollector {
    stats: RunStats,
    /// Open driver phases: (name, start instant).
    open_phases: Vec<(&'static str, std::time::Instant)>,
}

impl Default for StatsCollector {
    fn default() -> Self {
        StatsCollector {
            stats: RunStats {
                worst_served_ratio: 1.0,
                ..RunStats::default()
            },
            open_phases: Vec::new(),
        }
    }
}

impl StatsCollector {
    pub fn finish(self) -> RunStats {
        self.stats
    }
}

impl Instrumentation for StatsCollector {
    fn on_phase_start(&mut self, phase: &'static str) {
        self.open_phases.push((phase, std::time::Instant::now()));
    }

    fn on_phase_end(&mut self, phase: &'static str) {
        if let Some((name, started)) = self.open_phases.pop() {
            debug_assert_eq!(name, phase, "phase markers must nest");
            *self.stats.phases.entry(name).or_default() += started.elapsed();
        }
    }

    fn on_subsystem_tick(&mut self, subsystem: &'static str, _t: SimTime, wall: Duration) {
        let s = self.stats.subsystems.entry(subsystem).or_default();
        s.ticks += 1;
        s.wall += wall;
    }

    fn on_letter_load(&mut self, _t: SimTime, _letter: Letter, offered_qps: f64, served_qps: f64) {
        if offered_qps > self.stats.peak_offered_qps {
            self.stats.peak_offered_qps = offered_qps;
        }
        if offered_qps > 0.0 {
            let ratio = served_qps / offered_qps;
            if ratio < self.stats.worst_served_ratio {
                self.stats.worst_served_ratio = ratio;
            }
        }
    }

    fn on_queue_depth(&mut self, _t: SimTime, letter: Letter, site: &str, delay: SimDuration) {
        let deeper = match &self.stats.deepest_queue {
            Some((_, _, best)) => delay > *best,
            None => true,
        };
        if deeper {
            self.stats.deepest_queue = Some((letter, site.to_string(), delay));
        }
    }

    fn on_policy_transition(&mut self, _t: SimTime, _letter: Letter, changes: &RoutingChanges) {
        self.stats.policy_transitions += changes.len() as u64;
    }

    fn on_fault(&mut self, _t: SimTime, fault: &InjectedFault) {
        self.stats.faults.push(fault.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_accumulates_ticks_and_extremes() {
        let mut c = StatsCollector::default();
        c.on_subsystem_tick("fluid", SimTime::from_mins(1), Duration::from_micros(5));
        c.on_subsystem_tick("fluid", SimTime::from_mins(2), Duration::from_micros(7));
        c.on_subsystem_tick("probes", SimTime::from_mins(1), Duration::from_micros(3));
        c.on_letter_load(SimTime::from_mins(1), Letter::K, 1000.0, 900.0);
        c.on_letter_load(SimTime::from_mins(2), Letter::K, 5000.0, 1000.0);
        c.on_queue_depth(
            SimTime::from_mins(2),
            Letter::K,
            "AMS",
            SimDuration::from_millis(1500),
        );
        c.on_queue_depth(
            SimTime::from_mins(3),
            Letter::K,
            "NRT",
            SimDuration::from_millis(200),
        );
        let stats = c.finish();
        assert_eq!(stats.subsystems["fluid"].ticks, 2);
        assert_eq!(stats.subsystems["probes"].ticks, 1);
        assert_eq!(stats.total_ticks(), 3);
        assert_eq!(stats.subsystems["fluid"].wall, Duration::from_micros(12));
        assert_eq!(stats.peak_offered_qps, 5000.0);
        assert!((stats.worst_served_ratio - 0.2).abs() < 1e-12);
        let (l, site, d) = stats.deepest_queue.unwrap();
        assert_eq!((l, site.as_str()), (Letter::K, "AMS"));
        assert_eq!(d, SimDuration::from_millis(1500));
    }

    #[test]
    fn collector_accumulates_phase_wall_time() {
        let mut c = StatsCollector::default();
        c.on_phase_start("drive");
        c.on_phase_end("drive");
        c.on_phase_start("drive");
        c.on_phase_end("drive");
        let stats = c.finish();
        assert_eq!(stats.phases.len(), 1);
        assert!(stats.phases.contains_key("drive"));
    }

    #[test]
    fn noop_observer_compiles_all_hooks() {
        let mut n = NoopInstrumentation;
        n.on_subsystem_tick("x", SimTime::ZERO, Duration::ZERO);
        n.on_letter_load(SimTime::ZERO, Letter::A, 1.0, 1.0);
        n.on_queue_depth(SimTime::ZERO, Letter::A, "AMS", SimDuration::ZERO);
        n.on_fault(
            SimTime::ZERO,
            &InjectedFault {
                at: SimTime::ZERO,
                action: crate::engine::faults::FaultAction::Inject,
                description: "rssac-gap H".into(),
            },
        );
    }
}
