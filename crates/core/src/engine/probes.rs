//! The Atlas probing wheel.
//!
//! Each (VP, letter) pair probes on its own phase of the letter's
//! probing interval (4 min; 30 min for A-root, §2.4.1). The wheel is
//! precomputed per minute slot — the full scenario would otherwise
//! evaluate ~350 M phase checks — and each tick fans out per letter on
//! rayon. Every (letter, minute) pair draws from its own named RNG
//! stream and results are merged in letter order, so outputs are
//! bit-identical at any thread count.

use crate::engine::faults::ProbeAction;
use crate::engine::metrics::keys;
use crate::engine::{SimWorld, Subsystem};
use rayon::prelude::*;
use rootcast_anycast::AnycastService;
use rootcast_atlas::{
    clean_outcome, execute_probe, execute_probe_fused, ChaosTarget, CleanObs, FastObs, IndexedView,
    TargetView, VpId,
};
use rootcast_dns::Letter;
use rootcast_netsim::{SimDuration, SimTime};

/// Adapter exposing an [`AnycastService`] as a probe target.
pub(crate) struct ServiceTarget<'a> {
    pub svc: &'a AnycastService,
}

impl ChaosTarget for ServiceTarget<'_> {
    fn letter(&self) -> Letter {
        self.svc.letter.expect("root service has a letter")
    }

    fn view(&self, asn: rootcast_topology::AsId, client_hash: u64) -> Option<TargetView> {
        let pv = self.svc.probe_view(asn, client_hash)?;
        Some(TargetView::new(
            self.svc.site(pv.site).spec.code.clone(),
            pv.server,
            pv.rtt,
            pv.drop_prob,
        ))
    }
}

/// The probing subsystem: a wheel of (VP index, letter index) pairs per
/// minute slot, cycling every lcm(intervals) minutes.
///
/// Probes execute on the fused path by default: the service's catchment
/// view is resolved straight to the pipeline's site *index* (via a
/// per-letter map precomputed at construction) and recorded without the
/// wire-format string round trip. The
/// [`reference_kernels`](crate::config::ScenarioConfig::reference_kernels)
/// flag selects the legacy `execute_probe` → `clean_outcome` → `record`
/// path instead; both draw the identical RNG sequence and produce
/// bit-identical pipelines.
pub struct ProbeWheel {
    wheel: Vec<Vec<(u32, usize)>>,
    wheel_period: usize,
    /// Per letter index: service site index → pipeline site index.
    site_map: Vec<Vec<u16>>,
    /// Use the string-roundtrip reference probe path.
    reference: bool,
}

impl ProbeWheel {
    /// Precompute the wheel for the world's cleaned fleet. VPs excluded
    /// by the cleaning stage never probe.
    pub fn new(world: &SimWorld) -> ProbeWheel {
        let cfg = world.cfg;
        assert_eq!(
            cfg.probe_interval.as_secs() % 60,
            0,
            "probe interval must be whole minutes"
        );
        assert_eq!(cfg.a_probe_interval.as_secs() % 60, 0);
        let interval_minutes = cfg.probe_interval.as_secs() / 60;
        let a_interval_minutes = cfg.a_probe_interval.as_secs() / 60;
        let wheel_period = lcm(interval_minutes.max(1), a_interval_minutes.max(1)) as usize;
        let excluded = world.cleaning.excluded_set();
        let mut wheel: Vec<Vec<(u32, usize)>> = vec![Vec::new(); wheel_period];
        for vp in world.fleet.iter() {
            if excluded.contains(&vp.id) {
                continue;
            }
            for (i, &letter) in world.letters.iter().enumerate() {
                let interval = if letter == Letter::A {
                    a_interval_minutes
                } else {
                    interval_minutes
                };
                let phase = (u64::from(vp.id.0)
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(letter as u64 * 7))
                    % interval;
                let mut slot = phase as usize;
                while slot < wheel_period {
                    wheel[slot].push((vp.id.0, i));
                    slot += interval as usize;
                }
            }
        }
        // Pipeline site indices in service-site order, resolved once so
        // the fused path never touches an airport-code string.
        let site_map = world
            .letters
            .iter()
            .enumerate()
            .map(|(i, &letter)| {
                let data = world.pipeline.letter(letter);
                world.services[i]
                    .sites()
                    .iter()
                    .map(|s| {
                        data.site_idx(&s.spec.code)
                            .expect("pipeline registered every service site")
                    })
                    .collect()
            })
            .collect();
        ProbeWheel {
            wheel,
            wheel_period,
            site_map,
            reference: cfg.reference_kernels,
        }
    }

    /// Number of minute slots before the wheel repeats.
    pub fn period(&self) -> usize {
        self.wheel_period
    }

    /// The (VP, letter index) pairs due in minute `m`.
    pub fn due(&self, minute: u64) -> &[(u32, usize)] {
        &self.wheel[(minute as usize) % self.wheel_period]
    }
}

impl Subsystem for ProbeWheel {
    fn name(&self) -> &'static str {
        "probes"
    }

    fn initial_wakeups(&mut self) -> Vec<SimTime> {
        vec![SimTime::ZERO + SimDuration::from_mins(1)]
    }

    fn tick(&mut self, world: &mut SimWorld, t: SimTime) -> Vec<SimTime> {
        let minute = t.as_secs() / 60;
        // Partition this slot's work per letter, preserving VP order.
        let mut per_letter: Vec<Vec<u32>> = vec![Vec::new(); world.letters.len()];
        for &(vp_id, i) in self.due(minute) {
            per_letter[i].push(vp_id);
        }
        let (services, fleet, letters, rngf, faults) = (
            &world.services,
            &world.fleet,
            &world.letters,
            world.rng_factory,
            &world.faults,
        );
        // `None` observations are missed probes: a dropped-out VP never
        // probes (no RNG draw), a firmware-downgraded VP probes (same
        // draws as a healthy run) but its measurement is unusable.
        if self.reference {
            // Reference path: textual CHAOS identities, parsed back by
            // the cleaning stage, recorded by airport code.
            let results: Vec<Vec<(VpId, Option<CleanObs>)>> = (0..letters.len())
                .into_par_iter()
                .map(|i| {
                    let letter = letters[i];
                    let mut rng = rngf.indexed_stream(&format!("probes-{letter}"), minute);
                    let target = ServiceTarget { svc: &services[i] };
                    per_letter[i]
                        .iter()
                        .map(|&vp_id| match faults.probe_action(vp_id, letter) {
                            ProbeAction::Skip => (VpId(vp_id), None),
                            ProbeAction::Discard => {
                                let vp = fleet.vp(VpId(vp_id));
                                let _ = execute_probe(vp, &target, t, &mut rng);
                                (vp.id, None)
                            }
                            ProbeAction::Normal => {
                                let vp = fleet.vp(VpId(vp_id));
                                let m = execute_probe(vp, &target, t, &mut rng);
                                (vp.id, Some(clean_outcome(&m)))
                            }
                        })
                        .collect()
                })
                .collect();
            for (i, letter_obs) in results.into_iter().enumerate() {
                let letter = world.letters[i];
                world
                    .metrics
                    .inc(keys::PROBES_REFERENCE, letter_obs.len() as u64);
                for (vp, obs) in letter_obs {
                    let recorded = match obs {
                        Some(obs) => world.pipeline.record(vp, letter, t, &obs),
                        None => world.pipeline.note_missed(letter, t),
                    };
                    if let Err(err) = recorded {
                        // The wheel only probes letters the world
                        // registered, so this is a programmer error, not
                        // data to skip.
                        debug_assert!(false, "pipeline rejected wheel observation: {err}");
                        let _ = err;
                    }
                }
            }
        } else {
            // Fused path: catchment views resolved straight to pipeline
            // site indices; same RNG draws (a Discard probe still
            // executes), same observations, no strings.
            let site_map = &self.site_map;
            let results: Vec<Vec<(VpId, Option<FastObs>)>> = (0..letters.len())
                .into_par_iter()
                .map(|i| {
                    let letter = letters[i];
                    let mut rng = rngf.indexed_stream(&format!("probes-{letter}"), minute);
                    let svc = &services[i];
                    let sites = &site_map[i];
                    per_letter[i]
                        .iter()
                        .map(|&vp_id| match faults.probe_action(vp_id, letter) {
                            ProbeAction::Skip => (VpId(vp_id), None),
                            ProbeAction::Discard => {
                                let vp = fleet.vp(VpId(vp_id));
                                let view = svc.probe_view(vp.asn, vp.client_hash()).map(|pv| {
                                    IndexedView::new(
                                        sites[pv.site],
                                        pv.server,
                                        pv.rtt,
                                        pv.drop_prob,
                                    )
                                });
                                let _ = execute_probe_fused(vp, view, &mut rng);
                                (vp.id, None)
                            }
                            ProbeAction::Normal => {
                                let vp = fleet.vp(VpId(vp_id));
                                let view = svc.probe_view(vp.asn, vp.client_hash()).map(|pv| {
                                    IndexedView::new(
                                        sites[pv.site],
                                        pv.server,
                                        pv.rtt,
                                        pv.drop_prob,
                                    )
                                });
                                (vp.id, Some(execute_probe_fused(vp, view, &mut rng)))
                            }
                        })
                        .collect()
                })
                .collect();
            for (i, letter_obs) in results.into_iter().enumerate() {
                let letter = world.letters[i];
                world
                    .metrics
                    .inc(keys::PROBES_FUSED, letter_obs.len() as u64);
                for (vp, obs) in letter_obs {
                    let recorded = match obs {
                        Some(obs) => world.pipeline.record_fast(vp, letter, t, obs),
                        None => world.pipeline.note_missed(letter, t),
                    };
                    if let Err(err) = recorded {
                        debug_assert!(false, "pipeline rejected wheel observation: {err}");
                        let _ = err;
                    }
                }
            }
        }
        vec![t + SimDuration::from_mins(1)]
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::engine::instrument::NoopInstrumentation;
    use rootcast_netsim::SimRng;

    #[test]
    fn lcm_gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(4, 30), 60);
        assert_eq!(lcm(1, 7), 7);
    }

    #[test]
    fn wheel_covers_every_pair_once_per_interval() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(10);
        cfg.pipeline.horizon = cfg.horizon;
        let rngf = SimRng::new(cfg.seed);
        let mut obs = NoopInstrumentation;
        let world = SimWorld::build(&cfg, &rngf, &mut obs).expect("world builds");
        let wheel = ProbeWheel::new(&world);
        // lcm(4, 30) minutes.
        assert_eq!(wheel.period(), 60);
        let kept = world.cleaning.kept_count();
        // Across one full period every kept VP hits every letter at the
        // letter's own frequency: 60/4 for the 12 non-A letters, 60/30
        // for A.
        let total: usize = (0..60).map(|m| wheel.due(m).len()).sum();
        assert_eq!(total, kept * (12 * 15 + 2));
        // A single interval of 4 minutes contains each (VP, non-A
        // letter) pair exactly once.
        let a_idx = world
            .letters
            .iter()
            .position(|&l| l == Letter::A)
            .expect("A present");
        let mut non_a = 0;
        for m in 0..4 {
            non_a += wheel.due(m).iter().filter(|&&(_, i)| i != a_idx).count();
        }
        assert_eq!(non_a, kept * 12);
    }

    #[test]
    fn fused_and_reference_wheels_are_bit_identical() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(10);
        cfg.pipeline.horizon = cfg.horizon;
        let rngf = SimRng::new(cfg.seed);

        let run = |reference: bool| {
            let mut cfg = cfg.clone();
            cfg.reference_kernels = reference;
            let mut obs = NoopInstrumentation;
            let mut world = SimWorld::build(&cfg, &rngf, &mut obs).expect("world builds");
            let mut wheel = ProbeWheel::new(&world);
            for m in 1..=8u64 {
                wheel.tick(&mut world, SimTime::from_mins(m));
            }
            world.pipeline.finalize();
            (world.letters.clone(), world.pipeline)
        };
        let (letters, fused) = run(false);
        let (_, reference) = run(true);
        for &l in &letters {
            let (a, b) = (fused.letter(l), reference.letter(l));
            assert_eq!(a.success.values(), b.success.values(), "letter {l}");
            assert_eq!(a.errors.values(), b.errors.values(), "letter {l}");
            assert_eq!(a.raster, b.raster, "letter {l}");
            assert_eq!(a.observed_probes, b.observed_probes, "letter {l}");
            assert_eq!(a.missed_probes, b.missed_probes, "letter {l}");
            for (sa, sb) in a.site_counts.iter().zip(&b.site_counts) {
                assert_eq!(sa.values(), sb.values(), "letter {l}");
            }
        }
    }

    #[test]
    fn probe_results_identical_across_thread_counts() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(10);
        cfg.pipeline.horizon = cfg.horizon;
        let rngf = SimRng::new(cfg.seed);

        let run_minutes = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| {
                let mut obs = NoopInstrumentation;
                let mut world = SimWorld::build(&cfg, &rngf, &mut obs).expect("world builds");
                let mut wheel = ProbeWheel::new(&world);
                for m in 1..=8u64 {
                    wheel.tick(&mut world, SimTime::from_mins(m));
                }
                world.pipeline.finalize();
                world
                    .letters
                    .iter()
                    .map(|&l| world.pipeline.letter(l).success.values().to_vec())
                    .collect::<Vec<_>>()
            })
        };
        assert_eq!(run_minutes(1), run_minutes(4));
    }
}
