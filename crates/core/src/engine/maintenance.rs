//! Background maintenance churn.
//!
//! At exponentially distributed instants a random announced *small*
//! site of a random letter goes down for 10 minutes (operator
//! maintenance). Operators drain big sites far more carefully, so
//! maintenance is restricted to sites with small catchments — this
//! keeps the quiet-period flip counts at the low level Figure 8 shows
//! outside the events. Withdrawals and re-announcements are observed by
//! the letter's route collector like any other routing change.

use crate::engine::metrics::keys;
use crate::engine::{SimWorld, Subsystem};
use rand::Rng;
use rootcast_anycast::SiteIdx;
use rootcast_netsim::rng::exp_sample;
use rootcast_netsim::{ChaCha8Rng, SimDuration, SimTime};

/// How long one maintenance window keeps a site withdrawn.
const MAINTENANCE_DOWNTIME: SimDuration = SimDuration::from_mins(10);

/// The maintenance-churn subsystem.
pub struct MaintenanceChurn {
    rng: ChaCha8Rng,
    mean: Option<SimDuration>,
    /// Withdrawn sites awaiting re-announcement: (due, service, site).
    pending: Vec<(SimTime, usize, SiteIdx)>,
    next_churn: Option<SimTime>,
}

impl MaintenanceChurn {
    /// `rng` must be a dedicated stream (the driver uses
    /// `"maintenance"`); `mean` of `None` disables churn entirely.
    pub fn new(mut rng: ChaCha8Rng, mean: Option<SimDuration>) -> MaintenanceChurn {
        let next_churn = mean.map(|m| {
            SimTime::ZERO + SimDuration::from_secs_f64(exp_sample(&mut rng, 1.0 / m.as_secs_f64()))
        });
        MaintenanceChurn {
            rng,
            mean,
            pending: Vec::new(),
            next_churn,
        }
    }

    /// Sites currently withdrawn for maintenance.
    pub fn in_maintenance(&self) -> &[(SimTime, usize, SiteIdx)] {
        &self.pending
    }

    fn churn(&mut self, world: &mut SimWorld, t: SimTime) {
        let n_ases = world.graph.len();
        let svc_idx = self.rng.gen_range(0..world.letters.len());
        let svc = &mut world.services[svc_idx];
        let sizes = svc.rib().catchment_sizes(svc.sites().len());
        let limit = (n_ases as f64 * 0.10) as usize;
        let announced: Vec<SiteIdx> = svc
            .announced_sites()
            .into_iter()
            .filter(|&i| sizes[i] <= limit)
            .collect();
        if announced.is_empty() {
            return;
        }
        let site = announced[self.rng.gen_range(0..announced.len())];
        let graph = &world.graph;
        if world.services[svc_idx].set_announced(site, false, graph) {
            world.metrics.inc(keys::MAINTENANCE_WITHDRAWALS, 1);
            world.observe_routes(t, svc_idx);
            self.pending.push((t + MAINTENANCE_DOWNTIME, svc_idx, site));
        }
    }
}

impl Subsystem for MaintenanceChurn {
    fn name(&self) -> &'static str {
        "maintenance"
    }

    fn initial_wakeups(&mut self) -> Vec<SimTime> {
        self.next_churn.into_iter().collect()
    }

    fn tick(&mut self, world: &mut SimWorld, t: SimTime) -> Vec<SimTime> {
        let mut wakeups = Vec::new();
        // Re-announce any site whose maintenance window ends now.
        let due: Vec<(usize, SiteIdx)> = self
            .pending
            .iter()
            .filter(|&&(end, _, _)| end == t)
            .map(|&(_, svc, site)| (svc, site))
            .collect();
        self.pending.retain(|&(end, _, _)| end != t);
        for (svc_idx, site) in due {
            let graph = &world.graph;
            if world.services[svc_idx].set_announced(site, true, graph) {
                world.metrics.inc(keys::MAINTENANCE_REANNOUNCEMENTS, 1);
                world.observe_routes(t, svc_idx);
            }
        }
        // A churn draw scheduled for this instant?
        if self.next_churn == Some(t) {
            self.churn(world, t);
            if let Some(&(end, _, _)) = self.pending.last() {
                if end > t {
                    wakeups.push(end);
                }
            }
            self.next_churn = self.mean.map(|m| {
                t + SimDuration::from_secs_f64(exp_sample(&mut self.rng, 1.0 / m.as_secs_f64()))
            });
            if let Some(next) = self.next_churn {
                wakeups.push(next);
            }
        }
        wakeups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::engine::instrument::NoopInstrumentation;
    use rootcast_netsim::SimRng;

    /// Run churn ticks until one withdrawal lands, returning the
    /// (time, service, site) of the withdrawal and the world.
    fn first_withdrawal(
        cfg: &ScenarioConfig,
        rngf: &SimRng,
    ) -> (Vec<(SimTime, usize, SiteIdx)>, Vec<SimTime>) {
        let mut obs = NoopInstrumentation;
        let mut world = SimWorld::build(cfg, rngf, &mut obs).expect("world builds");
        let mut churn = MaintenanceChurn::new(rngf.stream("maintenance"), cfg.maintenance_mean);
        let mut schedule = Vec::new();
        let mut t = churn.initial_wakeups()[0];
        for _ in 0..50 {
            schedule.push(t);
            let wakeups = churn.tick(&mut world, t);
            if !churn.in_maintenance().is_empty() {
                return (churn.in_maintenance().to_vec(), schedule);
            }
            t = *wakeups.last().expect("churn reschedules itself");
        }
        panic!("no withdrawal in 50 churn draws");
    }

    #[test]
    fn withdraw_and_reannounce_are_observed_by_the_collector() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_hours(12);
        cfg.pipeline.horizon = cfg.horizon;
        let rngf = SimRng::new(cfg.seed);
        let mut obs = NoopInstrumentation;
        let mut world = SimWorld::build(&cfg, &rngf, &mut obs).expect("world builds");
        let mut churn = MaintenanceChurn::new(rngf.stream("maintenance"), cfg.maintenance_mean);

        // Tick the churn schedule until a withdrawal happens.
        let mut t = churn.initial_wakeups()[0];
        let mut wakeups;
        loop {
            wakeups = churn.tick(&mut world, t);
            if !churn.in_maintenance().is_empty() {
                break;
            }
            t = *wakeups.last().expect("churn reschedules itself");
        }
        let (end, svc_idx, site) = churn.in_maintenance()[0];
        assert_eq!(end, t + SimDuration::from_mins(10));
        assert!(!world.services[svc_idx].site(site).announced);
        let letter = world.services[svc_idx].letter.expect("root service");
        let events_after_withdraw = world.collectors[&letter].log().len();
        assert!(
            events_after_withdraw > 0,
            "collector saw no routing events after a withdrawal"
        );

        // The wakeup list includes the re-announce instant; ticking
        // there restores the site and the collector sees it too.
        assert!(wakeups.contains(&end));
        churn.tick(&mut world, end);
        assert!(churn.in_maintenance().is_empty());
        assert!(world.services[svc_idx].site(site).announced);
        assert!(world.collectors[&letter].log().len() > events_after_withdraw);
    }

    #[test]
    fn schedule_is_identical_across_same_seed_runs() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_hours(12);
        cfg.pipeline.horizon = cfg.horizon;
        let rngf_a = SimRng::new(cfg.seed);
        let rngf_b = SimRng::new(cfg.seed);
        let (withdrawn_a, schedule_a) = first_withdrawal(&cfg, &rngf_a);
        let (withdrawn_b, schedule_b) = first_withdrawal(&cfg, &rngf_b);
        assert_eq!(schedule_a, schedule_b);
        assert_eq!(withdrawn_a, withdrawn_b);
    }

    #[test]
    fn disabled_churn_never_wakes() {
        let rngf = SimRng::new(7);
        let mut churn = MaintenanceChurn::new(rngf.stream("maintenance"), None);
        assert!(churn.initial_wakeups().is_empty());
    }
}
