//! The subsystem engine.
//!
//! A scenario run is a set of [`Subsystem`]s ticking against one shared
//! [`SimWorld`] under a deterministic scheduler. Each subsystem asks for
//! absolute wake-up instants; the engine pops them in time order,
//! breaking ties by scheduling order (FIFO), so the interleaving —
//! and therefore every output — is a pure function of the scenario
//! seed.
//!
//! The six production subsystems mirror the activities the paper's
//! driver interleaves:
//!
//! * [`FluidTraffic`] — per-minute fluid windows: offered load over
//!   current catchments, shared-facility links, ingress queues, and
//!   stress policies (per-letter fan-out runs on rayon).
//! * [`ProbeWheel`] — the Atlas fleet's probing wheel, fanned out
//!   per letter with one RNG stream per (letter, minute).
//! * [`ResolverRefresh`] — recursive resolvers re-weighting letter
//!   preferences from current RTT/loss (§3.2.2's letter flips).
//! * [`MaintenanceChurn`] — background operator maintenance noise.
//! * [`RssacAccounting`] — RSSAC byte/query accounting and the `.nl`
//!   served-rate series, reading the fluid scratchpad.
//! * [`FaultInjector`] — scheduled, seed-deterministic fault injection
//!   from the scenario's [`FaultPlan`] (site crashes, monitoring gaps,
//!   probe dropout waves, collector blackouts). With an empty plan it
//!   never wakes and the run is bit-identical to one without it.

pub mod faults;
pub mod fluid;
pub mod instrument;
pub mod maintenance;
pub mod metrics;
pub mod probes;
pub mod profile;
pub mod resolvers;
pub mod rssac;
pub mod trace;
pub mod world;

pub use faults::{
    FaultAction, FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultState, InjectedFault,
    ProbeAction,
};
pub use fluid::FluidTraffic;
pub use instrument::{Instrumentation, NoopInstrumentation, RunStats, StatsCollector};
pub use maintenance::MaintenanceChurn;
pub use metrics::{engine_registry, render_metrics};
pub use probes::ProbeWheel;
pub use profile::{PhaseSpan, Profiler, RunProfile, SubsystemProfile, TickSpan};
pub use resolvers::ResolverRefresh;
pub use rssac::RssacAccounting;
pub use trace::{EventTrace, TraceConfig, TraceEvent, TraceEventKind, TraceSnapshot};
pub use world::{FluidScratch, SimWorld, Substrate};

use rootcast_netsim::{EventQueue, SimTime};
use std::time::Instant;

/// One engine-driven activity.
///
/// A subsystem owns its private state (wheels, schedules, byte tables)
/// and mutates shared state only through the [`SimWorld`] passed to
/// [`tick`](Subsystem::tick). Wake-ups are absolute instants; returning
/// an empty vector parks the subsystem for the rest of the run.
pub trait Subsystem {
    /// Stable name, used for instrumentation and diagnostics.
    fn name(&self) -> &'static str;

    /// Wake-ups to seed the schedule with at the start of the run.
    fn initial_wakeups(&mut self) -> Vec<SimTime>;

    /// Handle the wake-up at `t`; return future wake-ups to schedule.
    /// Wake-ups at or before `t` are rejected by the engine (they
    /// would stall virtual time).
    fn tick(&mut self, world: &mut SimWorld, t: SimTime) -> Vec<SimTime>;

    /// Called once after the horizon, in subsystem order, for end-of-run
    /// settlement (e.g. the RSSAC unique-source estimates). Default: no-op.
    fn finish(&mut self, world: &mut SimWorld) {
        let _ = world;
    }
}

/// Drive `subsystems` against `world` until `horizon`.
///
/// Subsystems scheduled for the same instant tick in FIFO order of
/// scheduling, which makes the seeding order in `subsystems` the
/// tie-break for the first round and self-rescheduling stable after
/// that: a subsystem listed before another, waking at the same times,
/// always ticks first.
pub fn drive(world: &mut SimWorld, subsystems: &mut [Box<dyn Subsystem>], horizon: SimTime) {
    let mut queue: EventQueue<usize> = EventQueue::new();
    for (idx, sub) in subsystems.iter_mut().enumerate() {
        for w in sub.initial_wakeups() {
            if w <= horizon {
                queue.schedule(w, idx);
            }
        }
    }
    while let Some((t, idx)) = queue.pop_until(horizon) {
        let sub = &mut subsystems[idx];
        let started = Instant::now();
        let wakeups = sub.tick(world, t);
        world
            .obs
            .on_subsystem_tick(sub.name(), t, started.elapsed());
        for w in wakeups {
            assert!(w > t, "{} scheduled a non-advancing wakeup", sub.name());
            if w <= horizon {
                queue.schedule(w, idx);
            }
        }
    }
    for sub in subsystems.iter_mut() {
        sub.finish(world);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use rootcast_netsim::{SimDuration, SimRng};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A test subsystem that logs its ticks into a shared trace.
    struct Tracer {
        name: &'static str,
        period: SimDuration,
        trace: Rc<RefCell<Vec<(&'static str, SimTime)>>>,
    }

    impl Subsystem for Tracer {
        fn name(&self) -> &'static str {
            self.name
        }
        fn initial_wakeups(&mut self) -> Vec<SimTime> {
            vec![SimTime::ZERO + self.period]
        }
        fn tick(&mut self, _world: &mut SimWorld, t: SimTime) -> Vec<SimTime> {
            self.trace.borrow_mut().push((self.name, t));
            vec![t + self.period]
        }
    }

    #[test]
    fn ties_resolve_in_seeding_order_and_horizon_cuts_off() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(3);
        cfg.pipeline.horizon = cfg.horizon;
        let rngf = SimRng::new(1);
        let mut obs = NoopInstrumentation;
        let mut world = SimWorld::build(&cfg, &rngf, &mut obs).expect("world builds");

        let trace = Rc::new(RefCell::new(Vec::new()));
        let mut subsystems: Vec<Box<dyn Subsystem>> = vec![
            Box::new(Tracer {
                name: "first",
                period: SimDuration::from_mins(1),
                trace: trace.clone(),
            }),
            Box::new(Tracer {
                name: "second",
                period: SimDuration::from_mins(1),
                trace: trace.clone(),
            }),
        ];
        drive(&mut world, &mut subsystems, cfg.horizon);
        let trace = trace.borrow();
        // Three whole minutes inside the horizon; at each instant
        // "first" (seeded first) ticks before "second".
        let expect: Vec<(&str, SimTime)> = (1..=3)
            .flat_map(|m| {
                [
                    ("first", SimTime::from_mins(m)),
                    ("second", SimTime::from_mins(m)),
                ]
            })
            .collect();
        assert_eq!(*trace, expect);
    }
}
