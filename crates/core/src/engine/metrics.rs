//! The engine's metric catalog: every counter, gauge, and histogram a
//! run maintains, as static handles into a
//! [`MetricsRegistry`](rootcast_netsim::MetricsRegistry).
//!
//! The registry itself (flat `Vec` storage, O(1) handle access) lives in
//! `rootcast-netsim`; this module owns the *names* — one `const` handle
//! per metric, declared in the same order as the name tables, so a
//! subsystem increments `keys::FLUID_WINDOWS` without a hash lookup and
//! the snapshot still exports `"fluid.windows"`. A unit test pins the
//! handle/name correspondence.
//!
//! Updating a metric never influences simulation state: the registry is
//! write-only from the subsystems' perspective and only read when the
//! run snapshots it into [`SimOutput`](crate::sim::SimOutput).

use crate::render::TextTable;
use rootcast_netsim::{
    CounterId, GaugeId, HistogramId, HistogramSpec, MetricsRegistry, MetricsSnapshot,
};

/// Static metric handles, grouped by owning subsystem.
pub mod keys {
    use super::{CounterId, GaugeId, HistogramId};

    // Fluid subsystem.
    pub const FLUID_WINDOWS: CounterId = CounterId(0);
    pub const CATCHMENT_INDEX_HITS: CounterId = CounterId(1);
    pub const CATCHMENT_INDEX_REBUILDS: CounterId = CounterId(2);
    pub const SITE_SATURATION_ONSETS: CounterId = CounterId(3);
    pub const SITE_SATURATION_CLEARS: CounterId = CounterId(4);
    pub const POLICY_TRANSITIONS: CounterId = CounterId(5);
    // BGP engine (counted at the engine's observe_routes choke point).
    pub const BGP_ROUTE_RECOMPUTES: CounterId = CounterId(6);
    pub const BGP_CHANGED_ASES: CounterId = CounterId(7);
    pub const BGP_COLLECTOR_UPDATES: CounterId = CounterId(8);
    pub const BGP_SCRATCH_REUSES: CounterId = CounterId(9);
    pub const BGP_SCRATCH_ALLOCS: CounterId = CounterId(10);
    // RSSAC accounting.
    pub const RSSAC_WINDOWS_OBSERVED: CounterId = CounterId(11);
    pub const RSSAC_WINDOWS_GAPPED: CounterId = CounterId(12);
    pub const RRL_ACTIVATIONS: CounterId = CounterId(13);
    // Atlas probing.
    pub const PROBES_FUSED: CounterId = CounterId(14);
    pub const PROBES_REFERENCE: CounterId = CounterId(15);
    pub const PROBES_SITE: CounterId = CounterId(16);
    pub const PROBES_TIMEOUT: CounterId = CounterId(17);
    pub const PROBES_ERROR: CounterId = CounterId(18);
    pub const PROBES_MISSED: CounterId = CounterId(19);
    // Resolver refresh / maintenance / faults.
    pub const RESOLVER_REFRESHES: CounterId = CounterId(20);
    pub const MAINTENANCE_WITHDRAWALS: CounterId = CounterId(21);
    pub const MAINTENANCE_REANNOUNCEMENTS: CounterId = CounterId(22);
    pub const FAULT_INJECTIONS: CounterId = CounterId(23);
    pub const FAULT_RECOVERIES: CounterId = CounterId(24);
    // Trace bookkeeping.
    pub const TRACE_EVENTS_DROPPED: CounterId = CounterId(25);

    pub const SITES_SATURATED: GaugeId = GaugeId(0);
    pub const PEAK_OFFERED_QPS: GaugeId = GaugeId(1);
    pub const WORST_SERVED_RATIO: GaugeId = GaugeId(2);
    pub const VPS_KEPT: GaugeId = GaugeId(3);
    pub const VPS_DROPPED: GaugeId = GaugeId(4);

    pub const SERVED_RATIO: HistogramId = HistogramId(0);
    pub const QUEUE_DELAY_MS: HistogramId = HistogramId(1);
    pub const CHANGED_AS_POPCOUNT: HistogramId = HistogramId(2);
}

/// Counter names, indexed by `CounterId.0`.
pub const COUNTER_NAMES: &[&str] = &[
    "fluid.windows",
    "fluid.catchment_index.hits",
    "fluid.catchment_index.rebuilds",
    "fluid.site_saturation.onsets",
    "fluid.site_saturation.clears",
    "fluid.policy_transitions",
    "bgp.route_recomputes",
    "bgp.changed_ases",
    "bgp.collector_updates",
    "bgp.scratch.reuses",
    "bgp.scratch.allocs",
    "rssac.windows.observed",
    "rssac.windows.gapped",
    "rssac.rrl_activations",
    "probes.fused",
    "probes.reference",
    "probes.outcome.site",
    "probes.outcome.timeout",
    "probes.outcome.error",
    "probes.outcome.missed",
    "resolvers.refreshes",
    "maintenance.withdrawals",
    "maintenance.reannouncements",
    "faults.injections",
    "faults.recoveries",
    "trace.events_dropped",
];

/// Gauge names, indexed by `GaugeId.0`.
pub const GAUGE_NAMES: &[&str] = &[
    "fluid.sites_saturated",
    "fluid.peak_offered_qps",
    "fluid.worst_served_ratio",
    "atlas.vps_kept",
    "atlas.vps_dropped",
];

/// Histogram specs, indexed by `HistogramId.0`.
pub const HISTOGRAM_SPECS: &[HistogramSpec] = &[
    HistogramSpec {
        name: "fluid.served_ratio",
        bounds: &[0.5, 0.9, 0.99, 0.999, 1.0],
    },
    HistogramSpec {
        name: "fluid.queue_delay_ms",
        bounds: &[1.0, 10.0, 100.0, 1_000.0, 5_000.0],
    },
    HistogramSpec {
        name: "bgp.changed_as_popcount",
        bounds: &[0.0, 1.0, 10.0, 100.0, 1_000.0],
    },
];

/// Build the engine's registry with the full catalog registered.
pub fn engine_registry() -> MetricsRegistry {
    MetricsRegistry::new(COUNTER_NAMES, GAUGE_NAMES, HISTOGRAM_SPECS)
}

/// Render a snapshot as text tables: non-zero counters, set gauges, and
/// histogram bucket rows. Counters that never fired are skipped so the
/// table shows what the run actually exercised.
pub fn render_metrics(snap: &MetricsSnapshot) -> Vec<TextTable> {
    let mut counters = TextTable::new("Engine counters", &["counter", "count"]);
    for (name, v) in &snap.counters {
        if *v > 0 {
            counters.row(vec![name.clone(), v.to_string()]);
        }
    }
    let mut gauges = TextTable::new("Engine gauges", &["gauge", "value"]);
    for (name, v) in &snap.gauges {
        gauges.row(vec![name.clone(), crate::render::num(*v, 3)]);
    }
    let mut hists = TextTable::new(
        "Engine histograms",
        &["histogram", "bucket", "count", "mean"],
    );
    for h in &snap.histograms {
        let mean = h.mean().map(|m| crate::render::num(m, 3));
        for (b, &count) in h.counts.iter().enumerate() {
            let label = match h.bounds.get(b) {
                Some(bound) => format!("<= {bound}"),
                None => "overflow".to_string(),
            };
            hists.row(vec![
                h.name.clone(),
                label,
                count.to_string(),
                if b == 0 {
                    mean.clone().unwrap_or_else(|| "–".into())
                } else {
                    String::new()
                },
            ]);
        }
    }
    vec![counters, gauges, hists]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_agree_with_name_tables() {
        // Every const handle indexes the name it claims; the catalog
        // and the name tables cannot drift apart silently.
        assert_eq!(COUNTER_NAMES[keys::FLUID_WINDOWS.0], "fluid.windows");
        assert_eq!(
            COUNTER_NAMES[keys::CATCHMENT_INDEX_HITS.0],
            "fluid.catchment_index.hits"
        );
        assert_eq!(
            COUNTER_NAMES[keys::BGP_ROUTE_RECOMPUTES.0],
            "bgp.route_recomputes"
        );
        assert_eq!(
            COUNTER_NAMES[keys::TRACE_EVENTS_DROPPED.0],
            "trace.events_dropped"
        );
        assert_eq!(COUNTER_NAMES.len(), keys::TRACE_EVENTS_DROPPED.0 + 1);
        assert_eq!(GAUGE_NAMES[keys::VPS_DROPPED.0], "atlas.vps_dropped");
        assert_eq!(GAUGE_NAMES.len(), keys::VPS_DROPPED.0 + 1);
        assert_eq!(
            HISTOGRAM_SPECS[keys::CHANGED_AS_POPCOUNT.0].name,
            "bgp.changed_as_popcount"
        );
        assert_eq!(HISTOGRAM_SPECS.len(), keys::CHANGED_AS_POPCOUNT.0 + 1);
        // No duplicate names anywhere.
        let mut all: Vec<&str> = COUNTER_NAMES
            .iter()
            .chain(GAUGE_NAMES.iter())
            .copied()
            .chain(HISTOGRAM_SPECS.iter().map(|s| s.name))
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate metric name in catalog");
    }

    #[test]
    fn registry_round_trips_through_snapshot() {
        let mut reg = engine_registry();
        reg.inc(keys::FLUID_WINDOWS, 3);
        reg.set_gauge(keys::VPS_KEPT, 420.0);
        reg.observe(keys::SERVED_RATIO, 0.97);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("fluid.windows"), Some(3));
        assert_eq!(snap.gauge("atlas.vps_kept"), Some(420.0));
        let h = snap.histogram("fluid.served_ratio").expect("histogram");
        assert_eq!(h.total(), 1);
        // Untouched gauges stay out of the export.
        assert_eq!(snap.gauge("fluid.peak_offered_qps"), None);
        let tables = render_metrics(&snap);
        assert_eq!(tables.len(), 3);
        assert!(tables[0].to_string().contains("fluid.windows"));
        // Zero counters are skipped.
        assert!(!tables[0].to_string().contains("rssac.rrl_activations"));
    }
}
