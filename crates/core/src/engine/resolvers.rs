//! Resolver preference refresh.
//!
//! Every `resolver_update` period, each populated AS re-observes all 13
//! letters (RTT and loss through its current catchments) and re-weights
//! its letter preferences — the mechanism behind the paper's §3.2.2
//! letter flips. The refreshed weights feed the next fluid window; the
//! pre-event aggregate shares are frozen as the RSSAC baseline once the
//! first attack window opens.

use crate::engine::metrics::keys;
use crate::engine::{SimWorld, Subsystem};
use rootcast_attack::LetterObservation;
use rootcast_netsim::{SimDuration, SimTime};

/// The resolver-population subsystem.
#[derive(Debug)]
pub struct ResolverRefresh {
    period: SimDuration,
}

impl ResolverRefresh {
    pub fn new(period: SimDuration) -> ResolverRefresh {
        ResolverRefresh { period }
    }
}

impl Subsystem for ResolverRefresh {
    fn name(&self) -> &'static str {
        "resolvers"
    }

    fn initial_wakeups(&mut self) -> Vec<SimTime> {
        vec![SimTime::ZERO + self.period]
    }

    fn tick(&mut self, world: &mut SimWorld, t: SimTime) -> Vec<SimTime> {
        for node in world.graph.nodes() {
            let a = node.id.0 as usize;
            if world.pop_weights[a] <= 0.0 {
                continue;
            }
            let mut obs = [LetterObservation::unreachable(); 13];
            for (i, &letter) in world.letters.iter().enumerate() {
                let svc = &world.services[i];
                if let Some(pv) = svc.probe_view(node.id, u64::from(node.id.0)) {
                    obs[letter as usize] = LetterObservation {
                        rtt: Some(pv.rtt),
                        loss: pv.drop_prob,
                    };
                }
            }
            world.resolvers.update_as(a, &obs);
        }
        for (i, &letter) in world.letters.iter().enumerate() {
            world.legit_weights[i] = world.resolvers.letter_weights(letter, &world.pop_weights);
        }
        world.legit_weights_version += 1;
        world.metrics.inc(keys::RESOLVER_REFRESHES, 1);
        world.legit_shares = world.resolvers.aggregate_shares(&world.pop_weights);
        if t < world.first_attack {
            world.baseline_shares = world.legit_shares;
        }
        vec![t + self.period]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::engine::instrument::NoopInstrumentation;
    use rootcast_netsim::SimRng;

    #[test]
    fn refresh_reweights_letters_and_freezes_baseline() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(30);
        cfg.pipeline.horizon = cfg.horizon;
        let rngf = SimRng::new(cfg.seed);
        let mut obs = NoopInstrumentation;
        let mut world = SimWorld::build(&cfg, &rngf, &mut obs).expect("world builds");
        let mut sub = ResolverRefresh::new(cfg.resolver_update);

        let uniform_shares = world.legit_shares;
        let t = SimTime::ZERO + cfg.resolver_update;
        let next = sub.tick(&mut world, t);
        assert_eq!(next, vec![t + cfg.resolver_update]);
        // RTT-shaped preferences are no longer the uninformed prior.
        assert_ne!(world.legit_shares, uniform_shares);
        let sum: f64 = world.legit_shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
        // Pre-event ticks move the frozen baseline along.
        assert!(t < world.first_attack);
        assert_eq!(world.baseline_shares, world.legit_shares);

        // A tick after the first attack window leaves the baseline.
        let frozen = world.baseline_shares;
        let during = world.first_attack + SimDuration::from_mins(1);
        sub.tick(&mut world, during);
        assert_eq!(world.baseline_shares, frozen);
    }
}
