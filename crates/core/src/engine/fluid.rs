//! Fluid traffic windows: the per-minute core of the simulation.
//!
//! Each tick distributes attack + legitimate load over every service's
//! current catchments (fanned out per letter on rayon), pushes it
//! through the shared-facility links and per-site ingress queues, and
//! runs stress policies. The offered loads are published to
//! [`FluidScratch`](crate::engine::FluidScratch) for the accounting
//! subsystem ticking at the same instant.

use crate::engine::metrics::keys;
use crate::engine::trace::TraceEventKind;
use crate::engine::{SimWorld, Subsystem};
use rayon::prelude::*;
use rootcast_anycast::CatchmentIndex;
use rootcast_netsim::{SimDuration, SimTime};

/// The fluid-model subsystem. Carries its cadence plus the per-service
/// catchment indices and scratch buffers the cached tick reuses; the
/// results it produces live in the world (queue states, policy state,
/// scratch).
///
/// The cached tick is serial on purpose: with catchment indices the
/// offered split is O(n_sites) per service — a few hundred flops — far
/// below the cost of fanning tasks out to a thread pool, and a serial
/// loop is trivially deterministic at any thread count. The reference
/// path (`with_reference(true)`) keeps the original uncached rayon
/// fan-out so equivalence tests can pin the two together.
#[derive(Debug)]
pub struct FluidTraffic {
    step: SimDuration,
    reference: bool,
    /// Attack-weight (botnet) index per service.
    atk_idx: Vec<CatchmentIndex>,
    /// Legit-weight (per-letter resolver, or population for `.nl`) index
    /// per service.
    leg_idx: Vec<CatchmentIndex>,
    /// Reusable legitimate-load buffer.
    leg: Vec<f64>,
    /// Per-service, per-site saturation flags from the previous window
    /// (a site is saturated while it drops at the facility or queue),
    /// for onset/clear edge detection.
    saturated: Vec<Vec<bool>>,
}

impl FluidTraffic {
    pub fn new(step: SimDuration) -> FluidTraffic {
        FluidTraffic {
            step,
            reference: false,
            atk_idx: Vec::new(),
            leg_idx: Vec::new(),
            leg: Vec::new(),
            saturated: Vec::new(),
        }
    }

    /// Select the uncached reference implementation (golden tests only).
    pub fn with_reference(mut self, reference: bool) -> FluidTraffic {
        self.reference = reference;
        self
    }
}

impl Subsystem for FluidTraffic {
    fn name(&self) -> &'static str {
        "fluid"
    }

    fn initial_wakeups(&mut self) -> Vec<SimTime> {
        vec![SimTime::ZERO + self.step]
    }

    fn tick(&mut self, world: &mut SimWorld, t: SimTime) -> Vec<SimTime> {
        let cfg = world.cfg;
        let window_start = world.fluid.last_fluid;
        let dt = t - window_start;

        // 1. Offered load per service/site under current ribs, into last
        // window's buffers (reclaimed from the world scratch; empty only
        // on the first tick).
        let n = world.services.len();
        let mut offered = std::mem::take(&mut world.fluid.offered);
        let mut offered_attack = std::mem::take(&mut world.fluid.offered_attack);

        if self.reference {
            // Reference path: uncached, one rayon task per service.
            let (services, botnet, legit_weights, pop_weights, legit_shares) = (
                &world.services,
                &world.botnet,
                &world.legit_weights,
                &world.pop_weights,
                &world.legit_shares,
            );
            let loads: Vec<(Vec<f64>, Vec<f64>)> = (0..services.len())
                .into_par_iter()
                .map(|i| {
                    let svc = &services[i];
                    if let Some(letter) = svc.letter {
                        let atk_rate = cfg.attack.rate_for(letter, window_start);
                        let atk = svc.offered_per_site(botnet.weights(), atk_rate);
                        let leg = svc.offered_per_site(
                            &legit_weights[i],
                            cfg.legit_total_qps * legit_shares[letter as usize],
                        );
                        let sum: Vec<f64> = atk.iter().zip(&leg).map(|(a, b)| a + b).collect();
                        (atk, sum)
                    } else {
                        let leg = svc.offered_per_site(pop_weights, cfg.nl_qps);
                        (vec![0.0; leg.len()], leg)
                    }
                })
                .collect();
            let unzipped: (Vec<_>, Vec<_>) = loads.into_iter().unzip();
            offered_attack = unzipped.0;
            offered = unzipped.1;
        } else {
            // Cached path: per-site weight sums keyed on (catchment
            // epoch, weight version) make each split O(n_sites); the
            // fills share their arithmetic with `offered_per_site`, so
            // the loads are bit-identical to the reference path.
            offered.resize_with(n, Vec::new);
            offered_attack.resize_with(n, Vec::new);
            self.atk_idx.resize_with(n, Default::default);
            self.leg_idx.resize_with(n, Default::default);
            let (mut hits, mut rebuilds) = (0u64, 0u64);
            let mut note = |rebuilt: bool| {
                if rebuilt {
                    rebuilds += 1;
                } else {
                    hits += 1;
                }
            };
            for i in 0..n {
                let svc = &world.services[i];
                let atk_out = &mut offered_attack[i];
                let out = &mut offered[i];
                if let Some(letter) = svc.letter {
                    let atk_rate = cfg.attack.rate_for(letter, window_start);
                    note(svc.refresh_catchment_index(
                        &mut self.atk_idx[i],
                        world.botnet.weights(),
                        1,
                    ));
                    self.atk_idx[i].offered_per_site_into(atk_rate, atk_out);
                    note(svc.refresh_catchment_index(
                        &mut self.leg_idx[i],
                        &world.legit_weights[i],
                        world.legit_weights_version,
                    ));
                    self.leg_idx[i].offered_per_site_into(
                        cfg.legit_total_qps * world.legit_shares[letter as usize],
                        &mut self.leg,
                    );
                    out.clear();
                    out.extend(atk_out.iter().zip(&self.leg).map(|(a, b)| a + b));
                } else {
                    note(svc.refresh_catchment_index(&mut self.leg_idx[i], &world.pop_weights, 1));
                    self.leg_idx[i].offered_per_site_into(cfg.nl_qps, out);
                    atk_out.clear();
                    atk_out.resize(out.len(), 0.0);
                }
            }
            world.metrics.inc(keys::CATCHMENT_INDEX_HITS, hits);
            world.metrics.inc(keys::CATCHMENT_INDEX_REBUILDS, rebuilds);
        }
        world.metrics.inc(keys::FLUID_WINDOWS, 1);

        // 2. Facility links first (shared risk), then site queues.
        for (svc, off) in world.services.iter().zip(&offered) {
            svc.stage_facility_load(off, &mut world.facility_table);
        }
        world.facility_table.advance(t);
        for (svc, off) in world.services.iter_mut().zip(&offered) {
            svc.advance_queues(t, off, &world.facility_table);
        }

        // Conservation audit (debug builds): per site, every offered
        // query is either dropped at the shared facility, dropped at the
        // site queue, or served — nothing is created or lost between the
        // offered split and the loss fields the accounting reads.
        #[cfg(debug_assertions)]
        for (svc, off) in world.services.iter().zip(&offered) {
            for (site, &offered_qps) in svc.sites().iter().zip(off) {
                assert!(
                    offered_qps.is_finite() && offered_qps >= 0.0,
                    "site {}: offered load {offered_qps} is not a finite non-negative rate",
                    site.spec.code
                );
                assert!(
                    site.offered_qps == offered_qps,
                    "site {}: queue advanced with {} q/s but the window offered {offered_qps} q/s",
                    site.spec.code,
                    site.offered_qps
                );
                let fac_dropped = offered_qps * site.facility_loss;
                let queue_dropped = (offered_qps - fac_dropped) * site.last_loss;
                let served = offered_qps * (1.0 - site.facility_loss) * (1.0 - site.last_loss);
                let balance = fac_dropped + queue_dropped + served;
                assert!(
                    (balance - offered_qps).abs() <= 1e-9 * offered_qps.max(1.0),
                    "site {}: offered {offered_qps} q/s but accounted {balance} q/s \
                     (facility drop {fac_dropped} + queue drop {queue_dropped} + served {served})",
                    site.spec.code
                );
            }
        }

        // Saturation edges: a site is saturated while it drops queries
        // at the shared facility or its own ingress queue. Onsets and
        // clears are counted, traced, and the live count gauged.
        self.saturated.resize_with(world.services.len(), Vec::new);
        for (i, svc) in world.services.iter().enumerate() {
            let prev = &mut self.saturated[i];
            prev.resize(svc.sites().len(), false);
            for (s, site) in svc.sites().iter().enumerate() {
                let sat = site.facility_loss > 0.0 || site.last_loss > 0.0;
                if sat != prev[s] {
                    let key = if sat {
                        keys::SITE_SATURATION_ONSETS
                    } else {
                        keys::SITE_SATURATION_CLEARS
                    };
                    world.metrics.inc(key, 1);
                    world.trace.record_with(t, || {
                        let service = svc.name.clone();
                        let code = site.spec.code.clone();
                        if sat {
                            TraceEventKind::SiteSaturationOnset {
                                service,
                                site: code,
                            }
                        } else {
                            TraceEventKind::SiteSaturationClear {
                                service,
                                site: code,
                            }
                        }
                    });
                    prev[s] = sat;
                }
            }
        }
        let live: usize = self
            .saturated
            .iter()
            .map(|v| v.iter().filter(|&&s| s).count())
            .sum();
        world.metrics.set_gauge(keys::SITES_SATURATED, live as f64);

        // Per-letter load and queue-depth instrumentation.
        for (i, svc) in world.services.iter().enumerate() {
            let Some(letter) = svc.letter else { continue };
            let offered_total: f64 = offered[i].iter().sum();
            let served_total: f64 = svc.served_total();
            world
                .metrics
                .max_gauge(keys::PEAK_OFFERED_QPS, offered_total);
            if offered_total > 0.0 {
                let ratio = served_total / offered_total;
                world.metrics.min_gauge(keys::WORST_SERVED_RATIO, ratio);
                world.metrics.observe(keys::SERVED_RATIO, ratio);
            }
            world
                .obs
                .on_letter_load(t, letter, offered_total, served_total);
            for site in svc.sites() {
                let delay = site.queue_delay();
                if !delay.is_zero() {
                    world
                        .metrics
                        .observe(keys::QUEUE_DELAY_MS, delay.as_secs_f64() * 1e3);
                    world.obs.on_queue_depth(t, letter, &site.spec.code, delay);
                }
            }
        }

        // 3. Stress policies; observe routing changes.
        for i in 0..world.services.len() {
            let changes = {
                let svc = &mut world.services[i];
                svc.apply_policies(t, &world.graph)
            };
            if !changes.is_empty() {
                world
                    .metrics
                    .inc(keys::POLICY_TRANSITIONS, changes.len() as u64);
                if let Some(letter) = world.services[i].letter {
                    world
                        .trace
                        .record_with(t, || TraceEventKind::PolicyTransition {
                            letter: (b'A' + letter as u8) as char,
                            changes: changes.len(),
                        });
                    world.obs.on_policy_transition(t, letter, &changes);
                }
                world.observe_routes(t, i);
            }
        }

        // Publish this window for the accounting subsystems.
        world.fluid.offered = offered;
        world.fluid.offered_attack = offered_attack;
        world.fluid.window_start = window_start;
        world.fluid.dt = dt;
        world.fluid.last_fluid = t;

        vec![t + self.step]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::engine::instrument::NoopInstrumentation;
    use rootcast_netsim::SimRng;

    #[test]
    fn tick_publishes_scratch_and_fills_queues() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(10);
        cfg.pipeline.horizon = cfg.horizon;
        let rngf = SimRng::new(cfg.seed);
        let mut obs = NoopInstrumentation;
        let mut world = SimWorld::build(&cfg, &rngf, &mut obs).expect("world builds");
        let mut fluid = FluidTraffic::new(cfg.fluid_step);

        let t = SimTime::ZERO + cfg.fluid_step;
        let next = fluid.tick(&mut world, t);
        assert_eq!(next, vec![t + cfg.fluid_step]);
        assert_eq!(world.fluid.last_fluid, t);
        assert_eq!(world.fluid.window_start, SimTime::ZERO);
        assert_eq!(world.fluid.dt, cfg.fluid_step);
        assert_eq!(world.fluid.offered.len(), world.services.len());
        // No attack at t=0, so offered loads are purely legitimate:
        // every letter's total is positive and attack components zero.
        for (i, svc) in world.services.iter().enumerate() {
            let total: f64 = world.fluid.offered[i].iter().sum();
            assert!(total > 0.0, "service {i} got no load");
            if svc.letter.is_some() {
                assert!(world.fluid.offered_attack[i].iter().all(|&a| a == 0.0));
            }
        }
    }

    #[test]
    fn cached_and_reference_ticks_are_bit_identical() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(10);
        cfg.pipeline.horizon = cfg.horizon;
        let rngf = SimRng::new(cfg.seed);
        let run = |reference: bool| {
            let mut obs = NoopInstrumentation;
            let mut world = SimWorld::build(&cfg, &rngf, &mut obs).expect("world builds");
            let mut fluid = FluidTraffic::new(cfg.fluid_step).with_reference(reference);
            let mut t = SimTime::ZERO;
            for _ in 0..5 {
                t += cfg.fluid_step;
                fluid.tick(&mut world, t);
            }
            (
                world.fluid.offered.clone(),
                world.fluid.offered_attack.clone(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn offered_split_is_deterministic_across_thread_counts() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(5);
        cfg.pipeline.horizon = cfg.horizon;
        let rngf = SimRng::new(cfg.seed);

        let run_once = |threads: usize| -> Vec<Vec<f64>> {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| {
                let mut obs = NoopInstrumentation;
                let mut world = SimWorld::build(&cfg, &rngf, &mut obs).expect("world builds");
                let mut fluid = FluidTraffic::new(cfg.fluid_step);
                fluid.tick(&mut world, SimTime::ZERO + cfg.fluid_step);
                world.fluid.offered.clone()
            })
        };
        assert_eq!(run_once(1), run_once(4));
    }
}
