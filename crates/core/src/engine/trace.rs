//! Bounded structured event trace: a ring buffer of typed simulation
//! events (policy transitions, saturation onsets, fault transitions,
//! catchment-epoch bumps, RRL activations) stamped with both simulated
//! time and host wall time.
//!
//! The trace is an *observer*: recording an event never influences
//! simulation state, and a disabled trace costs one branch per
//! recording site — [`EventTrace::record_with`] takes a closure so the
//! event (and any `String` inside it) is never built when tracing is
//! off. The buffer is capacity-capped; once full, the oldest event is
//! overwritten and `dropped_events` counts what was lost, so a
//! long run keeps the newest window of activity instead of growing
//! without bound.

use rootcast_netsim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Instant;

/// Trace knobs on [`ScenarioConfig`](crate::config::ScenarioConfig).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Record events at all. Disabled (the default) the trace allocates
    /// nothing and every recording site is a single branch.
    pub enabled: bool,
    /// Maximum retained events; older events are overwritten and
    /// counted in [`TraceSnapshot::dropped_events`].
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            enabled: false,
            capacity: 4096,
        }
    }
}

/// One structured simulation event. Letters and sites are carried as
/// their display strings so the snapshot is self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A stress policy withdrew and/or re-announced sites on a letter.
    PolicyTransition { letter: char, changes: usize },
    /// A site's offered load first exceeded what it can serve.
    SiteSaturationOnset { service: String, site: String },
    /// A previously saturated site drained back below capacity.
    SiteSaturationClear { service: String, site: String },
    /// The fault injector applied an injection.
    FaultInjected { description: String },
    /// The fault injector recovered a fault.
    FaultRecovered { description: String },
    /// A RIB recompute bumped a service's catchment epoch.
    CatchmentEpochBump {
        service: String,
        epoch: u64,
        changed_ases: u64,
    },
    /// A reporting letter crossed from unstressed into stressed
    /// accounting (RRL suppression active).
    RrlActivated { letter: char },
}

/// A recorded event: monotone sequence number, simulated time (nanos),
/// host wall time since the trace was armed (micros), and the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub seq: u64,
    pub t_nanos: u64,
    pub wall_micros: u64,
    pub kind: TraceEventKind,
}

/// The ring buffer itself, owned by the
/// [`SimWorld`](crate::engine::SimWorld).
#[derive(Debug)]
pub struct EventTrace {
    enabled: bool,
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
    seq: u64,
    armed: Instant,
}

impl EventTrace {
    /// Build from config. A disabled trace pre-allocates nothing.
    pub fn new(cfg: &TraceConfig) -> EventTrace {
        EventTrace {
            enabled: cfg.enabled && cfg.capacity > 0,
            capacity: cfg.capacity,
            buf: if cfg.enabled && cfg.capacity > 0 {
                VecDeque::with_capacity(cfg.capacity)
            } else {
                VecDeque::new()
            },
            dropped: 0,
            seq: 0,
            armed: Instant::now(),
        }
    }

    /// The always-off trace (used by worlds built outside `run`).
    pub fn disabled() -> EventTrace {
        EventTrace::new(&TraceConfig::default())
    }

    /// Is the trace recording?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record the event built by `f`, stamped at simulated time `t`.
    /// When the trace is disabled `f` is never called, so a recording
    /// site like `trace.record_with(t, || kind_with_strings())` costs
    /// one branch and zero allocations on the disabled path.
    #[inline]
    pub fn record_with(&mut self, t: SimTime, f: impl FnOnce() -> TraceEventKind) {
        if !self.enabled {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        let event = TraceEvent {
            seq: self.seq,
            t_nanos: t.as_nanos(),
            wall_micros: self.armed.elapsed().as_micros() as u64,
            kind: f(),
        };
        self.seq += 1;
        self.buf.push_back(event);
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the buffer was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Freeze into the exportable snapshot.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            enabled: self.enabled,
            capacity: self.capacity,
            dropped_events: self.dropped,
            events: self.buf.iter().cloned().collect(),
        }
    }
}

/// The trace as exported on [`SimOutput`](crate::sim::SimOutput):
/// retained events in sequence order plus the drop accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSnapshot {
    pub enabled: bool,
    pub capacity: usize,
    /// Events lost to ring overwrite. `events.len() + dropped_events`
    /// is the total ever recorded.
    pub dropped_events: u64,
    pub events: Vec<TraceEvent>,
}

impl TraceSnapshot {
    /// Count retained events matching `pred`.
    pub fn count(&self, pred: impl Fn(&TraceEventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled(capacity: usize) -> EventTrace {
        EventTrace::new(&TraceConfig {
            enabled: true,
            capacity,
        })
    }

    #[test]
    fn disabled_trace_never_builds_events() {
        let mut trace = EventTrace::disabled();
        let mut built = 0u32;
        trace.record_with(SimTime::ZERO, || {
            built += 1;
            TraceEventKind::RrlActivated { letter: 'A' }
        });
        assert_eq!(built, 0, "closure ran on the disabled path");
        assert!(trace.is_empty());
        assert_eq!(trace.dropped_events(), 0);
        assert!(!trace.snapshot().enabled);
    }

    #[test]
    fn ring_overflow_drops_oldest_with_exact_accounting() {
        let mut trace = enabled(4);
        for i in 0..10u64 {
            trace.record_with(SimTime::from_mins(i), || {
                TraceEventKind::CatchmentEpochBump {
                    service: "K-root".into(),
                    epoch: i,
                    changed_ases: i * 3,
                }
            });
        }
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.dropped_events(), 6);
        let snap = trace.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped_events, 6);
        // The newest four events survive, in order, with their original
        // sequence numbers intact.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        for e in &snap.events {
            match &e.kind {
                TraceEventKind::CatchmentEpochBump { epoch, .. } => assert_eq!(*epoch, e.seq),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn events_carry_both_clocks() {
        let mut trace = enabled(8);
        trace.record_with(SimTime::from_mins(7), || TraceEventKind::PolicyTransition {
            letter: 'B',
            changes: 2,
        });
        let snap = trace.snapshot();
        assert_eq!(snap.events[0].t_nanos, SimTime::from_mins(7).as_nanos());
        // Wall stamps are host-side and only guaranteed monotone.
        trace.record_with(SimTime::from_mins(8), || TraceEventKind::PolicyTransition {
            letter: 'B',
            changes: 1,
        });
        let snap = trace.snapshot();
        assert!(snap.events[0].wall_micros <= snap.events[1].wall_micros);
        assert_eq!(
            snap.count(|k| matches!(k, TraceEventKind::PolicyTransition { .. })),
            2
        );
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut trace = enabled(0);
        trace.record_with(SimTime::ZERO, || TraceEventKind::RrlActivated {
            letter: 'C',
        });
        assert!(trace.is_empty());
        assert_eq!(trace.dropped_events(), 0);
    }
}
