//! The shared simulation world: topology, services, traffic sources,
//! measurement state, and the per-window fluid scratchpad that lets
//! subsystems scheduled at the same instant hand results to each other.

use crate::config::{ConfigError, ScenarioConfig};
use crate::deployment::{self, LetterDeployment};
use crate::engine::faults::FaultState;
use crate::engine::instrument::Instrumentation;
use crate::engine::metrics::{engine_registry, keys};
use crate::engine::probes::ServiceTarget;
use crate::engine::trace::{EventTrace, TraceEventKind};
use rand::Rng;
use rootcast_anycast::{AnycastService, FacilityTable};
use rootcast_atlas::{
    clean_fleet, execute_probe, CleaningReport, MeasurementPipeline, RawMeasurement, VpFleet,
};
use rootcast_attack::{population_weights, Botnet, ResolverPopulation};
use rootcast_bgp::RouteCollector;
use rootcast_dns::Letter;
use rootcast_netsim::{BinnedSeries, SimDuration, SimRng, SimTime};
use rootcast_rssac::{DailyReport, RssacCollector};
use rootcast_topology::{gen, AsGraph, Tier};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Results of the most recent fluid window, published by
/// [`FluidTraffic`](crate::engine::FluidTraffic) for the accounting
/// subsystems that tick at the same instant.
#[derive(Debug, Default)]
pub struct FluidScratch {
    /// Offered load (attack + legitimate) per service, per site, q/s.
    pub offered: Vec<Vec<f64>>,
    /// Attack-only component of `offered`.
    pub offered_attack: Vec<Vec<f64>>,
    /// Start of the window the loads applied over.
    pub window_start: SimTime,
    /// Width of that window.
    pub dt: SimDuration,
    /// End of the last completed fluid window (= next window's start).
    pub last_fluid: SimTime,
}

/// Everything the subsystems read and mutate while a scenario runs.
///
/// The world owns simulation state only; per-subsystem state (probe
/// wheels, churn schedules, byte-size tables) lives in the subsystems
/// themselves. The `obs` observer is write-only instrumentation: it
/// sees the run but cannot influence it.
pub struct SimWorld<'a> {
    pub cfg: &'a ScenarioConfig,
    pub rng_factory: &'a SimRng,
    pub graph: Arc<AsGraph>,
    /// The 13 root letters, in service order.
    pub letters: Vec<Letter>,
    /// One service per letter, plus `.nl` at `nl_index` if enabled.
    pub services: Vec<AnycastService>,
    pub nl_index: Option<usize>,
    pub facility_table: FacilityTable,
    pub botnet: Arc<Botnet>,
    pub pop_weights: Arc<Vec<f64>>,
    pub resolvers: ResolverPopulation,
    /// Cached per-letter legitimate weight vectors (refreshed by the
    /// resolver subsystem). `offered_per_site` normalizes its weight
    /// vector, so each letter's *total* rate is scaled by the
    /// aggregate shares separately.
    pub legit_weights: Vec<Vec<f64>>,
    /// Content version of `legit_weights`, bumped whenever the resolver
    /// subsystem rewrites the vectors. Catchment indices built over the
    /// legit weights key on this (botnet and population weights are
    /// immutable after build, so their version is a constant 1).
    pub legit_weights_version: u64,
    pub legit_shares: [f64; 13],
    /// Converged pre-event shares, frozen once the first attack window
    /// opens — the analogue of the paper's 7-day RSSAC baseline.
    pub baseline_shares: [f64; 13],
    pub first_attack: SimTime,
    pub fleet: Arc<VpFleet>,
    pub cleaning: CleaningReport,
    pub pipeline: MeasurementPipeline,
    pub collectors: BTreeMap<Letter, RouteCollector>,
    pub rssac: BTreeMap<Letter, RssacCollector>,
    /// Synthesized pre-event baseline (7-day mean) per reporting
    /// letter, filled by the accounting subsystem's finish step.
    pub rssac_baseline: BTreeMap<Letter, DailyReport>,
    /// Attack / legitimate queries per (reporting letter, day), for
    /// unique-source estimation after the run.
    pub attack_queries_by_day: BTreeMap<Letter, Vec<f64>>,
    pub legit_queries_by_day: BTreeMap<Letter, Vec<f64>>,
    /// Served-query series per `.nl` site.
    pub nl_series: Vec<BinnedSeries>,
    pub deployments: Vec<LetterDeployment>,
    pub fluid: FluidScratch,
    /// Live fault state written by the injector and consulted by the
    /// probing and accounting subsystems. Empty when no plan is active.
    pub faults: FaultState,
    /// The engine's metric registry (see
    /// [`metrics::keys`](crate::engine::metrics::keys)). Write-only
    /// during the run; snapshotted into the output afterwards.
    pub metrics: rootcast_netsim::MetricsRegistry,
    /// Bounded structured event trace, armed by
    /// [`ScenarioConfig::trace`]; disabled it records nothing and
    /// allocates nothing.
    pub trace: EventTrace,
    pub obs: &'a mut dyn Instrumentation,
}

/// The expensive immutable part of a world: topology, deployments,
/// baseline services with their computed RIBs, the botnet, population
/// weights, the generated VP fleet, and the `t = 0` calibration pass's
/// [`CleaningReport`]. Everything here is a pure function of the
/// scenario's substrate knobs ([`ScenarioConfig::substrate_key`]: seed,
/// topology, fleet, botnet, `.nl` inclusion) — build it once, wrap it
/// in an `Arc`, and stamp out per-run [`SimWorld`]s with
/// [`SimWorld::from_substrate`]. Per-run knobs (attack schedule, fault
/// plan, facility capacities, site capacity/policy overrides, rates,
/// cadences) never enter the substrate, so a sweep varying only those
/// pays the topology + RIB + calibration cost exactly once per shard.
///
/// `SimWorld::build` itself is now the composition
/// `Substrate::build` → `from_substrate`, so a shared-substrate run is
/// bit-identical to a standalone [`run`](crate::sim::run) by
/// construction: there is only one build path.
pub struct Substrate {
    /// [`ScenarioConfig::substrate_key`] of the config this was built
    /// from; runs against a mismatching config are rejected.
    pub key: u64,
    pub graph: Arc<AsGraph>,
    pub deployments: Vec<LetterDeployment>,
    /// The 13 root letters, in service order.
    pub letters: Vec<Letter>,
    /// Pristine baseline services (RIBs computed, queues empty). Cloned
    /// per run and then retuned by any site overrides.
    pub services: Vec<AnycastService>,
    pub nl_index: Option<usize>,
    pub botnet: Arc<Botnet>,
    pub pop_weights: Arc<Vec<f64>>,
    pub fleet: Arc<VpFleet>,
    /// Calibration-pass cleaning verdicts. Calibration probes at
    /// `t = 0` see empty queues and default trackers, so they depend
    /// only on the RIBs, server counts, and host ASes — none of which a
    /// site override can touch ([`rootcast_anycast::SiteTuning`]).
    pub cleaning: CleaningReport,
}

impl Substrate {
    /// Build the substrate for `cfg`'s substrate knobs. Draws from its
    /// own `SimRng::new(cfg.seed)`, exactly the streams the monolithic
    /// build used ("calibration" plus the topology/botnet/fleet
    /// generators'), so the result is independent of who builds it.
    pub fn build(cfg: &ScenarioConfig) -> Substrate {
        let rng_factory = SimRng::new(cfg.seed);
        let graph = gen::generate(&cfg.topology, &rng_factory);

        let deployments = deployment::nov2015_deployments(&graph);
        let mut services: Vec<AnycastService> = deployments
            .iter()
            .map(|d| {
                AnycastService::new(
                    &format!("{}-root", d.letter),
                    Some(d.letter),
                    &graph,
                    d.sites.clone(),
                )
            })
            .collect();
        let letters: Vec<Letter> = deployments.iter().map(|d| d.letter).collect();
        let nl_index = if cfg.include_nl {
            services.push(AnycastService::new(
                ".nl anycast",
                None,
                &graph,
                deployment::nl_deployment(&graph),
            ));
            Some(services.len() - 1)
        } else {
            None
        };

        let botnet = Botnet::generate(&graph, cfg.botnet.clone(), &rng_factory);
        let pop_weights = population_weights(&graph);

        let fleet = VpFleet::generate(&graph, &cfg.fleet, &rng_factory);
        // Calibration pass: one probe per (VP, letter) to feed hijack
        // detection, exactly how the paper's cleaning classifies VPs.
        let mut calibration: Vec<RawMeasurement> = Vec::with_capacity(fleet.len() * letters.len());
        {
            let mut cal_rng = rng_factory.stream("calibration");
            for vp in fleet.iter() {
                for (si, _) in letters.iter().enumerate() {
                    let target = ServiceTarget { svc: &services[si] };
                    calibration.push(execute_probe(vp, &target, SimTime::ZERO, &mut cal_rng));
                }
            }
        }
        let cleaning = clean_fleet(&fleet, &calibration);

        Substrate {
            key: cfg.substrate_key(),
            graph: Arc::new(graph),
            deployments,
            letters,
            services,
            nl_index,
            botnet: Arc::new(botnet),
            pop_weights: Arc::new(pop_weights),
            fleet: Arc::new(fleet),
            cleaning,
        }
    }
}

impl<'a> SimWorld<'a> {
    /// Build the full world for `cfg`: topology, deployments, traffic
    /// sources, the calibrated-and-cleaned VP fleet, and all
    /// accounting state, exactly as of `SimTime::ZERO`. This is
    /// [`Substrate::build`] followed by [`Self::from_substrate`] — the
    /// sweep runner calls the two halves separately to share the first.
    pub fn build(
        cfg: &'a ScenarioConfig,
        rng_factory: &'a SimRng,
        obs: &'a mut dyn Instrumentation,
    ) -> Result<SimWorld<'a>, ConfigError> {
        let substrate = Substrate::build(cfg);
        SimWorld::from_substrate(cfg, rng_factory, &substrate, obs)
    }

    /// Stamp out the per-run mutable world over a prebuilt [`Substrate`]:
    /// clone the baseline services (cheap next to recomputing their
    /// RIBs), apply the config's site overrides, and build all per-run
    /// accounting state. Fails with [`ConfigError::BadOverride`] when an
    /// override names a site the deployment doesn't have, and rejects a
    /// substrate built for different substrate knobs.
    pub fn from_substrate(
        cfg: &'a ScenarioConfig,
        rng_factory: &'a SimRng,
        substrate: &Substrate,
        obs: &'a mut dyn Instrumentation,
    ) -> Result<SimWorld<'a>, ConfigError> {
        if substrate.key != cfg.substrate_key() {
            return Err(ConfigError::BadOverride(format!(
                "substrate key mismatch: built for {:#018x}, config needs {:#018x} \
                 (seed/topology/fleet/botnet/include_nl differ)",
                substrate.key,
                cfg.substrate_key()
            )));
        }
        let graph = Arc::clone(&substrate.graph);
        let n_ases = graph.len();
        let letters = substrate.letters.clone();
        let nl_index = substrate.nl_index;

        let mut services = substrate.services.clone();
        for ov in &cfg.site_overrides {
            let si = letters
                .iter()
                .position(|&l| l == ov.letter)
                .ok_or_else(|| {
                    ConfigError::BadOverride(format!("letter {} has no service", ov.letter))
                })?;
            let idx = services[si].site_by_code(&ov.site).ok_or_else(|| {
                ConfigError::BadOverride(format!(
                    "{} has no site {:?} (deployed: {})",
                    ov.letter,
                    ov.site,
                    services[si]
                        .sites()
                        .iter()
                        .map(|s| s.spec.code.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })?;
            services[si].retune_site(idx, &ov.tuning);
        }

        let mut facility_table = FacilityTable::new();
        for &(fid, cap) in &cfg.facility_capacities {
            facility_table.register(fid, cap, cap * 0.5);
        }

        let resolvers = ResolverPopulation::new(n_ases);
        let legit_weights: Vec<Vec<f64>> = letters
            .iter()
            .map(|&l| resolvers.letter_weights(l, &substrate.pop_weights))
            .collect();
        let legit_shares = resolvers.aggregate_shares(&substrate.pop_weights);
        let first_attack = cfg
            .attack
            .windows()
            .first()
            .map(|w| w.start)
            .unwrap_or(SimTime::MAX);

        let mut pipeline = MeasurementPipeline::new(cfg.pipeline.clone(), substrate.fleet.len());
        for (i, &letter) in letters.iter().enumerate() {
            let codes: Vec<String> = services[i]
                .sites()
                .iter()
                .map(|s| s.spec.code.clone())
                .collect();
            pipeline.register_letter(letter, codes);
        }

        let mut collectors: BTreeMap<Letter, RouteCollector> = BTreeMap::new();
        {
            let mut rng = rng_factory.stream("bgpmon");
            let stubs = graph.by_tier(Tier::Stub);
            let peers: Vec<_> = (0..cfg.n_collector_peers)
                .map(|_| stubs[rng.gen_range(0..stubs.len())])
                .collect();
            for (i, &letter) in letters.iter().enumerate() {
                let mut c = RouteCollector::new(peers.clone());
                c.prime(services[i].rib());
                collectors.insert(letter, c);
            }
        }

        let n_days = (cfg.horizon.as_secs() / 86_400).max(1) as usize;
        let mut rssac: BTreeMap<Letter, RssacCollector> = BTreeMap::new();
        for d in &substrate.deployments {
            if let Some(capture) = d.rssac_capture {
                rssac.insert(d.letter, RssacCollector::new(d.letter, n_days, capture));
            }
        }
        let attack_queries_by_day: BTreeMap<Letter, Vec<f64>> =
            rssac.keys().map(|&l| (l, vec![0.0; n_days])).collect();
        let legit_queries_by_day: BTreeMap<Letter, Vec<f64>> =
            rssac.keys().map(|&l| (l, vec![0.0; n_days])).collect();

        let bin = cfg.pipeline.bin;
        let n_bins = (cfg.horizon.as_nanos() / bin.as_nanos()) as usize;
        let nl_series: Vec<BinnedSeries> = nl_index
            .map(|i| {
                services[i]
                    .sites()
                    .iter()
                    .map(|_| BinnedSeries::zeros(bin, n_bins))
                    .collect()
            })
            .unwrap_or_default();

        Ok(SimWorld {
            cfg,
            rng_factory,
            graph,
            letters,
            services,
            nl_index,
            facility_table,
            botnet: Arc::clone(&substrate.botnet),
            pop_weights: Arc::clone(&substrate.pop_weights),
            resolvers,
            legit_weights,
            legit_weights_version: 1,
            baseline_shares: legit_shares,
            legit_shares,
            first_attack,
            fleet: Arc::clone(&substrate.fleet),
            cleaning: substrate.cleaning.clone(),
            pipeline,
            collectors,
            rssac,
            rssac_baseline: BTreeMap::new(),
            attack_queries_by_day,
            legit_queries_by_day,
            nl_series,
            deployments: substrate.deployments.clone(),
            fluid: FluidScratch::default(),
            faults: FaultState::default(),
            metrics: engine_registry(),
            trace: EventTrace::new(&cfg.trace),
            obs,
        })
    }

    /// Record a routing change with the letter's BGPmon-style collector
    /// (no-op for services without a collector, e.g. `.nl`).
    ///
    /// Every call follows exactly one RIB recompute on that service, so
    /// the service's changed-AS set describes precisely the delta since
    /// the collector's last observation and the collector can skip
    /// unchanged peers. The reference path re-scans the full table; both
    /// log identical update batches (debug builds audit the skips).
    pub fn observe_routes(&mut self, t: SimTime, svc_idx: usize) {
        let svc = &self.services[svc_idx];
        let popcount = svc.changed_ases().iter().filter(|&&c| c).count() as u64;
        let epoch = svc.catchment_epoch();
        self.metrics.inc(keys::BGP_ROUTE_RECOMPUTES, 1);
        self.metrics.inc(keys::BGP_CHANGED_ASES, popcount);
        self.metrics
            .observe(keys::CHANGED_AS_POPCOUNT, popcount as f64);
        self.trace
            .record_with(t, || TraceEventKind::CatchmentEpochBump {
                service: svc.name.clone(),
                epoch,
                changed_ases: popcount,
            });
        if let Some(letter) = svc.letter {
            if let Some(c) = self.collectors.get_mut(&letter) {
                if self.cfg.reference_kernels {
                    c.observe(t, svc.rib());
                } else {
                    c.observe_changed(t, svc.rib(), svc.changed_ases());
                }
                self.metrics.inc(keys::BGP_COLLECTOR_UPDATES, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::instrument::NoopInstrumentation;

    #[test]
    fn build_wires_all_letters_and_nl() {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_mins(30);
        cfg.pipeline.horizon = cfg.horizon;
        let rngf = SimRng::new(cfg.seed);
        let mut obs = NoopInstrumentation;
        let world = SimWorld::build(&cfg, &rngf, &mut obs).expect("world builds");
        assert_eq!(world.letters.len(), 13);
        assert_eq!(world.services.len(), 14); // 13 letters + .nl
        assert_eq!(world.nl_index, Some(13));
        assert_eq!(world.collectors.len(), 13);
        assert_eq!(world.rssac.len(), 5);
        assert_eq!(world.nl_series.len(), 2);
        assert!(world.cleaning.kept_count() > 0);
        // The scratchpad starts empty at t=0.
        assert_eq!(world.fluid.last_fluid, SimTime::ZERO);
        assert!(world.fluid.offered.is_empty());
    }
}
