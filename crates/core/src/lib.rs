//! # rootcast
//!
//! Reproduction toolkit for *"Anycast vs. DDoS: Evaluating the November
//! 2015 Root DNS Event"* (IMC 2016).
//!
//! The crate wires the rootcast substrate stack — topology, BGP anycast
//! routing, DNS, attack workloads, the Atlas-like measurement platform,
//! and RSSAC reporting — into the canonical Nov 30 / Dec 1 2015 scenario,
//! and provides one analysis module per table/figure of the paper.
//!
//! ## Quick start
//!
//! ```no_run
//! use rootcast::{ScenarioConfig, sim};
//!
//! let cfg = ScenarioConfig::small();
//! let out = sim::run(&cfg).expect("valid scenario");
//! let k = out.pipeline.letter(rootcast::Letter::K);
//! println!("K-root successful VPs per bin: {:?}", k.success.values());
//! ```

pub mod analysis;
pub mod config;
pub mod deployment;
pub mod engine;
pub mod error;
pub mod policy_model;
pub mod render;
pub mod sim;

pub use config::{ConfigError, ScenarioConfig};
pub use deployment::{nl_deployment, nov2015_deployments, LetterDeployment};
pub use engine::{
    render_metrics, FaultKind, FaultPlan, FaultSpec, Instrumentation, NoopInstrumentation,
    Profiler, RunProfile, RunStats, Subsystem, TraceConfig, TraceEvent, TraceEventKind,
    TraceSnapshot,
};
pub use error::RootcastError;
pub use sim::{run, run_observed, run_profiled, SimOutput};

// Re-export the vocabulary types users need to consume the outputs.
pub use rootcast_dns::Letter;
pub use rootcast_netsim::{BinnedSeries, MetricsSnapshot, Reduce, SimDuration, SimTime};
