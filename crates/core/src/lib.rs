//! # rootcast
//!
//! Reproduction toolkit for *"Anycast vs. DDoS: Evaluating the November
//! 2015 Root DNS Event"* (IMC 2016).
//!
//! The crate wires the rootcast substrate stack — topology, BGP anycast
//! routing, DNS, attack workloads, the Atlas-like measurement platform,
//! and RSSAC reporting — into the canonical Nov 30 / Dec 1 2015 scenario,
//! and provides one analysis module per table/figure of the paper.
//!
//! ## Quick start
//!
//! ```no_run
//! use rootcast::{ScenarioConfig, sim};
//!
//! let cfg = ScenarioConfig::small();
//! let out = sim::run(&cfg).expect("valid scenario");
//! let k = out.pipeline.letter(rootcast::Letter::K);
//! println!("K-root successful VPs per bin: {:?}", k.success.values());
//! ```

pub mod analysis;
pub mod config;
pub mod deployment;
pub mod engine;
pub mod error;
pub mod policy_model;
pub mod render;
pub mod sim;
pub mod sweep;

pub use config::{ConfigError, ScenarioConfig, SiteOverride};
pub use deployment::{nl_deployment, nov2015_deployments, LetterDeployment};
pub use engine::{
    render_metrics, FaultKind, FaultPlan, FaultSpec, Instrumentation, NoopInstrumentation,
    Profiler, RunProfile, RunStats, Substrate, Subsystem, TraceConfig, TraceEvent, TraceEventKind,
    TraceSnapshot,
};
pub use error::{AnalysisError, RootcastError, SweepError};
pub use sim::{run, run_observed, run_profiled, run_with_substrate, SimOutput};
pub use sweep::{
    output_digest, run_sweep, run_sweep_with, ConfigPatch, SeedMode, SweepAxis, SweepOptions,
    SweepPlan, SweepRecord, SweepReport, SweepRun,
};

// Re-export the vocabulary sweeps are written in: site tuning plus the
// attack-schedule types ConfigPatch accepts.
pub use rootcast_anycast::{SiteTuning, StressPolicy};
pub use rootcast_attack::{AttackSchedule, AttackWindow};

// Re-export the vocabulary types users need to consume the outputs.
pub use rootcast_dns::Letter;
pub use rootcast_netsim::{BinnedSeries, MetricsSnapshot, Reduce, SimDuration, SimTime};
