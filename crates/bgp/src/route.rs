//! Route representation and BGP-style preference ordering.
//!
//! We model the decision process that matters for anycast catchment
//! formation: **local preference by business relationship** (customer
//! routes beat peer routes beat provider routes — the Gao–Rexford
//! ordering), then **shortest AS path** (including origin prepending),
//! then **lowest accumulated latency** (the hot-potato/IGP-metric stage,
//! which is what makes anycast catchments broadly geographic), then a
//! deterministic router-id tiebreak. MEDs and iBGP are out of scope:
//! they do not change which *site* an AS selects, only intra-AS detail.

use rootcast_netsim::SimDuration;
use rootcast_topology::AsId;
use serde::{Deserialize, Serialize};

/// How a route was learned, in decreasing preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LearnedFrom {
    /// This AS originates the prefix (hosts an anycast site).
    Origin,
    /// Learned from a customer (highest local-pref among learned routes).
    Customer,
    /// Learned from a settlement-free peer.
    Peer,
    /// Learned from a transit provider (lowest local-pref).
    Provider,
}

impl LearnedFrom {
    /// Numeric local preference; larger is better.
    pub fn local_pref(self) -> u8 {
        match self {
            LearnedFrom::Origin => 3,
            LearnedFrom::Customer => 2,
            LearnedFrom::Peer => 1,
            LearnedFrom::Provider => 0,
        }
    }
}

/// Index of an origin (anycast site announcement) within a prefix's
/// origin table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OriginIdx(pub u32);

/// One AS's chosen route toward a prefix.
///
/// The derived `Ord` is lexicographic over the fields and exists only so
/// entries can ride in ordered containers deterministically; *routing*
/// preference is [`RouteEntry::better_than`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Which anycast origin (site) this route leads to.
    pub origin: OriginIdx,
    /// How the route was learned.
    pub learned: LearnedFrom,
    /// AS-path length as advertised (hops from origin, plus prepending).
    pub path_len: u16,
    /// The neighbor this AS forwards to (self for the origin host).
    pub next_hop: AsId,
    /// Accumulated one-way forwarding latency from this AS to the origin
    /// host along the chosen path (geography + per-hop overhead).
    pub latency: SimDuration,
}

impl RouteEntry {
    /// BGP decision process: does `self` beat `other`?
    ///
    /// Order: higher local-pref, then shorter AS path, then lowest
    /// accumulated latency — the hot-potato/IGP-metric stage of the real
    /// decision process, and the reason anycast catchments are broadly
    /// *geographic* — then lower next-hop id (router-id tiebreak).
    /// Total and antisymmetric for distinct routes, which makes
    /// selection deterministic.
    pub fn better_than(&self, other: &RouteEntry) -> bool {
        let lp_s = self.learned.local_pref();
        let lp_o = other.learned.local_pref();
        if lp_s != lp_o {
            return lp_s > lp_o;
        }
        if self.path_len != other.path_len {
            return self.path_len < other.path_len;
        }
        if self.latency != other.latency {
            return self.latency < other.latency;
        }
        self.next_hop < other.next_hop
    }

    /// A compact signature for route-change detection at collectors:
    /// two routes with the same signature are "the same route" for
    /// update-counting purposes.
    pub fn signature(&self) -> (u32, u16, u32) {
        (self.origin.0, self.path_len, self.next_hop.0)
    }
}

/// Announcement scope for a site (§2.1: *local* sites use BGP communities
/// such as NO_EXPORT/NOPEER to confine their catchment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// Announced normally; propagates everywhere policy allows.
    Global,
    /// Confined: the hosting AS uses the route and exports it only to its
    /// direct customers — never to peers or providers.
    Local,
}

/// One anycast origin: a site announcing the service prefix from a host AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Origin {
    /// The AS hosting this site.
    pub host: AsId,
    pub scope: Scope,
    /// AS-path prepending applied at announcement (0 = none). Used to
    /// de-prefer backup sites (H-root's primary/backup architecture).
    pub prepend: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(learned: LearnedFrom, path_len: u16, next_hop: u32) -> RouteEntry {
        RouteEntry {
            origin: OriginIdx(0),
            learned,
            path_len,
            next_hop: AsId(next_hop),
            latency: SimDuration::ZERO,
        }
    }

    #[test]
    fn customer_beats_shorter_peer() {
        let cust = entry(LearnedFrom::Customer, 9, 5);
        let peer = entry(LearnedFrom::Peer, 1, 5);
        assert!(cust.better_than(&peer));
        assert!(!peer.better_than(&cust));
    }

    #[test]
    fn shorter_path_wins_within_pref_class() {
        let a = entry(LearnedFrom::Peer, 2, 5);
        let b = entry(LearnedFrom::Peer, 3, 1);
        assert!(a.better_than(&b));
    }

    #[test]
    fn next_hop_tiebreak_is_antisymmetric() {
        let a = entry(LearnedFrom::Provider, 2, 1);
        let b = entry(LearnedFrom::Provider, 2, 9);
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));
    }

    #[test]
    fn local_pref_ordering_matches_gao_rexford() {
        assert!(LearnedFrom::Origin.local_pref() > LearnedFrom::Customer.local_pref());
        assert!(LearnedFrom::Customer.local_pref() > LearnedFrom::Peer.local_pref());
        assert!(LearnedFrom::Peer.local_pref() > LearnedFrom::Provider.local_pref());
    }
}
