//! Route collectors, modeled after BGPmon (§2.4.3).
//!
//! BGPmon peers with dozens of routers around the Internet and records
//! their BGP update streams. The paper counts route changes per root
//! letter in 10-minute bins (Figure 9) to corroborate that the site flips
//! seen from RIPE Atlas are route-driven.
//!
//! Our collector holds a fixed set of peer ASes. Every time the routing
//! table for a prefix is recomputed (a site announced or withdrew), the
//! collector diffs each peer's chosen route against the previous table
//! and counts one update per changed peer — plus a small path-exploration
//! surcharge, since a real convergence emits several transient updates
//! per final change.

use crate::engine::Rib;
use rootcast_netsim::{BinnedSeries, Coverage, SimDuration, SimTime};
use rootcast_topology::AsId;

/// One logged batch of updates at a collector.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateBatch {
    pub at: SimTime,
    /// Number of peers whose best route changed.
    pub changed_peers: usize,
    /// Total update messages observed (includes path exploration).
    pub messages: usize,
}

/// A BGPmon-style collector for one prefix.
#[derive(Debug, Clone)]
pub struct RouteCollector {
    peers: Vec<AsId>,
    /// Last observed route signature per peer (None = unreachable).
    last: Vec<Option<(u32, u16, u32)>>,
    /// Extra transient updates per real change, modeling path exploration.
    exploration_factor: usize,
    log: Vec<UpdateBatch>,
    /// When `Some`, the collector is dark (feed outage) since that time:
    /// observations update peer state but log nothing.
    dark_since: Option<SimTime>,
    /// Closed blackout windows, for coverage accounting.
    blackouts: Vec<(SimTime, SimTime)>,
}

impl RouteCollector {
    /// Create a collector peering with the given ASes.
    pub fn new(peers: Vec<AsId>) -> Self {
        let n = peers.len();
        RouteCollector {
            peers,
            last: vec![None; n],
            exploration_factor: 2,
            log: Vec::new(),
            dark_since: None,
            blackouts: Vec::new(),
        }
    }

    /// Number of peers (the paper's deployment had 152).
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Record the initial table without logging churn (session bring-up
    /// is not an event).
    pub fn prime(&mut self, rib: &Rib) {
        for (i, &peer) in self.peers.iter().enumerate() {
            self.last[i] = rib.route(peer).map(|r| r.signature());
        }
    }

    /// Observe a recomputed table at time `t`, logging any changes.
    /// Returns the number of peers whose route changed.
    pub fn observe(&mut self, t: SimTime, rib: &Rib) -> usize {
        let mut changed = 0;
        for (i, &peer) in self.peers.iter().enumerate() {
            let now = rib.route(peer).map(|r| r.signature());
            if now != self.last[i] {
                changed += 1;
                self.last[i] = now;
            }
        }
        if changed > 0 && self.dark_since.is_none() {
            self.log.push(UpdateBatch {
                at: t,
                changed_peers: changed,
                messages: changed * (1 + self.exploration_factor),
            });
        }
        changed
    }

    /// [`observe`](Self::observe) for callers that know exactly which
    /// ASes changed routes since the previous table (`changed[asn]` from
    /// [`Rib::diff_into`]): peers whose entry is unchanged are skipped
    /// without recomputing their signature. Entry equality implies
    /// signature equality, so the skip can never hide an update; debug
    /// builds audit that.
    pub fn observe_changed(&mut self, t: SimTime, rib: &Rib, changed_ases: &[bool]) -> usize {
        let mut changed = 0;
        for (i, &peer) in self.peers.iter().enumerate() {
            if !changed_ases[peer.0 as usize] {
                debug_assert_eq!(
                    rib.route(peer).map(|r| r.signature()),
                    self.last[i],
                    "peer {peer} skipped as unchanged but its signature moved"
                );
                continue;
            }
            let now = rib.route(peer).map(|r| r.signature());
            if now != self.last[i] {
                changed += 1;
                self.last[i] = now;
            }
        }
        if changed > 0 && self.dark_since.is_none() {
            self.log.push(UpdateBatch {
                at: t,
                changed_peers: changed,
                messages: changed * (1 + self.exploration_factor),
            });
        }
        changed
    }

    /// Start or end a feed blackout at time `t`. While dark the
    /// collector keeps tracking peer state (the routers do not stop
    /// routing) but records no updates — modeling a BGPmon observation
    /// gap. Redundant transitions are no-ops.
    pub fn set_dark(&mut self, t: SimTime, dark: bool) {
        match (self.dark_since, dark) {
            (None, true) => self.dark_since = Some(t),
            (Some(from), false) => {
                self.blackouts.push((from, t));
                self.dark_since = None;
            }
            _ => {}
        }
    }

    /// Is the feed currently dark?
    pub fn is_dark(&self) -> bool {
        self.dark_since.is_some()
    }

    /// Observation coverage over `[0, horizon)`: the fraction of wall
    /// time the feed was recording. An open blackout extends to the
    /// horizon.
    pub fn coverage(&self, horizon: SimTime) -> Coverage {
        let total = horizon.as_secs_f64();
        let mut missed = 0.0;
        for &(from, to) in &self.blackouts {
            let to = to.min(horizon);
            if to > from {
                missed += (to - from).as_secs_f64();
            }
        }
        if let Some(from) = self.dark_since {
            if horizon > from {
                missed += (horizon - from).as_secs_f64();
            }
        }
        Coverage {
            observed: (total - missed).max(0.0),
            expected: total,
        }
    }

    /// The raw update log.
    pub fn log(&self) -> &[UpdateBatch] {
        &self.log
    }

    /// Total messages across the whole log.
    pub fn total_messages(&self) -> usize {
        self.log.iter().map(|b| b.messages).sum()
    }

    /// Bin the update messages into a time series (Figure 9's y-axis).
    pub fn binned_messages(&self, bin: SimDuration, n_bins: usize) -> BinnedSeries {
        let mut s = BinnedSeries::zeros(bin, n_bins);
        for b in &self.log {
            s.add_at(b.at, b.messages as f64);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::compute_rib_scoped;
    use crate::route::{Origin, Scope};
    use rootcast_topology::{gen, TopologyParams};

    fn build() -> (rootcast_topology::AsGraph, Vec<AsId>) {
        let rng = rootcast_netsim::SimRng::new(11);
        let g = gen::generate(&TopologyParams::tiny(), &rng);
        let stubs = g.by_tier(rootcast_topology::Tier::Stub);
        (g, stubs)
    }

    fn origin(host: AsId) -> Origin {
        Origin {
            host,
            scope: Scope::Global,
            prepend: 0,
        }
    }

    #[test]
    fn no_change_no_log() {
        let (g, stubs) = build();
        let origins = [origin(stubs[0]), origin(stubs[1])];
        let rib = compute_rib_scoped(&g, &origins, &[true, true]);
        let mut c = RouteCollector::new(stubs[2..10].to_vec());
        c.prime(&rib);
        assert_eq!(c.observe(SimTime::from_mins(5), &rib), 0);
        assert!(c.log().is_empty());
    }

    #[test]
    fn withdrawal_produces_updates() {
        let (g, stubs) = build();
        let origins = [origin(stubs[0]), origin(stubs[1])];
        let before = compute_rib_scoped(&g, &origins, &[true, true]);
        let after = compute_rib_scoped(&g, &origins, &[false, true]);
        let mut c = RouteCollector::new(stubs[2..12].to_vec());
        c.prime(&before);
        let changed = c.observe(SimTime::from_mins(10), &after);
        // At least the peers previously in site 0's catchment change.
        let moved = c
            .peers
            .iter()
            .filter(|&&p| before.origin_of(p) != after.origin_of(p))
            .count();
        assert_eq!(changed, moved);
        if changed > 0 {
            assert_eq!(c.log().len(), 1);
            assert_eq!(c.log()[0].messages, changed * 3);
        }
    }

    #[test]
    fn observe_changed_matches_full_scan() {
        let (g, stubs) = build();
        let origins = [origin(stubs[0]), origin(stubs[1])];
        let before = compute_rib_scoped(&g, &origins, &[true, true]);
        let after = compute_rib_scoped(&g, &origins, &[false, true]);
        let mut changed_ases = Vec::new();
        after.diff_into(&before, &mut changed_ases);

        let mut full = RouteCollector::new(stubs[2..12].to_vec());
        let mut fast = full.clone();
        full.prime(&before);
        fast.prime(&before);
        let t = SimTime::from_mins(10);
        assert_eq!(
            full.observe(t, &after),
            fast.observe_changed(t, &after, &changed_ases)
        );
        assert_eq!(full.log(), fast.log());
        assert_eq!(full.last, fast.last);
        // A re-observation of the same table diffs to all-unchanged and
        // must log nothing.
        let none = vec![false; g.len()];
        assert_eq!(fast.observe_changed(t, &after, &none), 0);
        assert_eq!(full.log(), fast.log());
    }

    #[test]
    fn blackout_suppresses_logging_and_reports_coverage() {
        let (g, stubs) = build();
        let origins = [origin(stubs[0]), origin(stubs[1])];
        let before = compute_rib_scoped(&g, &origins, &[true, true]);
        let after = compute_rib_scoped(&g, &origins, &[false, true]);
        let mut c = RouteCollector::new(stubs[2..12].to_vec());
        c.prime(&before);
        c.set_dark(SimTime::from_mins(5), true);
        assert!(c.is_dark());
        // Changes during the blackout update state but log nothing.
        c.observe(SimTime::from_mins(10), &after);
        assert!(c.log().is_empty());
        c.set_dark(SimTime::from_mins(20), false);
        assert!(!c.is_dark());
        // Re-observing the same table after the blackout stays quiet:
        // the dark observation already absorbed the diff.
        assert_eq!(c.observe(SimTime::from_mins(21), &after), 0);
        let cov = c.coverage(SimTime::from_mins(60));
        assert!((cov.fraction() - 45.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn open_blackout_extends_to_horizon() {
        let (_, stubs) = build();
        let mut c = RouteCollector::new(stubs[2..4].to_vec());
        c.set_dark(SimTime::from_mins(30), true);
        let cov = c.coverage(SimTime::from_mins(60));
        assert!((cov.fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn binned_series_places_updates_in_time() {
        let (g, stubs) = build();
        let origins = [origin(stubs[0]), origin(stubs[1])];
        let before = compute_rib_scoped(&g, &origins, &[true, true]);
        let after = compute_rib_scoped(&g, &origins, &[false, true]);
        let mut c = RouteCollector::new(stubs[2..20].to_vec());
        c.prime(&before);
        c.observe(SimTime::from_mins(25), &after);
        let s = c.binned_messages(SimDuration::from_mins(10), 6);
        // All messages land in bin 2 (minutes 20-30).
        let total: f64 = s.values().iter().sum();
        assert_eq!(s.values()[2], total);
    }
}
