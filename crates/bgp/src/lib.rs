//! # rootcast-bgp
//!
//! Policy-aware path-vector routing for the rootcast reproduction of
//! *"Anycast vs. DDoS"* (IMC 2016).
//!
//! IP anycast works because BGP associates each network with one of the
//! sites announcing a shared prefix — the site's **catchment** (§2.1 of
//! the paper). This crate computes those catchments over a
//! [`rootcast_topology::AsGraph`]:
//!
//! * [`route`] — route entries, the Gao–Rexford preference order
//!   (customer > peer > provider, then path length, then a deterministic
//!   tiebreak), announcement [`Scope`] (global vs. NO_EXPORT-style local)
//!   and AS-path prepending;
//! * [`engine`] — the three-phase stable-routing computation
//!   ([`compute_rib_scoped`]) producing a [`Rib`]: every AS's chosen
//!   route, its origin site, and the accumulated path latency. Route
//!   *withdrawal* — one of the two stress responses the paper identifies
//!   (§2.2) — is expressed by recomputing with a smaller origin set;
//! * [`collector`] — BGPmon-style update observation ([`RouteCollector`])
//!   backing Figure 9.

pub mod collector;
pub mod engine;
pub mod route;

pub use collector::{RouteCollector, UpdateBatch};
pub use engine::{
    compute_rib, compute_rib_into, compute_rib_scoped, compute_rib_scoped_into, Rib, RibScratch,
    HOP_OVERHEAD,
};
pub use route::{LearnedFrom, Origin, OriginIdx, RouteEntry, Scope};
