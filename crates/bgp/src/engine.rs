//! Policy-routing computation: from a set of active anycast origins to a
//! per-AS routing table (and thus the **catchment** of every site).
//!
//! ## Algorithm
//!
//! Under Gao–Rexford export rules, stable routing can be computed in three
//! phases (this is the standard result exploited by AS-level simulators):
//!
//! 1. **Customer phase** — routes flow *upward* (customer → provider)
//!    from the origins. Every AS on such a chain learns the route from a
//!    customer, the most-preferred class, so nothing computed later can
//!    displace these entries.
//! 2. **Peer phase** — every AS holding an origin/customer route offers
//!    it across peering edges. Peer routes are accepted only by ASes with
//!    nothing better and are not re-exported sideways or upward.
//! 3. **Provider phase** — routes flow *downward* (provider → customer)
//!    from every AS that has any route; customers without better routes
//!    adopt them and continue downward.
//!
//! Within each phase we run a Dijkstra-style expansion ordered by
//! advertised path length with a deterministic tiebreak, so the outcome is
//! unique and reproducible.
//!
//! Withdrawals are modeled by recomputing with a smaller active-origin
//! set; the [`crate::collector`] module diffs successive tables the way
//! BGPmon's peers observe update churn.

use crate::route::{LearnedFrom, Origin, OriginIdx, RouteEntry, Scope};
use rootcast_netsim::SimDuration;
use rootcast_topology::{AsGraph, AsId, Relation};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Fixed per-AS-hop forwarding/processing overhead added on top of
/// geographic propagation delay.
pub const HOP_OVERHEAD: SimDuration = SimDuration::from_micros(300);

/// The routing table for one prefix: each AS's chosen route, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct Rib {
    entries: Vec<Option<RouteEntry>>,
}

impl Rib {
    /// The chosen route at `asn`.
    pub fn route(&self, asn: AsId) -> Option<&RouteEntry> {
        self.entries[asn.0 as usize].as_ref()
    }

    /// The origin (site) `asn`'s traffic reaches, if reachable.
    pub fn origin_of(&self, asn: AsId) -> Option<OriginIdx> {
        self.route(asn).map(|r| r.origin)
    }

    /// One-way latency from `asn` to its chosen site.
    pub fn latency_of(&self, asn: AsId) -> Option<SimDuration> {
        self.route(asn).map(|r| r.latency)
    }

    /// Number of ASes with any route.
    pub fn reachable_count(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Iterate `(AsId, &RouteEntry)` for all routed ASes, ascending id.
    pub fn iter(&self) -> impl Iterator<Item = (AsId, &RouteEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|r| (AsId(i as u32), r)))
    }

    /// Catchment sizes: for each origin index, how many ASes route to it.
    pub fn catchment_sizes(&self, n_origins: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_origins];
        for e in self.entries.iter().flatten() {
            counts[e.origin.0 as usize] += 1;
        }
        counts
    }

    /// An empty RIB of the right size (nothing reachable).
    pub fn unreachable(n_ases: usize) -> Rib {
        Rib {
            entries: vec![None; n_ases],
        }
    }

    /// Mark which ASes chose a different route in `self` than in `prev`:
    /// `changed[asn]` is set iff the entries differ (route appeared,
    /// disappeared, or any field of the chosen route moved). Entry
    /// equality is stricter than the collector's peer signature, so a
    /// consumer that skips unchanged ASes can never miss an update.
    pub fn diff_into(&self, prev: &Rib, changed: &mut Vec<bool>) {
        assert_eq!(self.entries.len(), prev.entries.len());
        changed.clear();
        changed.extend(
            self.entries
                .iter()
                .zip(&prev.entries)
                .map(|(cur, old)| cur != old),
        );
    }
}

/// Compute the stable routing table for a prefix announced by the active
/// subset of `origins`.
///
/// `active[i]` gates `origins[i]`; this is how route withdrawals are
/// expressed (a withdrawn site is simply not an origin for the recompute).
pub fn compute_rib(graph: &AsGraph, origins: &[Origin], active: &[bool]) -> Rib {
    let mut rib = Rib::unreachable(graph.len());
    compute_rib_into(graph, origins, active, &mut rib);
    rib
}

/// [`compute_rib`] writing into a caller-owned table, so reconvergence
/// loops (withdraw/re-announce churn, collector replay) reuse one
/// allocation instead of building a fresh `Vec` per recompute. `rib` is
/// resized to the graph and fully overwritten; prior contents are
/// irrelevant.
pub fn compute_rib_into(graph: &AsGraph, origins: &[Origin], active: &[bool], rib: &mut Rib) {
    assert_eq!(origins.len(), active.len());
    let n = graph.len();
    rib.entries.clear();
    rib.entries.resize(n, None);
    let entries = &mut rib.entries;

    // Seed origin-host entries. If the same AS hosts several active sites
    // (possible in degenerate configs), the lowest origin index wins.
    for (i, (o, &act)) in origins.iter().zip(active).enumerate() {
        if !act {
            continue;
        }
        let idx = o.host.0 as usize;
        let seed = RouteEntry {
            origin: OriginIdx(i as u32),
            learned: LearnedFrom::Origin,
            path_len: o.prepend,
            next_hop: o.host,
            latency: SimDuration::ZERO,
        };
        match &entries[idx] {
            Some(existing) if !seed.better_than(existing) => {}
            _ => entries[idx] = Some(seed),
        }
    }

    // --- Phase 1: customer routes flow upward. ---
    run_phase(graph, entries, Phase::Customer);
    // --- Phase 2: one-hop peer export. ---
    // Collect offers first so peer routes never cascade through other
    // peers (valley-free: at most one peering edge per path).
    let mut peer_offers: Vec<(AsId, RouteEntry)> = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        let Some(r) = entry else { continue };
        if !exportable_sideways(r, origins) {
            continue;
        }
        let u = AsId(i as u32);
        for adj in graph.neighbors(u) {
            if adj.relation == Relation::Peer {
                peer_offers.push((
                    adj.neighbor,
                    RouteEntry {
                        origin: r.origin,
                        learned: LearnedFrom::Peer,
                        path_len: r.path_len + 1,
                        next_hop: u,
                        latency: r.latency + graph.geo_delay(u, adj.neighbor) + HOP_OVERHEAD,
                    },
                ));
            }
        }
    }
    for (v, offer) in peer_offers {
        let slot = &mut entries[v.0 as usize];
        match slot {
            Some(existing) if !offer.better_than(existing) => {}
            _ => *slot = Some(offer),
        }
    }
    // --- Phase 3: provider routes flow downward. ---
    run_phase(graph, entries, Phase::Provider);
}

/// Whether `r` may be exported to peers/providers: only origin or
/// customer-learned routes (Gao–Rexford), and never for Local-scope
/// origins, whose host confines the route to its customer cone.
fn exportable_sideways(r: &RouteEntry, origins: &[Origin]) -> bool {
    let scope_ok = origins[r.origin.0 as usize].scope == Scope::Global;
    scope_ok && matches!(r.learned, LearnedFrom::Origin | LearnedFrom::Customer)
}

#[derive(Clone, Copy, PartialEq)]
enum Phase {
    /// Export upward across customer→provider edges.
    Customer,
    /// Export downward across provider→customer edges.
    Provider,
}

/// Export frontier ordered by `(path_len, latency, next_hop, target)`
/// so expansion order — and therefore every tiebreak — is deterministic.
type ExportHeap = BinaryHeap<Reverse<(u16, SimDuration, u32, u32, RouteEntry)>>;

/// Dijkstra-style expansion for one phase. The heap is ordered by
/// `(path_len, next_hop, target)` so expansion order — and therefore
/// every tiebreak — is deterministic.
fn run_phase(graph: &AsGraph, entries: &mut [Option<RouteEntry>], phase: Phase) {
    let mut heap: ExportHeap = BinaryHeap::new();

    let push_exports = |heap: &mut ExportHeap,
                        graph: &AsGraph,
                        u: AsId,
                        r: &RouteEntry,
                        origins_exportable: bool| {
        for adj in graph.neighbors(u) {
            let target_rel_ok = match phase {
                // u exports to its providers (neighbor is Provider to u).
                Phase::Customer => adj.relation == Relation::Provider,
                // u exports to its customers.
                Phase::Provider => adj.relation == Relation::Customer,
            };
            if !target_rel_ok {
                continue;
            }
            if phase == Phase::Customer && !origins_exportable {
                continue;
            }
            let learned = match phase {
                Phase::Customer => LearnedFrom::Customer,
                Phase::Provider => LearnedFrom::Provider,
            };
            let cand = RouteEntry {
                origin: r.origin,
                learned,
                path_len: r.path_len + 1,
                next_hop: u,
                latency: r.latency + graph.geo_delay(u, adj.neighbor) + HOP_OVERHEAD,
            };
            heap.push(Reverse((
                cand.path_len,
                cand.latency,
                cand.next_hop.0,
                adj.neighbor.0,
                cand,
            )));
        }
    };

    // Seed the heap from every AS that currently has a route. In the
    // customer phase only origin/customer routes export upward (Local
    // scope is resolved by `compute_rib_scoped` before we get here); in
    // the provider phase every AS exports its best route downward.
    for (i, entry) in entries.iter().enumerate() {
        let Some(r) = *entry else { continue };
        let u = AsId(i as u32);
        match phase {
            Phase::Customer => {
                if matches!(r.learned, LearnedFrom::Origin | LearnedFrom::Customer) {
                    push_exports(&mut heap, graph, u, &r, true);
                }
            }
            Phase::Provider => push_exports(&mut heap, graph, u, &r, true),
        }
    }

    while let Some(Reverse((_, _, _, target, cand))) = heap.pop() {
        let slot = &mut entries[target as usize];
        let improves = match slot {
            Some(existing) => cand.better_than(existing),
            None => true,
        };
        if !improves {
            continue;
        }
        *slot = Some(cand);
        let u = AsId(target);
        match phase {
            Phase::Customer => {
                // Newly learned customer route keeps flowing upward.
                push_exports(&mut heap, graph, u, &cand, true);
            }
            Phase::Provider => {
                // Newly learned provider route keeps flowing downward.
                push_exports(&mut heap, graph, u, &cand, true);
            }
        }
    }
}

/// Compute the RIB with correct Local-scope semantics.
///
/// This is the public entry point used by the anycast layer. It differs
/// from [`compute_rib`] in that Local-scope origins are restricted to the
/// host AS plus its customer cone: implemented by running the main
/// computation with global origins only, then overlaying each local
/// origin's customer cone where the local route is preferred.
pub fn compute_rib_scoped(graph: &AsGraph, origins: &[Origin], active: &[bool]) -> Rib {
    let mut rib = Rib::unreachable(graph.len());
    compute_rib_scoped_into(graph, origins, active, &mut rib, &mut RibScratch::default());
    rib
}

/// Reusable working buffers for [`compute_rib_scoped_into`], owned by the
/// caller so back-to-back recomputes (policy oscillation) allocate
/// nothing. Contents are overwritten on every call.
#[derive(Debug, Clone, Default)]
pub struct RibScratch {
    global_active: Vec<bool>,
    reuses: u64,
    allocs: u64,
}

impl RibScratch {
    /// How often recomputes through this scratch reused a warm buffer
    /// versus having to (re)allocate it: `(reuses, allocs)`. The first
    /// recompute always allocates; a steady-state caller should see
    /// every subsequent one land in `reuses`.
    pub fn reuse_stats(&self) -> (u64, u64) {
        (self.reuses, self.allocs)
    }
}

/// [`compute_rib_scoped`] writing into a caller-owned table and scratch
/// buffers. `rib` is resized and fully overwritten.
pub fn compute_rib_scoped_into(
    graph: &AsGraph,
    origins: &[Origin],
    active: &[bool],
    rib: &mut Rib,
    scratch: &mut RibScratch,
) {
    assert_eq!(origins.len(), active.len());
    if scratch.global_active.capacity() >= origins.len() {
        scratch.reuses += 1;
    } else {
        scratch.allocs += 1;
    }
    // Pass 1: global origins route normally.
    scratch.global_active.clear();
    scratch.global_active.extend(
        origins
            .iter()
            .zip(active)
            .map(|(o, &a)| a && o.scope == Scope::Global),
    );
    compute_rib_into(graph, origins, &scratch.global_active, rib);

    // Pass 2: overlay each active local origin onto its customer cone.
    // Within the cone the local route competes on standard preference
    // (it arrives as Origin at the host, Provider-learned below — but a
    // customer cone sees it as a customer-side route from its provider;
    // we model adoption as: host always prefers its own site; descendants
    // prefer it only if they lack a customer/peer route, mirroring how a
    // NO_EXPORT route from a provider competes at equal local-pref).
    for (i, (o, &act)) in origins.iter().zip(active).enumerate() {
        if !act || o.scope != Scope::Local {
            continue;
        }
        overlay_local_origin(graph, rib, o, OriginIdx(i as u32));
    }
}

fn overlay_local_origin(graph: &AsGraph, rib: &mut Rib, origin: &Origin, idx: OriginIdx) {
    // Host AS: always prefers the in-house site.
    let host_entry = RouteEntry {
        origin: idx,
        learned: LearnedFrom::Origin,
        path_len: origin.prepend,
        next_hop: origin.host,
        latency: SimDuration::ZERO,
    };
    rib.entries[origin.host.0 as usize] = Some(host_entry);

    // BFS down the customer cone; descendants treat the route as
    // provider-learned and adopt it only when it beats what they have.
    let mut heap: ExportHeap = BinaryHeap::new();
    let seed = host_entry;
    for adj in graph.neighbors(origin.host) {
        if adj.relation == Relation::Customer {
            let cand = RouteEntry {
                origin: idx,
                learned: LearnedFrom::Provider,
                path_len: seed.path_len + 1,
                next_hop: origin.host,
                latency: seed.latency + graph.geo_delay(origin.host, adj.neighbor) + HOP_OVERHEAD,
            };
            heap.push(Reverse((
                cand.path_len,
                cand.latency,
                cand.next_hop.0,
                adj.neighbor.0,
                cand,
            )));
        }
    }
    while let Some(Reverse((_, _, _, target, cand))) = heap.pop() {
        let slot = &mut rib.entries[target as usize];
        let improves = match slot {
            Some(existing) => cand.better_than(existing),
            None => true,
        };
        if !improves {
            continue;
        }
        *slot = Some(cand);
        let u = AsId(target);
        for adj in graph.neighbors(u) {
            if adj.relation == Relation::Customer {
                let next = RouteEntry {
                    origin: idx,
                    learned: LearnedFrom::Provider,
                    path_len: cand.path_len + 1,
                    next_hop: u,
                    latency: cand.latency + graph.geo_delay(u, adj.neighbor) + HOP_OVERHEAD,
                };
                heap.push(Reverse((
                    next.path_len,
                    next.latency,
                    next.next_hop.0,
                    adj.neighbor.0,
                    next,
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootcast_topology::{geo::city_by_code, AsGraph, Tier};

    /// Build a small hand-wired topology:
    ///
    /// ```text
    ///        T1a ===== T1b          (tier-1 peer mesh)
    ///       /    \    /    \
    ///     T2a     T2b      T2c     (customers of tier-1s)
    ///     /  \      \       |
    ///    S1  S2     S3      S4     (stubs)
    /// ```
    fn testnet() -> (AsGraph, Vec<AsId>) {
        let (ams, _) = city_by_code("AMS").unwrap();
        let (lhr, _) = city_by_code("LHR").unwrap();
        let (fra, _) = city_by_code("FRA").unwrap();
        let (iad, _) = city_by_code("IAD").unwrap();
        let mut g = AsGraph::new();
        let t1a = g.add_node(Tier::Tier1, ams); // 0
        let t1b = g.add_node(Tier::Tier1, iad); // 1
        let t2a = g.add_node(Tier::Tier2, lhr); // 2
        let t2b = g.add_node(Tier::Tier2, fra); // 3
        let t2c = g.add_node(Tier::Tier2, iad); // 4
        let s1 = g.add_node(Tier::Stub, lhr); // 5
        let s2 = g.add_node(Tier::Stub, lhr); // 6
        let s3 = g.add_node(Tier::Stub, fra); // 7
        let s4 = g.add_node(Tier::Stub, iad); // 8
        g.add_edge(t1a, t1b, Relation::Peer);
        g.add_edge(t1a, t2a, Relation::Customer);
        g.add_edge(t1a, t2b, Relation::Customer);
        g.add_edge(t1b, t2b, Relation::Customer);
        g.add_edge(t1b, t2c, Relation::Customer);
        g.add_edge(t2a, s1, Relation::Customer);
        g.add_edge(t2a, s2, Relation::Customer);
        g.add_edge(t2b, s3, Relation::Customer);
        g.add_edge(t2c, s4, Relation::Customer);
        assert!(g.validate().is_ok());
        (g, vec![t1a, t1b, t2a, t2b, t2c, s1, s2, s3, s4])
    }

    fn global(host: AsId) -> Origin {
        Origin {
            host,
            scope: Scope::Global,
            prepend: 0,
        }
    }

    #[test]
    fn single_origin_reaches_everyone() {
        let (g, ids) = testnet();
        let origins = [global(ids[5])]; // S1 hosts the service
        let rib = compute_rib_scoped(&g, &origins, &[true]);
        assert_eq!(rib.reachable_count(), g.len());
        // Everyone routes to origin 0.
        for (_, r) in rib.iter() {
            assert_eq!(r.origin, OriginIdx(0));
        }
    }

    #[test]
    fn customer_route_preferred_over_peer_route() {
        let (g, ids) = testnet();
        // Origin at S3 (customer cone of both T1a and T1b).
        let origins = [global(ids[7])];
        let rib = compute_rib_scoped(&g, &origins, &[true]);
        // T1a hears S3's route from its customer T2b (customer route) and
        // potentially from its peer T1b; the customer route must win.
        let r = rib.route(ids[0]).unwrap();
        assert_eq!(r.learned, LearnedFrom::Customer);
        assert_eq!(r.next_hop, ids[3]);
    }

    #[test]
    fn valley_free_no_peer_cascade() {
        let (g, ids) = testnet();
        // Origin at S4 under T2c under T1b only. T1a learns via peer T1b.
        let origins = [global(ids[8])];
        let rib = compute_rib_scoped(&g, &origins, &[true]);
        let t1a = rib.route(ids[0]).unwrap();
        assert_eq!(t1a.learned, LearnedFrom::Peer);
        // T2a (customer of T1a) still gets the route (downward export of a
        // peer-learned route is allowed).
        let t2a = rib.route(ids[2]).unwrap();
        assert_eq!(t2a.learned, LearnedFrom::Provider);
        // And S1 below it.
        assert!(rib.route(ids[5]).is_some());
    }

    #[test]
    fn anycast_splits_catchments_geographically() {
        let (g, ids) = testnet();
        // Two sites: one at S1 (Europe), one at S4 (US).
        let origins = [global(ids[5]), global(ids[8])];
        let rib = compute_rib_scoped(&g, &origins, &[true, true]);
        // S2 shares T2a with S1: customer route wins -> site 0.
        assert_eq!(rib.origin_of(ids[6]), Some(OriginIdx(0)));
        // T2c and T1b are in S4's cone -> site 1.
        assert_eq!(rib.origin_of(ids[4]), Some(OriginIdx(1)));
        assert_eq!(rib.origin_of(ids[1]), Some(OriginIdx(1)));
        let sizes = rib.catchment_sizes(2);
        assert_eq!(sizes.iter().sum::<usize>(), g.len());
        assert!(sizes[0] > 0 && sizes[1] > 0);
    }

    #[test]
    fn withdrawal_shifts_catchment() {
        let (g, ids) = testnet();
        let origins = [global(ids[5]), global(ids[8])];
        let before = compute_rib_scoped(&g, &origins, &[true, true]);
        assert_eq!(before.origin_of(ids[6]), Some(OriginIdx(0)));
        // Withdraw site 0: everyone must move to site 1.
        let after = compute_rib_scoped(&g, &origins, &[false, true]);
        assert_eq!(after.origin_of(ids[6]), Some(OriginIdx(1)));
        assert_eq!(after.reachable_count(), g.len());
        assert_eq!(after.catchment_sizes(2), vec![0, g.len()]);
    }

    #[test]
    fn all_withdrawn_means_unreachable() {
        let (g, ids) = testnet();
        let origins = [global(ids[5])];
        let rib = compute_rib_scoped(&g, &origins, &[false]);
        assert_eq!(rib.reachable_count(), 0);
    }

    #[test]
    fn local_scope_confines_to_customer_cone() {
        let (g, ids) = testnet();
        // Local site hosted at T2a; global site at S4.
        let origins = [
            Origin {
                host: ids[2],
                scope: Scope::Local,
                prepend: 0,
            },
            global(ids[8]),
        ];
        let rib = compute_rib_scoped(&g, &origins, &[true, true]);
        // Host and its stub customers use the local site.
        assert_eq!(rib.origin_of(ids[2]), Some(OriginIdx(0)));
        assert_eq!(rib.origin_of(ids[5]), Some(OriginIdx(0)));
        assert_eq!(rib.origin_of(ids[6]), Some(OriginIdx(0)));
        // Outside the cone nobody sees the local site.
        assert_eq!(rib.origin_of(ids[0]), Some(OriginIdx(1)));
        assert_eq!(rib.origin_of(ids[1]), Some(OriginIdx(1)));
        assert_eq!(rib.origin_of(ids[7]), Some(OriginIdx(1)));
    }

    #[test]
    fn prepending_deprefers_backup_site() {
        let (g, ids) = testnet();
        // Primary at S3, backup at S4 with heavy prepend. T1b sees both as
        // customer routes; prepending must steer it to the primary.
        let origins = [
            global(ids[7]),
            Origin {
                host: ids[8],
                scope: Scope::Global,
                prepend: 4,
            },
        ];
        let rib = compute_rib_scoped(&g, &origins, &[true, true]);
        assert_eq!(rib.origin_of(ids[1]), Some(OriginIdx(0)));
        // Withdraw the primary: backup takes over everywhere.
        let rib2 = compute_rib_scoped(&g, &origins, &[false, true]);
        assert_eq!(rib2.origin_of(ids[1]), Some(OriginIdx(1)));
        assert_eq!(rib2.reachable_count(), g.len());
    }

    #[test]
    fn latency_accumulates_along_path() {
        let (g, ids) = testnet();
        let origins = [global(ids[5])];
        let rib = compute_rib_scoped(&g, &origins, &[true]);
        // The origin host has zero latency; everyone else positive.
        assert_eq!(rib.latency_of(ids[5]), Some(SimDuration::ZERO));
        for (asn, r) in rib.iter() {
            if asn != ids[5] {
                assert!(r.latency > SimDuration::ZERO, "AS {asn} latency zero");
            }
        }
        // A two-hop path has at least two hop overheads.
        let s4 = rib.latency_of(ids[8]).unwrap();
        assert!(s4 >= HOP_OVERHEAD * 2);
    }

    #[test]
    fn into_variants_match_allocating_versions_and_diff_is_exact() {
        let (g, ids) = testnet();
        let origins = [global(ids[5]), global(ids[8])];
        let before = compute_rib_scoped(&g, &origins, &[true, true]);
        // Deliberately wrong-sized buffer: must be resized and overwritten.
        let mut rib = Rib::unreachable(1);
        let mut scratch = RibScratch::default();
        compute_rib_scoped_into(&g, &origins, &[true, true], &mut rib, &mut scratch);
        assert_eq!(rib, before);
        // Recompute a withdrawal into the same buffers.
        compute_rib_scoped_into(&g, &origins, &[false, true], &mut rib, &mut scratch);
        let after = compute_rib_scoped(&g, &origins, &[false, true]);
        assert_eq!(rib, after);
        let mut changed = Vec::new();
        rib.diff_into(&before, &mut changed);
        assert_eq!(changed.len(), g.len());
        for (i, &c) in changed.iter().enumerate() {
            let asn = AsId(i as u32);
            assert_eq!(c, before.route(asn) != after.route(asn), "AS {asn}");
        }
    }

    #[test]
    fn deterministic_tiebreak_is_stable() {
        let (g, ids) = testnet();
        let origins = [global(ids[5]), global(ids[8])];
        let a = compute_rib_scoped(&g, &origins, &[true, true]);
        let b = compute_rib_scoped(&g, &origins, &[true, true]);
        assert_eq!(a, b);
    }
}
