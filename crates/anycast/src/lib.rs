//! # rootcast-anycast
//!
//! The anycast service model for the rootcast reproduction of *"Anycast
//! vs. DDoS"* (IMC 2016): letters made of sites, sites made of servers,
//! and the two stress responses the paper identifies — **withdraw** and
//! **degraded absorption** (§2.2).
//!
//! * [`policy`] — [`StressPolicy`] (absorb / withdraw with sustain and
//!   retry), [`LoadBalancerMode`] (per-server behaviour under stress,
//!   §3.5), and the overload state machine;
//! * [`site`] — [`SiteSpec`]/[`SiteState`]: capacity, bufferbloat-depth
//!   ingress queue, announcement state, per-server selection;
//! * [`facility`] — shared data-center links that couple co-located
//!   services (collateral damage, §3.6);
//! * [`service`] — [`AnycastService`]: origins + RIB + fluid stepping +
//!   probe interface; the unit the simulation advances.

pub mod facility;
pub mod policy;
pub mod service;
pub mod site;

pub use facility::FacilityTable;
pub use policy::{LoadBalancerMode, OverloadTracker, StressPolicy};
pub use service::{AnycastService, CatchmentIndex, ProbeView, RoutingChanges};
pub use site::{FacilityId, SiteIdx, SiteSpec, SiteState, SiteTuning};
