//! Anycast sites and the servers inside them (Figure 1's `s_*`/`r_*`).

use crate::policy::{LoadBalancerMode, OverloadTracker, StressPolicy};
use rootcast_bgp::Scope;
use rootcast_netsim::stats::mix64;
use rootcast_netsim::{FluidQueue, SimDuration, SimTime};
use rootcast_topology::AsId;
use serde::{Deserialize, Serialize};

/// Index of a site within its service.
pub type SiteIdx = usize;

/// Identifier of a shared facility (data center); sites sharing one also
/// share its ingress link (the collateral-damage coupling of §3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FacilityId(pub u32);

/// Static description of one anycast site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Airport code, uppercase (`AMS`).
    pub code: String,
    /// The AS hosting the site (its BGP announcement point).
    pub host_as: AsId,
    /// Global or local (NO_EXPORT-confined) announcement.
    pub scope: Scope,
    /// AS-path prepending at announcement (backup sites).
    pub prepend: u16,
    /// Number of servers behind the load balancer.
    pub n_servers: u16,
    /// Aggregate serving capacity, queries/second.
    pub capacity_qps: f64,
    /// Ingress buffer depth in queries (bufferbloat: large buffers turn
    /// overload into seconds of delay instead of immediate loss).
    pub buffer_queries: f64,
    pub stress_policy: StressPolicy,
    pub lb_mode: LoadBalancerMode,
    /// Facility this site lives in, if shared with other services.
    pub facility: Option<FacilityId>,
}

/// Non-routing tuning knobs for one deployed site: serving capacity,
/// ingress buffer depth, and the stress policy. These are exactly the
/// fields a scenario may override *after* the expensive substrate
/// (topology + RIB + probe calibration) is built: none of them feeds
/// the RIB (which depends only on host AS / scope / prepend /
/// announcement) or a calibration probe at `t = 0` (empty queues, no
/// overload episodes). Routing-relevant fields are deliberately not
/// here — changing them would invalidate a shared substrate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteTuning {
    /// Replace the aggregate serving capacity, q/s.
    pub capacity_qps: Option<f64>,
    /// Replace the ingress buffer depth, queries.
    pub buffer_queries: Option<f64>,
    /// Replace the stress policy.
    pub stress_policy: Option<StressPolicy>,
}

impl SiteTuning {
    /// No-op tuning (all fields `None`).
    pub fn none() -> SiteTuning {
        SiteTuning::default()
    }

    pub fn with_capacity(mut self, qps: f64) -> SiteTuning {
        self.capacity_qps = Some(qps);
        self
    }

    pub fn with_buffer(mut self, queries: f64) -> SiteTuning {
        self.buffer_queries = Some(queries);
        self
    }

    pub fn with_policy(mut self, p: StressPolicy) -> SiteTuning {
        self.stress_policy = Some(p);
        self
    }

    pub fn is_none(&self) -> bool {
        self.capacity_qps.is_none() && self.buffer_queries.is_none() && self.stress_policy.is_none()
    }
}

impl SiteSpec {
    /// A plain global site with sensible defaults: 3 servers, 2-minute
    /// buffer at capacity (heavy bufferbloat), absorb policy.
    pub fn global(code: &str, host_as: AsId, capacity_qps: f64) -> SiteSpec {
        SiteSpec {
            code: code.to_ascii_uppercase(),
            host_as,
            scope: Scope::Global,
            prepend: 0,
            n_servers: 3,
            capacity_qps,
            buffer_queries: capacity_qps * 1.5,
            stress_policy: StressPolicy::Absorb,
            lb_mode: LoadBalancerMode::SharedLink,
            facility: None,
        }
    }

    /// Builder-style adjustments.
    pub fn with_policy(mut self, p: StressPolicy) -> SiteSpec {
        self.stress_policy = p;
        self
    }

    pub fn with_scope(mut self, s: Scope) -> SiteSpec {
        self.scope = s;
        self
    }

    pub fn with_servers(mut self, n: u16) -> SiteSpec {
        assert!(n >= 1);
        self.n_servers = n;
        self
    }

    pub fn with_lb_mode(mut self, m: LoadBalancerMode) -> SiteSpec {
        self.lb_mode = m;
        self
    }

    pub fn with_prepend(mut self, p: u16) -> SiteSpec {
        self.prepend = p;
        self
    }

    pub fn with_facility(mut self, f: FacilityId) -> SiteSpec {
        self.facility = Some(f);
        self
    }

    pub fn with_buffer(mut self, queries: f64) -> SiteSpec {
        self.buffer_queries = queries;
        self
    }
}

/// Dynamic state of one site during a run.
#[derive(Debug, Clone)]
pub struct SiteState {
    pub spec: SiteSpec,
    /// Ingress fluid queue (loss + delay under overload).
    pub queue: FluidQueue,
    /// Whether the site's route is currently announced.
    pub announced: bool,
    /// When to re-announce after a withdrawal, if scheduled.
    pub reannounce_at: Option<SimTime>,
    /// Overload state machine.
    pub tracker: OverloadTracker,
    /// Offered load (qps) as of the last fluid step; cached for probes.
    pub offered_qps: f64,
    /// Loss fraction experienced in the last fluid step.
    pub last_loss: f64,
    /// Extra drop fraction inherited from a congested facility link.
    pub facility_loss: f64,
}

impl SiteState {
    pub fn new(spec: SiteSpec) -> SiteState {
        let queue = FluidQueue::new(spec.capacity_qps, spec.buffer_queries);
        SiteState {
            spec,
            queue,
            announced: true,
            reannounce_at: None,
            tracker: OverloadTracker::default(),
            offered_qps: 0.0,
            last_loss: 0.0,
            facility_loss: 0.0,
        }
    }

    /// Instantaneous utilization under the cached offered load.
    pub fn utilization(&self) -> f64 {
        self.queue.utilization(self.offered_qps)
    }

    /// Stress signal driving policy and load-balancer state: the site's
    /// own utilization, or — when the shared facility link upstream is
    /// dropping — the implied demand/throughput ratio of that link.
    /// A site behind a congested shared ingress is operationally
    /// overloaded even if its own servers are idle (§3.6).
    pub fn stress_signal(&self) -> f64 {
        let u = self.utilization();
        if self.facility_loss > 0.0 {
            u.max(1.0 / (1.0 - self.facility_loss).max(1e-6))
        } else {
            u
        }
    }

    /// Combined probability that a *probe query* arriving now is dropped:
    /// facility-link loss plus ingress-queue loss (independent stages).
    pub fn probe_drop_probability(&self) -> f64 {
        let q = self.queue.drop_probability(self.offered_qps);
        1.0 - (1.0 - self.facility_loss) * (1.0 - q)
    }

    /// Queueing delay added to an accepted query right now.
    pub fn queue_delay(&self) -> SimDuration {
        self.queue.queue_delay()
    }

    /// Served rate (qps) under the last-advanced load: offered ×
    /// (1 − facility loss) × (1 − queue loss).
    pub fn served_qps(&self) -> f64 {
        self.offered_qps * (1.0 - self.facility_loss) * (1.0 - self.last_loss)
    }

    /// Per-server capacity.
    pub fn server_capacity_qps(&self) -> f64 {
        self.spec.capacity_qps / f64::from(self.spec.n_servers)
    }

    /// Which servers currently answer probes, per the LB mode.
    ///
    /// Returns 1-based server ordinals. In `FailoverConcentrate` mode
    /// during an overload episode only one survivor answers, chosen
    /// deterministically per (site, episode); otherwise all answer.
    pub fn responding_servers(&self) -> Vec<u16> {
        let n = self.spec.n_servers;
        if self.spec.lb_mode == LoadBalancerMode::FailoverConcentrate
            && self.tracker.overloaded
            && n > 1
        {
            let pick = (mix64(
                u64::from(self.tracker.episodes)
                    .wrapping_mul(0x9e37)
                    .wrapping_add(u64::from(self.spec.host_as.0)),
            ) % u64::from(n)) as u16;
            vec![pick + 1]
        } else {
            (1..=n).collect()
        }
    }

    /// Deterministically map a client hash to the server that answers it.
    pub fn server_for(&self, client_hash: u64) -> u16 {
        let responding = self.responding_servers();
        let idx = (mix64(client_hash ^ u64::from(self.spec.host_as.0) << 17)
            % responding.len() as u64) as usize;
        responding[idx]
    }

    /// Per-server latency skew under load: in `SharedLink` mode, one
    /// hash-designated server is more loaded than its siblings (K-NRT-S2
    /// in Figure 13) and adds half the queue delay again.
    pub fn server_extra_delay(&self, server: u16) -> SimDuration {
        if self.spec.lb_mode == LoadBalancerMode::SharedLink && self.utilization() > 1.0 {
            let hot =
                (mix64(u64::from(self.spec.host_as.0)) % u64::from(self.spec.n_servers)) as u16 + 1;
            if server == hot {
                return SimDuration::from_nanos(self.queue.queue_delay().as_nanos() / 2);
            }
        }
        SimDuration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SiteSpec {
        SiteSpec::global("AMS", AsId(7), 1000.0)
    }

    #[test]
    fn builder_sets_fields() {
        let s = spec()
            .with_servers(5)
            .with_prepend(3)
            .with_scope(Scope::Local)
            .with_facility(FacilityId(2))
            .with_buffer(10.0)
            .with_lb_mode(LoadBalancerMode::FailoverConcentrate)
            .with_policy(StressPolicy::withdraw_sticky());
        assert_eq!(s.n_servers, 5);
        assert_eq!(s.prepend, 3);
        assert_eq!(s.scope, Scope::Local);
        assert_eq!(s.facility, Some(FacilityId(2)));
        assert_eq!(s.buffer_queries, 10.0);
        assert_eq!(s.code, "AMS");
    }

    #[test]
    fn all_servers_respond_when_healthy() {
        let st = SiteState::new(spec());
        assert_eq!(st.responding_servers(), vec![1, 2, 3]);
    }

    #[test]
    fn failover_concentrates_to_one_survivor_per_episode() {
        let mut st = SiteState::new(spec().with_lb_mode(LoadBalancerMode::FailoverConcentrate));
        st.tracker.overloaded = true;
        st.tracker.episodes = 1;
        let first = st.responding_servers();
        assert_eq!(first.len(), 1);
        // A different episode may pick a different survivor but always
        // exactly one, deterministically.
        st.tracker.episodes = 2;
        let second = st.responding_servers();
        assert_eq!(second.len(), 1);
        assert_eq!(st.responding_servers(), second);
    }

    #[test]
    fn server_for_targets_responding_server() {
        let mut st = SiteState::new(spec().with_lb_mode(LoadBalancerMode::FailoverConcentrate));
        st.tracker.overloaded = true;
        st.tracker.episodes = 3;
        let survivor = st.responding_servers()[0];
        for h in 0..50u64 {
            assert_eq!(st.server_for(h), survivor);
        }
    }

    #[test]
    fn probe_drop_combines_facility_and_queue() {
        let mut st = SiteState::new(spec().with_buffer(0.0));
        st.offered_qps = 2000.0; // 2x capacity, zero buffer -> 50% queue drop
        st.facility_loss = 0.5;
        let p = st.probe_drop_probability();
        assert!((p - 0.75).abs() < 1e-9, "p={p}");
    }

    #[test]
    fn shared_link_has_a_hot_server_only_under_load() {
        let mut st = SiteState::new(spec());
        st.offered_qps = 500.0;
        for s in 1..=3 {
            assert_eq!(st.server_extra_delay(s), SimDuration::ZERO);
        }
        st.offered_qps = 5000.0;
        st.queue.advance(SimTime::from_secs(10), 5000.0);
        let extras: Vec<SimDuration> = (1..=3).map(|s| st.server_extra_delay(s)).collect();
        let hot = extras.iter().filter(|d| !d.is_zero()).count();
        assert_eq!(hot, 1, "exactly one hot server, got {extras:?}");
    }
}
