//! Shared facilities: the co-location coupling behind collateral damage.
//!
//! Root letters (and other services, like the `.nl` TLD) often rent space
//! in the same data centers. The paper cannot see the shared component
//! directly — "hosting details are usually considered proprietary" — but
//! infers it end-to-end (§3.6): services that were *not* attacked dipped
//! exactly when co-located attacked services were flooded.
//!
//! We model the shared component as a per-facility ingress link with its
//! own fluid queue. Every site in a facility contributes its offered load
//! to the facility link; the link's loss fraction applies to all of them
//! — including innocent bystanders.

use crate::site::FacilityId;
use rootcast_netsim::{FluidQueue, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Registry of facility links and their per-step aggregation.
#[derive(Debug, Clone)]
pub struct FacilityTable {
    links: BTreeMap<FacilityId, FluidQueue>,
    /// Load accumulated during the current step.
    pending: BTreeMap<FacilityId, f64>,
    /// Loss fraction computed at the last advance.
    loss: BTreeMap<FacilityId, f64>,
    /// Facilities currently dark (power/link outage): every tenant's
    /// traffic through the link is lost until the outage clears.
    out: BTreeSet<FacilityId>,
}

impl FacilityTable {
    pub fn new() -> FacilityTable {
        FacilityTable {
            links: BTreeMap::new(),
            pending: BTreeMap::new(),
            loss: BTreeMap::new(),
            out: BTreeSet::new(),
        }
    }

    /// Register a facility link with the given capacity and buffer.
    /// Registering the same id twice is an error.
    pub fn register(&mut self, id: FacilityId, capacity_qps: f64, buffer_queries: f64) {
        let prev = self
            .links
            .insert(id, FluidQueue::new(capacity_qps, buffer_queries));
        assert!(prev.is_none(), "facility {id:?} registered twice");
        self.loss.insert(id, 0.0);
    }

    pub fn is_registered(&self, id: FacilityId) -> bool {
        self.links.contains_key(&id)
    }

    /// Add one site's offered load for the current step.
    pub fn add_load(&mut self, id: FacilityId, qps: f64) {
        assert!(self.links.contains_key(&id), "unknown facility {id:?}");
        *self.pending.entry(id).or_insert(0.0) += qps;
    }

    /// Take a registered facility dark (total outage) or bring it back.
    /// Returns false if the facility is unknown or already in the
    /// requested state, so callers can degrade gracefully.
    pub fn set_out(&mut self, id: FacilityId, out: bool) -> bool {
        if !self.links.contains_key(&id) {
            return false;
        }
        if out {
            self.out.insert(id)
        } else {
            self.out.remove(&id)
        }
    }

    /// Is this facility currently dark?
    pub fn is_out(&self, id: FacilityId) -> bool {
        self.out.contains(&id)
    }

    /// Advance all facility queues to `now` under the accumulated load,
    /// recording each link's loss fraction, then clear the accumulators.
    /// Dark facilities drop everything regardless of queue state.
    pub fn advance(&mut self, now: SimTime) {
        for (id, queue) in &mut self.links {
            let offered = self.pending.get(id).copied().unwrap_or(0.0);
            let loss = queue.advance(now, offered);
            self.loss
                .insert(*id, if self.out.contains(id) { 1.0 } else { loss });
        }
        self.pending.clear();
    }

    /// Loss fraction of `id`'s link from the last advance (0 for sites
    /// with no facility, handled by the caller).
    pub fn loss(&self, id: FacilityId) -> f64 {
        self.loss.get(&id).copied().unwrap_or(0.0)
    }

    /// The current queueing delay of a facility link.
    pub fn queue_delay(&self, id: FacilityId) -> rootcast_netsim::SimDuration {
        self.links
            .get(&id)
            .map(FluidQueue::queue_delay)
            .unwrap_or(rootcast_netsim::SimDuration::ZERO)
    }
}

impl Default for FacilityTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_facility_has_no_loss() {
        let mut t = FacilityTable::new();
        t.register(FacilityId(1), 1000.0, 100.0);
        t.add_load(FacilityId(1), 500.0);
        t.advance(SimTime::from_secs(60));
        assert_eq!(t.loss(FacilityId(1)), 0.0);
    }

    #[test]
    fn overloaded_facility_drops_for_all_tenants() {
        let mut t = FacilityTable::new();
        t.register(FacilityId(1), 1000.0, 0.0);
        // Two tenants: an attacked service (2500 qps) and a bystander
        // (500 qps) share the 1000-qps link.
        t.add_load(FacilityId(1), 2500.0);
        t.add_load(FacilityId(1), 500.0);
        t.advance(SimTime::from_secs(60));
        let loss = t.loss(FacilityId(1));
        // 3000 offered on 1000 capacity: ~2/3 dropped — applying to the
        // bystander too. That asymmetric coupling is collateral damage.
        assert!((loss - 2.0 / 3.0).abs() < 1e-6, "loss={loss}");
    }

    #[test]
    fn load_resets_between_steps() {
        let mut t = FacilityTable::new();
        t.register(FacilityId(1), 1000.0, 0.0);
        t.add_load(FacilityId(1), 5000.0);
        t.advance(SimTime::from_secs(60));
        assert!(t.loss(FacilityId(1)) > 0.5);
        // Next step with no load: clean.
        t.advance(SimTime::from_secs(120));
        assert_eq!(t.loss(FacilityId(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let mut t = FacilityTable::new();
        t.register(FacilityId(1), 1000.0, 0.0);
        t.register(FacilityId(1), 1000.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown facility")]
    fn load_on_unknown_facility_panics() {
        let mut t = FacilityTable::new();
        t.add_load(FacilityId(9), 1.0);
    }

    #[test]
    fn outage_drops_everything_until_cleared() {
        let mut t = FacilityTable::new();
        t.register(FacilityId(1), 1000.0, 0.0);
        assert!(t.set_out(FacilityId(1), true));
        assert!(t.is_out(FacilityId(1)));
        // Redundant transition reports false.
        assert!(!t.set_out(FacilityId(1), true));
        // Unknown facility degrades gracefully.
        assert!(!t.set_out(FacilityId(9), true));
        t.add_load(FacilityId(1), 10.0);
        t.advance(SimTime::from_secs(60));
        assert_eq!(t.loss(FacilityId(1)), 1.0);
        assert!(t.set_out(FacilityId(1), false));
        t.add_load(FacilityId(1), 10.0);
        t.advance(SimTime::from_secs(120));
        assert_eq!(t.loss(FacilityId(1)), 0.0);
    }

    #[test]
    fn facilities_are_independent() {
        let mut t = FacilityTable::new();
        t.register(FacilityId(1), 1000.0, 0.0);
        t.register(FacilityId(2), 1000.0, 0.0);
        t.add_load(FacilityId(1), 10_000.0);
        t.add_load(FacilityId(2), 10.0);
        t.advance(SimTime::from_secs(60));
        assert!(t.loss(FacilityId(1)) > 0.8);
        assert_eq!(t.loss(FacilityId(2)), 0.0);
    }
}
