//! Stress-response policies (§2.2 of the paper).
//!
//! A site under more load than it can serve has two options:
//!
//! * **withdraw** its BGP routes, shrinking its catchment and pushing
//!   both legitimate and attack traffic to other sites (the "waterbed"),
//!   or
//! * keep answering as a **degraded absorber**, dropping a fraction of
//!   queries at its saturated ingress but containing the attack traffic
//!   in its own catchment (the "conventional mattress").
//!
//! The paper stresses that real outcomes *emerge* from operator policy,
//! host-ISP behaviour, and implementation details such as BGP session
//! timeouts. We encode the emergent result as an explicit per-site
//! policy, which is exactly what the analysis needs to attribute observed
//! behaviour (and what the ablation benches sweep).

use rootcast_netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How a site responds to sustained overload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StressPolicy {
    /// Keep announcing and absorb: excess queries drop at the ingress
    /// queue, accepted ones suffer bufferbloat delay.
    Absorb,
    /// Withdraw routes when offered load exceeds `overload_ratio` ×
    /// capacity for at least `sustain`, but only from the
    /// `after_episodes`-th distinct overload episode onward (several
    /// E-root sites absorbed the first event and only went dark after
    /// the second, §3.3.1). If `retry_after` is set, the site
    /// re-announces after that long (and may withdraw again — BGP-level
    /// flapping, which is what the route collectors see as bursts); if
    /// `None` the site stays down until the scenario ends (operator
    /// intervention).
    Withdraw {
        overload_ratio: f64,
        sustain: SimDuration,
        retry_after: Option<SimDuration>,
        after_episodes: u32,
    },
}

impl StressPolicy {
    /// A conventional withdraw policy: trip at 2× capacity sustained for
    /// 2 minutes, retry after 30 minutes.
    pub fn withdraw_default() -> StressPolicy {
        StressPolicy::Withdraw {
            overload_ratio: 2.0,
            sustain: SimDuration::from_mins(2),
            retry_after: Some(SimDuration::from_mins(30)),
            after_episodes: 1,
        }
    }

    /// Withdraw and stay down (no automatic re-announcement).
    pub fn withdraw_sticky() -> StressPolicy {
        StressPolicy::Withdraw {
            overload_ratio: 2.0,
            sustain: SimDuration::from_mins(2),
            retry_after: None,
            after_episodes: 1,
        }
    }

    /// Absorb the first `n - 1` overload episodes, then withdraw for
    /// good on the `n`-th — the E-root pattern: strongly compromised in
    /// event 1, shut down after event 2.
    pub fn withdraw_after_episode(n: u32) -> StressPolicy {
        StressPolicy::Withdraw {
            overload_ratio: 1.5,
            sustain: SimDuration::from_mins(10),
            retry_after: None,
            after_episodes: n,
        }
    }
}

/// How a site's servers behave behind the load balancer under overload
/// (§3.5: K-FRA concentrated onto one surviving server; K-NRT's three
/// servers all struggled behind a congested shared link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadBalancerMode {
    /// Under overload, all but one server stop answering; the survivor
    /// keeps serving with stable latency while the ingress drops excess
    /// load. Which server survives is re-drawn per overload episode.
    FailoverConcentrate,
    /// All servers stay reachable behind one congested link: everyone
    /// answers, everyone is slow, some servers (hash-skewed) more loaded
    /// than others.
    SharedLink,
}

/// Tracks the overload state machine for one site.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct OverloadTracker {
    /// When the current continuous overload began.
    over_since: Option<SimTime>,
    /// Number of distinct overload episodes so far (drives per-episode
    /// survivor selection in FailoverConcentrate mode).
    pub episodes: u32,
    /// Currently in an overload episode?
    pub overloaded: bool,
}

impl OverloadTracker {
    /// Update with the instantaneous utilization at `now`; returns `true`
    /// if the sustained-overload condition (`ratio` for `sustain`) holds.
    pub fn update(
        &mut self,
        now: SimTime,
        utilization: f64,
        ratio: f64,
        sustain: SimDuration,
    ) -> bool {
        if utilization > ratio {
            let since = *self.over_since.get_or_insert(now);
            if !self.overloaded {
                self.overloaded = true;
                self.episodes += 1;
            }
            now.saturating_since(since) >= sustain
        } else {
            self.over_since = None;
            self.overloaded = false;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimTime {
        SimTime::from_mins(m)
    }

    #[test]
    fn sustained_overload_trips_after_duration() {
        let mut t = OverloadTracker::default();
        let sustain = SimDuration::from_mins(2);
        assert!(!t.update(mins(0), 3.0, 2.0, sustain));
        assert!(!t.update(mins(1), 3.0, 2.0, sustain));
        assert!(t.update(mins(2), 3.0, 2.0, sustain));
        assert_eq!(t.episodes, 1);
    }

    #[test]
    fn dip_below_threshold_resets() {
        let mut t = OverloadTracker::default();
        let sustain = SimDuration::from_mins(2);
        assert!(!t.update(mins(0), 3.0, 2.0, sustain));
        assert!(!t.update(mins(1), 1.0, 2.0, sustain)); // recovered
        assert!(!t.update(mins(2), 3.0, 2.0, sustain)); // clock restarts
        assert!(!t.update(mins(3), 3.0, 2.0, sustain));
        assert!(t.update(mins(4), 3.0, 2.0, sustain));
        assert_eq!(t.episodes, 2);
    }

    #[test]
    fn exact_threshold_does_not_trip() {
        let mut t = OverloadTracker::default();
        assert!(!t.update(mins(0), 2.0, 2.0, SimDuration::ZERO));
        assert!(!t.overloaded);
    }

    #[test]
    fn zero_sustain_trips_immediately() {
        let mut t = OverloadTracker::default();
        assert!(t.update(mins(0), 2.1, 2.0, SimDuration::ZERO));
    }

    #[test]
    fn policy_constructors() {
        match StressPolicy::withdraw_default() {
            StressPolicy::Withdraw {
                overload_ratio,
                retry_after,
                ..
            } => {
                assert_eq!(overload_ratio, 2.0);
                assert!(retry_after.is_some());
            }
            StressPolicy::Absorb => panic!("wrong policy"),
        }
        match StressPolicy::withdraw_sticky() {
            StressPolicy::Withdraw { retry_after, .. } => assert!(retry_after.is_none()),
            StressPolicy::Absorb => panic!("wrong policy"),
        }
    }
}
