//! An anycast service: one IP prefix, many sites, one routing state.
//!
//! Each root letter (and each non-root anycast deployment like `.nl`) is
//! an [`AnycastService`]: a set of [`SiteState`]s, the BGP origins they
//! announce, and the current [`Rib`] mapping every AS to its catchment
//! site. The service advances in fluid steps (offered load → queue state
//! → policy decisions → possible route changes) and answers point-in-time
//! probe queries for the measurement layer.

use crate::facility::FacilityTable;
use crate::policy::StressPolicy;
use crate::site::{SiteIdx, SiteSpec, SiteState};
use rootcast_bgp::{compute_rib_scoped_into, Origin, Rib, RibScratch};
use rootcast_dns::Letter;
use rootcast_netsim::{SimDuration, SimTime};
use rootcast_topology::{AsGraph, AsId};

/// Base server processing time added to every successful reply.
const SERVER_PROCESSING: SimDuration = SimDuration::from_micros(500);

/// What a probe toward this service would experience right now.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeView {
    /// Index of the site whose catchment contains the prober.
    pub site: SiteIdx,
    /// 1-based ordinal of the server that would answer.
    pub server: u16,
    /// Round-trip time if the query is answered.
    pub rtt: SimDuration,
    /// Probability the query (or its response) is dropped.
    pub drop_prob: f64,
}

/// One anycast deployment.
#[derive(Debug, Clone)]
pub struct AnycastService {
    /// Human-readable name (`"K-root"`, `".nl anycast"`).
    pub name: String,
    /// The root letter, if this service is one.
    pub letter: Option<Letter>,
    sites: Vec<SiteState>,
    origins: Vec<Origin>,
    rib: Rib,
    /// Per-AS last-mile delay (indexed by `AsId.0`), snapshotted from the
    /// topology at construction; added to probe RTTs.
    access: Vec<SimDuration>,
    /// Catchment epoch: bumped by every RIB recompute, never by anything
    /// else. A [`CatchmentIndex`] built at epoch E stays valid until the
    /// service reports a different epoch.
    epoch: u64,
    /// The table before the most recent recompute (double-buffered with
    /// `rib` so recomputes reuse allocations).
    rib_prev: Rib,
    /// Per-AS flag: did this AS's chosen route change in the most recent
    /// recompute? Valid whenever `epoch > 1`.
    changed: Vec<bool>,
    /// Reusable announcement buffer for recomputes.
    active: Vec<bool>,
    rib_scratch: RibScratch,
}

/// Cached per-site weight sums for one `(service RIB, weight vector)`
/// pair, turning [`AnycastService::offered_per_site`]'s O(n_AS) walk into
/// an O(n_sites) fill. Owned by the caller (one index per weight vector),
/// refreshed via [`AnycastService::refresh_catchment_index`], which is a
/// no-op while both the catchment epoch and the weight version are
/// unchanged.
///
/// Caching is a pure reformulation: the cached fill and the uncached
/// [`AnycastService::offered_per_site`] share the same two-pass
/// arithmetic, so results are bit-identical by construction.
#[derive(Debug, Clone, Default)]
pub struct CatchmentIndex {
    /// Epoch this index was built at (0 = never built).
    epoch: u64,
    /// Version of the weight vector this index was built from (0 = never
    /// built; caller-managed versions start at 1).
    weights_version: u64,
    /// Sum over all weights (routed or not), the normalization term.
    wsum: f64,
    /// Per-site sum of weights of the ASes in that site's catchment.
    site_wsum: Vec<f64>,
}

impl CatchmentIndex {
    /// Fill `out` with the offered load per site for a total rate, using
    /// the cached sums: `out[s] = total_qps * site_wsum[s] / wsum`, or
    /// all zeros when the rate or the weight mass is non-positive.
    pub fn offered_per_site_into(&self, total_qps: f64, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.site_wsum.len(), 0.0);
        if total_qps <= 0.0 || self.wsum <= 0.0 {
            return;
        }
        for (o, &sw) in out.iter_mut().zip(&self.site_wsum) {
            *o = total_qps * sw / self.wsum;
        }
    }
}

/// Outcome of a policy step: which sites changed announcement state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoutingChanges {
    pub withdrew: Vec<SiteIdx>,
    pub reannounced: Vec<SiteIdx>,
}

impl RoutingChanges {
    pub fn is_empty(&self) -> bool {
        self.withdrew.is_empty() && self.reannounced.is_empty()
    }

    /// Total number of routing transitions (withdrawals plus
    /// re-announcements).
    pub fn len(&self) -> usize {
        self.withdrew.len() + self.reannounced.len()
    }
}

impl AnycastService {
    /// Build a service and compute its initial routing.
    pub fn new(
        name: &str,
        letter: Option<Letter>,
        graph: &AsGraph,
        site_specs: Vec<SiteSpec>,
    ) -> AnycastService {
        assert!(!site_specs.is_empty(), "a service needs at least one site");
        let origins: Vec<Origin> = site_specs
            .iter()
            .map(|s| Origin {
                host: s.host_as,
                scope: s.scope,
                prepend: s.prepend,
            })
            .collect();
        let sites: Vec<SiteState> = site_specs.into_iter().map(SiteState::new).collect();
        let active: Vec<bool> = sites.iter().map(|s| s.announced).collect();
        let mut rib = Rib::unreachable(graph.len());
        let mut rib_scratch = RibScratch::default();
        compute_rib_scoped_into(graph, &origins, &active, &mut rib, &mut rib_scratch);
        let access = (0..graph.len() as u32)
            .map(|i| graph.access_delay(rootcast_topology::AsId(i)))
            .collect();
        AnycastService {
            name: name.to_string(),
            letter,
            sites,
            origins,
            rib,
            access,
            epoch: 1,
            rib_prev: Rib::unreachable(graph.len()),
            changed: vec![false; graph.len()],
            active,
            rib_scratch,
        }
    }

    pub fn sites(&self) -> &[SiteState] {
        &self.sites
    }

    pub fn site(&self, idx: SiteIdx) -> &SiteState {
        &self.sites[idx]
    }

    /// Find a site by airport code (first match).
    pub fn site_by_code(&self, code: &str) -> Option<SiteIdx> {
        let code = code.to_ascii_uppercase();
        self.sites.iter().position(|s| s.spec.code == code)
    }

    pub fn rib(&self) -> &Rib {
        &self.rib
    }

    /// The catchment epoch: changes exactly when the RIB does. Consumers
    /// caching anything derived from catchments key their cache on this.
    pub fn catchment_epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-AS flags from the most recent recompute: `changed_ases()[asn]`
    /// is set iff that AS's chosen route differs from the previous epoch.
    /// Before any recompute (epoch 1) all flags are false.
    pub fn changed_ases(&self) -> &[bool] {
        &self.changed
    }

    /// The site whose catchment contains `asn`, if the service is
    /// reachable from there.
    pub fn catchment_site(&self, asn: AsId) -> Option<SiteIdx> {
        self.rib.origin_of(asn).map(|o| o.0 as usize)
    }

    /// Distribute a total offered load over sites according to the
    /// current catchments and per-AS weights. `weights[asn]` is the share
    /// of the total load sourced in that AS (need not be normalized;
    /// ASes without a route contribute nothing — their queries die in
    /// the network).
    ///
    /// Contract: `weights` must have exactly one entry per AS in the
    /// graph the service was built over (`weights.len() == n_ases`);
    /// debug builds assert this, release builds would misattribute load
    /// or panic mid-iteration on a short vector. Returns all zeros when
    /// `total_qps <= 0` or the weight mass is non-positive.
    ///
    /// This is the uncached entry point: it rebuilds a throwaway
    /// [`CatchmentIndex`] and runs the same fill as the cached path, so
    /// the two are bit-identical by construction. Hot loops should hold a
    /// `CatchmentIndex` and use [`Self::refresh_catchment_index`] +
    /// [`CatchmentIndex::offered_per_site_into`] instead.
    pub fn offered_per_site(&self, weights: &[f64], total_qps: f64) -> Vec<f64> {
        let mut idx = CatchmentIndex::default();
        self.refresh_catchment_index(&mut idx, weights, 1);
        let mut out = Vec::new();
        idx.offered_per_site_into(total_qps, &mut out);
        out
    }

    /// Bring `idx` up to date with the current RIB and weight vector.
    /// No-op while both the catchment epoch and `weights_version` match
    /// what the index was built from; otherwise the per-site weight sums
    /// are rebuilt in one O(n_AS) pass. `weights_version` is a
    /// caller-managed counter identifying the weight vector's content
    /// (bump it whenever the vector is rewritten; must be ≥ 1).
    ///
    /// Returns `true` when the index was rebuilt, `false` on a cache
    /// hit — callers feed this into cache-effectiveness metrics.
    pub fn refresh_catchment_index(
        &self,
        idx: &mut CatchmentIndex,
        weights: &[f64],
        weights_version: u64,
    ) -> bool {
        debug_assert!(weights_version > 0, "weight versions start at 1");
        if idx.epoch == self.epoch && idx.weights_version == weights_version {
            return false;
        }
        debug_assert_eq!(
            weights.len(),
            self.access.len(),
            "{}: weight vector has {} entries but the graph has {} ASes",
            self.name,
            weights.len(),
            self.access.len()
        );
        idx.wsum = weights.iter().sum();
        idx.site_wsum.clear();
        idx.site_wsum.resize(self.sites.len(), 0.0);
        for (asn, route) in self.rib.iter() {
            let w = weights[asn.0 as usize];
            if w > 0.0 {
                idx.site_wsum[route.origin.0 as usize] += w;
            }
        }
        idx.epoch = self.epoch;
        idx.weights_version = weights_version;
        true
    }

    /// Scratch-buffer reuse stats of this service's RIB recomputes:
    /// `(reuses, allocs)` from the underlying
    /// [`RibScratch`](rootcast_bgp::RibScratch).
    pub fn scratch_stats(&self) -> (u64, u64) {
        self.rib_scratch.reuse_stats()
    }

    /// Phase 1 of a fluid step: account the offered load into facility
    /// links (shared risk) before any queue advances.
    pub fn stage_facility_load(&self, offered: &[f64], facilities: &mut FacilityTable) {
        assert_eq!(offered.len(), self.sites.len());
        for (site, &qps) in self.sites.iter().zip(offered) {
            if let Some(fid) = site.spec.facility {
                facilities.add_load(fid, qps);
            }
        }
    }

    /// Phase 2: advance each site's ingress queue to `now` under the
    /// offered load, after facility losses thin the arriving stream.
    pub fn advance_queues(&mut self, now: SimTime, offered: &[f64], facilities: &FacilityTable) {
        assert_eq!(offered.len(), self.sites.len());
        for (site, &qps) in self.sites.iter_mut().zip(offered) {
            let facility_loss = site
                .spec
                .facility
                .map(|f| facilities.loss(f))
                .unwrap_or(0.0);
            let arriving = qps * (1.0 - facility_loss);
            site.facility_loss = facility_loss;
            site.offered_qps = qps;
            site.last_loss = site.queue.advance(now, arriving);
        }
    }

    /// Phase 3: run stress policies; possibly withdraw or re-announce
    /// sites. Returns the set of changes (empty = routing untouched).
    /// When changes occur the RIB is recomputed immediately.
    pub fn apply_policies(&mut self, now: SimTime, graph: &AsGraph) -> RoutingChanges {
        let mut changes = RoutingChanges::default();
        for (idx, site) in self.sites.iter_mut().enumerate() {
            // Scheduled re-announcement first.
            if let Some(at) = site.reannounce_at {
                if site.announced {
                    // Defensive: a site cannot be both announced and
                    // awaiting re-announcement.
                    site.reannounce_at = None;
                } else if now >= at {
                    site.announced = true;
                    site.reannounce_at = None;
                    site.queue.reset(now);
                    site.tracker = Default::default();
                    changes.reannounced.push(idx);
                }
            }
            if !site.announced {
                continue;
            }
            let StressPolicy::Withdraw {
                overload_ratio,
                sustain,
                retry_after,
                after_episodes,
            } = site.spec.stress_policy
            else {
                // Absorb: update the tracker anyway (drives per-server
                // failover behaviour) but never withdraw.
                let ratio_for_lb = 1.0;
                site.tracker
                    .update(now, site.stress_signal(), ratio_for_lb, SimDuration::ZERO);
                continue;
            };
            let tripped = site
                .tracker
                .update(now, site.stress_signal(), overload_ratio, sustain);
            if tripped && site.tracker.episodes >= after_episodes {
                site.announced = false;
                site.reannounce_at = retry_after.map(|d| now + d);
                site.queue.reset(now);
                changes.withdrew.push(idx);
            }
        }
        if !changes.is_empty() {
            self.recompute_rib(graph);
        }
        changes
    }

    /// Apply a [`SiteTuning`] to one site, rebuilding its ingress queue
    /// from the new spec so the result is state-identical to a service
    /// freshly built with the tuned spec. Only valid on a pristine
    /// (never-advanced) service: the queue is replaced, so any
    /// accumulated backlog would be silently dropped. The substrate
    /// sharing path calls this right after cloning the baseline
    /// services, before the first fluid step.
    ///
    /// The tuning deliberately cannot touch routing-relevant fields
    /// (host AS, scope, prepend, server count, announcement): the RIB
    /// and the `t = 0` calibration probes stay valid by construction.
    pub fn retune_site(&mut self, idx: SiteIdx, tuning: &crate::site::SiteTuning) {
        let site = &mut self.sites[idx];
        debug_assert!(
            site.offered_qps == 0.0 && site.announced && site.reannounce_at.is_none(),
            "{}: retune_site on a non-pristine site {}",
            self.name,
            site.spec.code
        );
        if let Some(cap) = tuning.capacity_qps {
            site.spec.capacity_qps = cap;
        }
        if let Some(buf) = tuning.buffer_queries {
            site.spec.buffer_queries = buf;
        }
        if let Some(p) = tuning.stress_policy {
            site.spec.stress_policy = p;
        }
        site.queue =
            rootcast_netsim::FluidQueue::new(site.spec.capacity_qps, site.spec.buffer_queries);
    }

    /// Force a site's announcement state (operator action); recomputes
    /// routing if it changed.
    pub fn set_announced(&mut self, idx: SiteIdx, announced: bool, graph: &AsGraph) -> bool {
        if self.sites[idx].announced == announced {
            return false;
        }
        self.sites[idx].announced = announced;
        self.sites[idx].reannounce_at = None;
        self.recompute_rib(graph);
        true
    }

    fn recompute_rib(&mut self, graph: &AsGraph) {
        self.active.clear();
        self.active.extend(self.sites.iter().map(|s| s.announced));
        // Double-buffer: the outgoing table becomes the scratch target of
        // the next recompute, and diffing the two yields the exact set of
        // ASes whose routes moved (consumed by the collector fast path).
        std::mem::swap(&mut self.rib, &mut self.rib_prev);
        compute_rib_scoped_into(
            graph,
            &self.origins,
            &self.active,
            &mut self.rib,
            &mut self.rib_scratch,
        );
        self.rib.diff_into(&self.rib_prev, &mut self.changed);
        self.epoch += 1;
    }

    /// What a probe from `asn` (client hash `client_hash`) would see
    /// right now, or `None` if the service is unreachable from there.
    pub fn probe_view(&self, asn: AsId, client_hash: u64) -> Option<ProbeView> {
        let route = self.rib.route(asn)?;
        let site_idx = route.origin.0 as usize;
        let site = &self.sites[site_idx];
        let server = site.server_for(client_hash);
        let rtt = (route.latency + self.access[asn.0 as usize]) * 2
            + site.queue_delay()
            + site.server_extra_delay(server)
            + SERVER_PROCESSING;
        Some(ProbeView {
            site: site_idx,
            server,
            rtt,
            drop_prob: site.probe_drop_probability(),
        })
    }

    /// Aggregate served rate (qps) per site under the last-advanced load:
    /// offered × (1 − facility loss) × (1 − queue loss). Feeds RSSAC
    /// query counters.
    pub fn served_per_site(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.served_per_site_into(&mut out);
        out
    }

    /// [`Self::served_per_site`] into a caller-owned buffer.
    pub fn served_per_site_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.sites.iter().map(|s| s.served_qps()));
    }

    /// Total served rate across all sites (same summation order as
    /// summing [`Self::served_per_site`]), without allocating.
    pub fn served_total(&self) -> f64 {
        self.sites.iter().map(|s| s.served_qps()).sum()
    }

    /// Indices of currently announced sites.
    pub fn announced_sites(&self) -> Vec<SiteIdx> {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.announced)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LoadBalancerMode;
    use rootcast_netsim::SimRng;
    use rootcast_topology::{gen, Tier, TopologyParams};

    fn build() -> (AsGraph, AnycastService, Vec<AsId>) {
        let g = gen::generate(&TopologyParams::tiny(), &SimRng::new(5));
        let stubs = g.by_tier(Tier::Stub);
        let specs = vec![
            SiteSpec::global("AMS", stubs[0], 1000.0),
            SiteSpec::global("IAD", stubs[1], 1000.0).with_policy(StressPolicy::withdraw_default()),
        ];
        let svc = AnycastService::new("test", Some(Letter::K), &g, specs);
        (g, svc, stubs)
    }

    #[test]
    fn initial_rib_covers_graph() {
        let (g, svc, _) = build();
        assert_eq!(svc.rib().reachable_count(), g.len());
        assert_eq!(svc.announced_sites(), vec![0, 1]);
    }

    #[test]
    fn offered_load_splits_by_catchment() {
        let (g, svc, _) = build();
        let weights = vec![1.0; g.len()];
        let per_site = svc.offered_per_site(&weights, 1000.0);
        let total: f64 = per_site.iter().sum();
        assert!((total - 1000.0).abs() < 1e-6, "total={total}");
        assert!(per_site.iter().all(|&q| q > 0.0), "{per_site:?}");
    }

    #[test]
    fn catchment_index_matches_uncached_and_tracks_epoch() {
        let (g, mut svc, _) = build();
        let weights: Vec<f64> = (0..g.len()).map(|i| (i % 7) as f64 * 0.25).collect();
        let mut idx = CatchmentIndex::default();
        let mut cached = Vec::new();

        svc.refresh_catchment_index(&mut idx, &weights, 1);
        idx.offered_per_site_into(1234.5, &mut cached);
        assert_eq!(cached, svc.offered_per_site(&weights, 1234.5));

        // A routing change bumps the epoch and records exactly the ASes
        // whose routes moved.
        let before = svc.rib().clone();
        let epoch0 = svc.catchment_epoch();
        assert!(svc.set_announced(1, false, &g));
        assert_eq!(svc.catchment_epoch(), epoch0 + 1);
        let changed = svc.changed_ases();
        assert_eq!(changed.len(), g.len());
        let mut n_changed = 0;
        for (i, &did_change) in changed.iter().enumerate() {
            let asn = AsId(i as u32);
            assert_eq!(did_change, before.route(asn) != svc.rib().route(asn));
            n_changed += did_change as usize;
        }
        assert!(n_changed > 0, "withdrawal changed no routes");

        // The stale index refreshes to the new catchments and stays
        // bit-identical to the uncached path.
        svc.refresh_catchment_index(&mut idx, &weights, 1);
        idx.offered_per_site_into(1234.5, &mut cached);
        assert_eq!(cached, svc.offered_per_site(&weights, 1234.5));
        assert_eq!(cached[1], 0.0, "withdrawn site still offered load");

        // Zero total and zero weight mass both yield all-zero fills.
        idx.offered_per_site_into(0.0, &mut cached);
        assert!(cached.iter().all(|&q| q == 0.0));
        assert_eq!(
            svc.offered_per_site(&vec![0.0; g.len()], 1234.5),
            vec![0.0; 2]
        );
    }

    #[test]
    fn withdraw_policy_fires_and_shifts_catchment() {
        let (g, mut svc, _) = build();
        let weights = vec![1.0; g.len()];
        let facilities = FacilityTable::new();
        // Overload site 1 (IAD, withdraw policy) way past 2x capacity.
        let mut offered = svc.offered_per_site(&weights, 50_000.0);
        // Make sure site 1 sees heavy load regardless of catchment split.
        offered[1] = offered[1].max(10_000.0);
        let mut t = SimTime::ZERO;
        let step = SimDuration::from_mins(1);
        let mut withdrew = false;
        for _ in 0..10 {
            t += step;
            svc.advance_queues(t, &offered, &facilities);
            let ch = svc.apply_policies(t, &g);
            if ch.withdrew.contains(&1) {
                withdrew = true;
                break;
            }
        }
        assert!(withdrew, "withdraw policy never fired");
        assert_eq!(svc.announced_sites(), vec![0]);
        // All catchments now at site 0.
        assert_eq!(svc.rib().catchment_sizes(2), vec![g.len(), 0],);
        // Re-announce happens ~30 min later.
        let again = SimTime::ZERO + SimDuration::from_mins(45);
        svc.advance_queues(again, &[0.0; 2], &facilities);
        let ch = svc.apply_policies(again, &g);
        assert_eq!(ch.reannounced, vec![1]);
        let _ = facilities;
    }

    #[test]
    fn absorb_policy_never_withdraws() {
        let (g, mut svc, _) = build();
        let facilities = FacilityTable::new();
        let offered = vec![100_000.0, 0.0];
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            t += SimDuration::from_mins(1);
            svc.advance_queues(t, &offered, &facilities);
            let ch = svc.apply_policies(t, &g);
            assert!(ch.withdrew.is_empty());
        }
        assert_eq!(svc.announced_sites(), vec![0, 1]);
        // But the absorbing site is lossy and slow.
        assert!(
            svc.site(0).last_loss > 0.9,
            "loss={}",
            svc.site(0).last_loss
        );
        assert!(svc.site(0).queue_delay() > SimDuration::from_millis(500));
    }

    #[test]
    fn probe_view_reflects_overload() {
        let (g, mut svc, stubs) = build();
        let facilities = FacilityTable::new();
        // Find an AS in site 0's catchment.
        let victim = *stubs
            .iter()
            .find(|&&s| svc.catchment_site(s) == Some(0))
            .expect("someone in site 0");
        let healthy = svc.probe_view(victim, 42).unwrap();
        assert_eq!(healthy.site, 0);
        assert_eq!(healthy.drop_prob, 0.0);
        // Saturate site 0 for a while.
        let offered = vec![50_000.0, 0.0];
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            t += SimDuration::from_mins(1);
            svc.advance_queues(t, &offered, &facilities);
        }
        let stressed = svc.probe_view(victim, 42).unwrap();
        assert!(stressed.rtt > healthy.rtt + SimDuration::from_millis(100));
        assert!(stressed.drop_prob > 0.9);
        let _ = g;
    }

    #[test]
    fn set_announced_recomputes() {
        let (g, mut svc, _) = build();
        assert!(svc.set_announced(0, false, &g));
        assert!(!svc.set_announced(0, false, &g), "no-op returns false");
        assert_eq!(svc.rib().catchment_sizes(2)[0], 0);
        assert!(svc.set_announced(0, true, &g));
        assert!(svc.rib().catchment_sizes(2)[0] > 0);
    }

    #[test]
    fn served_rate_accounts_losses() {
        let (g, mut svc, _) = build();
        let facilities = FacilityTable::new();
        let offered = vec![2_000.0, 100.0];
        svc.advance_queues(SimTime::from_mins(30), &offered, &facilities);
        let served = svc.served_per_site();
        // Site 0 at 2x capacity serves ~1000 once its buffer fills;
        // site 1 serves everything.
        assert!(served[0] < 1900.0, "served={served:?}");
        assert!((served[1] - 100.0).abs() < 1e-9);
        let _ = g;
    }

    #[test]
    fn failover_mode_concentrates_probe_servers() {
        let g = gen::generate(&TopologyParams::tiny(), &SimRng::new(6));
        let stubs = g.by_tier(Tier::Stub);
        let spec = SiteSpec::global("FRA", stubs[0], 1000.0)
            .with_lb_mode(LoadBalancerMode::FailoverConcentrate);
        let mut svc = AnycastService::new("k", Some(Letter::K), &g, vec![spec]);
        let facilities = FacilityTable::new();
        // Healthy: different client hashes see different servers.
        let servers: std::collections::BTreeSet<u16> = (0..64)
            .map(|h| svc.probe_view(stubs[1], h).unwrap().server)
            .collect();
        assert!(
            servers.len() > 1,
            "expected server diversity, got {servers:?}"
        );
        // Overloaded: exactly one server answers everyone.
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            t += SimDuration::from_mins(1);
            svc.advance_queues(t, &[5_000.0], &facilities);
            svc.apply_policies(t, &g);
        }
        let servers: std::collections::BTreeSet<u16> = (0..64)
            .map(|h| svc.probe_view(stubs[1], h).unwrap().server)
            .collect();
        assert_eq!(servers.len(), 1, "survivor only, got {servers:?}");
    }
}
