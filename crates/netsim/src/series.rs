//! Binned time series, the common currency of the analysis layer.
//!
//! The paper's methodology (§2.4.1) maps raw observations into fixed-width
//! time bins (10 minutes for most figures, 4 minutes for the VP raster of
//! Figure 11). `BinnedSeries` implements that mapping once so every
//! analysis module shares identical binning semantics.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A time series of f64 values over fixed-width bins starting at t=0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedSeries {
    bin: SimDuration,
    values: Vec<f64>,
}

impl BinnedSeries {
    /// A series of `n_bins` zeros with the given bin width.
    pub fn zeros(bin: SimDuration, n_bins: usize) -> Self {
        assert!(!bin.is_zero());
        BinnedSeries {
            bin,
            values: vec![0.0; n_bins],
        }
    }

    /// Build from explicit values.
    pub fn from_values(bin: SimDuration, values: Vec<f64>) -> Self {
        assert!(!bin.is_zero());
        BinnedSeries { bin, values }
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values, one per bin.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Start time of bin `i`.
    pub fn bin_start(&self, i: usize) -> SimTime {
        SimTime::ZERO + self.bin * (i as u64)
    }

    /// Bin index containing instant `t`, if within the series.
    pub fn index_of(&self, t: SimTime) -> Option<usize> {
        let i = t.bin_index(self.bin) as usize;
        (i < self.values.len()).then_some(i)
    }

    /// Add `v` to the bin containing `t`. Silently ignores out-of-range
    /// instants (trailing observations after the analysis window).
    pub fn add_at(&mut self, t: SimTime, v: f64) {
        if let Some(i) = self.index_of(t) {
            self.values[i] += v;
        }
    }

    /// Increment the bin containing `t` by one (counting observations).
    pub fn incr_at(&mut self, t: SimTime) {
        self.add_at(t, 1.0);
    }

    /// Set the bin containing `t` to `v`.
    pub fn set_at(&mut self, t: SimTime, v: f64) {
        if let Some(i) = self.index_of(t) {
            self.values[i] = v;
        }
    }

    /// Element-wise sum with another series of identical shape.
    pub fn add_series(&mut self, other: &BinnedSeries) {
        assert_eq!(self.bin, other.bin, "bin widths differ");
        assert_eq!(self.values.len(), other.values.len(), "lengths differ");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
    }

    /// Element-wise ratio to a scalar (e.g. normalize to a median).
    pub fn scaled(&self, k: f64) -> BinnedSeries {
        BinnedSeries {
            bin: self.bin,
            values: self.values.iter().map(|v| v * k).collect(),
        }
    }

    /// Minimum over bins (NaN-free series assumed).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum over bins.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Median over bins (see [`crate::stats::median`]).
    pub fn median(&self) -> f64 {
        crate::stats::median(&self.values)
    }

    /// Restrict to bins whose start lies in `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> BinnedSeries {
        let lo = (from.bin_index(self.bin) as usize).min(self.values.len());
        let hi = (to.bin_index(self.bin) as usize).min(self.values.len());
        BinnedSeries {
            bin: self.bin,
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Iterate `(bin_start, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (self.bin_start(i), v))
    }
}

/// Accumulates `(time, value)` samples and reduces each bin with a chosen
/// statistic — the pattern used for per-bin median RTT (Figures 4, 7, 13).
#[derive(Debug, Clone)]
pub struct SampleBins {
    bin: SimDuration,
    samples: Vec<Vec<f64>>,
}

/// Per-bin reduction statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduce {
    Median,
    Mean,
    Count,
    Min,
    Max,
}

impl SampleBins {
    pub fn new(bin: SimDuration, n_bins: usize) -> Self {
        assert!(!bin.is_zero());
        SampleBins {
            bin,
            samples: vec![Vec::new(); n_bins],
        }
    }

    /// Record one sample at instant `t`. Out-of-range samples are dropped.
    pub fn push(&mut self, t: SimTime, v: f64) {
        let i = t.bin_index(self.bin) as usize;
        if let Some(bin) = self.samples.get_mut(i) {
            bin.push(v);
        }
    }

    /// Number of samples in the bin containing `t`.
    pub fn count_at(&self, t: SimTime) -> usize {
        let i = t.bin_index(self.bin) as usize;
        self.samples.get(i).map_or(0, Vec::len)
    }

    /// Reduce to a [`BinnedSeries`]. Empty bins yield `empty_value`
    /// (typically `f64::NAN` for RTT series, `0.0` for counts).
    pub fn reduce(&self, how: Reduce, empty_value: f64) -> BinnedSeries {
        let values = self
            .samples
            .iter()
            .map(|s| {
                if s.is_empty() {
                    if how == Reduce::Count {
                        0.0
                    } else {
                        empty_value
                    }
                } else {
                    match how {
                        Reduce::Median => crate::stats::median(s),
                        Reduce::Mean => s.iter().sum::<f64>() / s.len() as f64,
                        Reduce::Count => s.len() as f64,
                        Reduce::Min => s.iter().copied().fold(f64::INFINITY, f64::min),
                        Reduce::Max => s.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    }
                }
            })
            .collect();
        BinnedSeries {
            bin: self.bin,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimTime {
        SimTime::from_mins(m)
    }

    #[test]
    fn incr_counts_per_bin() {
        let mut s = BinnedSeries::zeros(SimDuration::from_mins(10), 6);
        s.incr_at(mins(0));
        s.incr_at(mins(9));
        s.incr_at(mins(10));
        s.incr_at(mins(59));
        assert_eq!(s.values(), &[2.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn out_of_range_ignored() {
        let mut s = BinnedSeries::zeros(SimDuration::from_mins(10), 2);
        s.incr_at(mins(25));
        assert_eq!(s.values(), &[0.0, 0.0]);
    }

    #[test]
    fn window_slices_bins() {
        let s = BinnedSeries::from_values(SimDuration::from_mins(10), vec![1.0, 2.0, 3.0, 4.0]);
        let w = s.window(mins(10), mins(30));
        assert_eq!(w.values(), &[2.0, 3.0]);
    }

    #[test]
    fn min_max_median() {
        let s = BinnedSeries::from_values(SimDuration::from_mins(10), vec![5.0, 1.0, 3.0]);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.median(), 3.0);
    }

    #[test]
    fn sample_bins_median_reduction() {
        let mut b = SampleBins::new(SimDuration::from_mins(10), 2);
        b.push(mins(1), 10.0);
        b.push(mins(2), 30.0);
        b.push(mins(3), 20.0);
        let med = b.reduce(Reduce::Median, f64::NAN);
        assert_eq!(med.values()[0], 20.0);
        assert!(med.values()[1].is_nan());
        let counts = b.reduce(Reduce::Count, 0.0);
        assert_eq!(counts.values(), &[3.0, 0.0]);
    }

    #[test]
    fn add_series_elementwise() {
        let mut a = BinnedSeries::from_values(SimDuration::from_mins(10), vec![1.0, 2.0]);
        let b = BinnedSeries::from_values(SimDuration::from_mins(10), vec![3.0, 4.0]);
        a.add_series(&b);
        assert_eq!(a.values(), &[4.0, 6.0]);
    }
}
