//! Virtual simulation time.
//!
//! All rootcast components share one virtual clock. Time is kept as an
//! integer number of **nanoseconds** since the start of the scenario, which
//! keeps arithmetic exact and makes runs bit-for-bit reproducible (no
//! floating-point drift in the event queue ordering).
//!
//! The paper analyzes a 48-hour window starting 2015-11-30T00:00 UTC; the
//! scenario layer maps `SimTime::ZERO` to that instant, but nothing in this
//! module depends on the mapping.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock, in nanoseconds since scenario start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The scenario start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since scenario start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds since scenario start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole minutes since scenario start.
    pub const fn from_mins(m: u64) -> Self {
        SimTime::from_secs(m * 60)
    }

    /// Construct from whole hours since scenario start.
    pub const fn from_hours(h: u64) -> Self {
        SimTime::from_secs(h * 3600)
    }

    /// Raw nanoseconds since scenario start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since scenario start, truncated.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since scenario start as a float (for plotting/analysis only;
    /// never used for event ordering).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Hours since scenario start as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Time since an earlier instant. Saturates at zero rather than
    /// panicking so that analysis code can subtract freely.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The index of the bin of width `bin` containing this instant.
    ///
    /// The paper maps measurements into 10-minute bins (§2.4.1); this is the
    /// primitive that implements that mapping.
    pub fn bin_index(self, bin: SimDuration) -> u64 {
        assert!(bin.0 > 0, "bin width must be positive");
        self.0 / bin.0
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    pub const fn from_mins(m: u64) -> Self {
        SimDuration::from_secs(m * 60)
    }

    pub const fn from_hours(h: u64) -> Self {
        SimDuration::from_secs(h * 3600)
    }

    /// Build from a float number of seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs();
        write!(f, "{:02}:{:02}:{:02}", s / 3600, (s / 60) % 60, s % 60)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_nanos(1_000_000_000));
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimDuration::from_millis(5), SimDuration::from_micros(5_000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(100);
        let d = SimDuration::from_secs(40);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn bin_index_ten_minutes() {
        let bin = SimDuration::from_mins(10);
        assert_eq!(SimTime::ZERO.bin_index(bin), 0);
        assert_eq!(SimTime::from_mins(9).bin_index(bin), 0);
        assert_eq!(SimTime::from_mins(10).bin_index(bin), 1);
        assert_eq!(SimTime::from_hours(48).bin_index(bin), 288);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3661).to_string(), "01:01:01");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_micros(250).to_string(), "0.250ms");
        assert_eq!(SimDuration::from_nanos(42).to_string(), "42ns");
    }
}
