//! Piecewise-constant fluid rate signals.
//!
//! Aggregate traffic (attack load, legitimate query load) is modeled as a
//! *fluid*: a rate in queries/second that changes at discrete instants.
//! This hybrid style — fluid for bulk traffic, discrete events for probe
//! packets — keeps a 48-hour, multi-million-qps scenario tractable while
//! preserving the queueing behaviour the paper observes (loss and
//! bufferbloat-driven RTT inflation at overloaded sites, §3.3.2).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A rate signal: value changes at breakpoints and is constant in between.
///
/// Breakpoints are kept sorted by construction; `set_from` truncates any
/// later history, which matches how simulations build signals forward in
/// time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RateSignal {
    /// `(since, rate)` pairs sorted by `since`; the signal is 0 before the
    /// first breakpoint.
    points: Vec<(SimTime, f64)>,
}

impl RateSignal {
    /// A signal that is zero everywhere.
    pub fn zero() -> Self {
        RateSignal { points: Vec::new() }
    }

    /// A signal constant at `rate` from time zero.
    pub fn constant(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite());
        RateSignal {
            points: vec![(SimTime::ZERO, rate)],
        }
    }

    /// Set the rate from `t` onward, discarding any breakpoints at or after
    /// `t` (simulations only ever extend signals forward).
    pub fn set_from(&mut self, t: SimTime, rate: f64) {
        assert!(
            rate >= 0.0 && rate.is_finite(),
            "rate must be >= 0, got {rate}"
        );
        while let Some(&(since, _)) = self.points.last() {
            if since >= t {
                self.points.pop();
            } else {
                break;
            }
        }
        // Skip no-op breakpoints to keep the vector compact.
        if self.points.last().map(|&(_, r)| r) == Some(rate) {
            return;
        }
        if self.points.is_empty() && rate == 0.0 {
            return;
        }
        self.points.push((t, rate));
    }

    /// The rate at instant `t`.
    pub fn at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by(|&(since, _)| since.cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Integrate the signal over `[from, to)`: total quantity (e.g. number
    /// of queries) carried in the window.
    pub fn integrate(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to >= from);
        if self.points.is_empty() || from == to {
            return 0.0;
        }
        let mut total = 0.0;
        let mut cursor = from;
        // Index of the first breakpoint strictly after `from`.
        let mut idx = match self.points.binary_search_by(|&(since, _)| since.cmp(&from)) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        let mut rate = self.at(from);
        while cursor < to {
            let next = match self.points.get(idx) {
                Some(&(since, _)) if since < to => since,
                _ => to,
            };
            total += rate * (next - cursor).as_secs_f64();
            if next < to {
                rate = self.points[idx].1;
                idx += 1;
            }
            cursor = next;
        }
        total
    }

    /// The mean rate over `[from, to)`.
    pub fn mean(&self, from: SimTime, to: SimTime) -> f64 {
        let span = (to - from).as_secs_f64();
        if span == 0.0 {
            return 0.0;
        }
        self.integrate(from, to) / span
    }

    /// All breakpoints `(since, rate)` in order. Mostly for tests and
    /// debugging.
    pub fn breakpoints(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Times at which the signal changes within `[from, to)`, including
    /// `from` itself. Useful for stepping a queue model across exactly the
    /// intervals where its input is constant.
    pub fn change_points(&self, from: SimTime, to: SimTime) -> Vec<SimTime> {
        let mut out = vec![from];
        for &(since, _) in &self.points {
            if since > from && since < to {
                out.push(since);
            }
        }
        out
    }
}

/// Sum of several rate signals evaluated lazily.
pub fn sum_at(signals: &[&RateSignal], t: SimTime) -> f64 {
    signals.iter().map(|s| s.at(t)).sum()
}

/// A leaky-bucket / fluid queue that converts offered load vs. capacity
/// into loss fraction and queueing delay.
///
/// This is the model behind the paper's observation that overloaded sites
/// show RTTs inflated from ~30 ms to 1–2 s ("industrial-scale bufferbloat",
/// §3.3.2): routers in front of a site buffer deeply, so sustained overload
/// fills the buffer and every accepted query sees the full drain time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluidQueue {
    /// Service capacity, queries per second.
    pub capacity_qps: f64,
    /// Buffer depth in queries. Queries beyond this are dropped.
    pub buffer_queries: f64,
    /// Current backlog in queries.
    backlog: f64,
    /// Last time the backlog was updated.
    updated: SimTime,
}

impl FluidQueue {
    pub fn new(capacity_qps: f64, buffer_queries: f64) -> Self {
        assert!(capacity_qps > 0.0);
        assert!(buffer_queries >= 0.0);
        FluidQueue {
            capacity_qps,
            buffer_queries,
            backlog: 0.0,
            updated: SimTime::ZERO,
        }
    }

    /// Current backlog in queries.
    pub fn backlog(&self) -> f64 {
        self.backlog
    }

    /// Advance the queue to time `t` under constant offered load
    /// `offered_qps` since the last update. Returns the fraction of offered
    /// load dropped in the interval (0 if the buffer never filled).
    pub fn advance(&mut self, t: SimTime, offered_qps: f64) -> f64 {
        assert!(t >= self.updated, "queue time went backwards");
        assert!(offered_qps >= 0.0);
        let dt = (t - self.updated).as_secs_f64();
        self.updated = t;
        if dt == 0.0 {
            return 0.0;
        }
        let net = offered_qps - self.capacity_qps;
        let offered_total = offered_qps * dt;
        let dropped;
        if net <= 0.0 {
            // Draining. Backlog falls linearly to zero, nothing dropped.
            self.backlog = (self.backlog + net * dt).max(0.0);
            dropped = 0.0;
        } else {
            // Filling. Time until the buffer is full:
            let headroom = (self.buffer_queries - self.backlog).max(0.0);
            let t_fill = headroom / net;
            if t_fill >= dt {
                self.backlog += net * dt;
                dropped = 0.0;
            } else {
                // Buffer full for the remainder: everything beyond capacity
                // is dropped.
                self.backlog = self.buffer_queries;
                dropped = net * (dt - t_fill);
            }
        }
        if offered_total > 0.0 {
            (dropped / offered_total).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Queueing delay currently experienced by an accepted query: the time
    /// to drain the backlog ahead of it.
    pub fn queue_delay(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.backlog / self.capacity_qps)
    }

    /// Instantaneous drop probability for a *probe* arriving now under the
    /// given offered load: 0 when the buffer has room, else the fraction of
    /// arrivals that cannot be served.
    pub fn drop_probability(&self, offered_qps: f64) -> f64 {
        if self.backlog < self.buffer_queries || offered_qps <= self.capacity_qps {
            0.0
        } else {
            1.0 - self.capacity_qps / offered_qps
        }
    }

    /// Utilization of the service capacity by the given offered load.
    pub fn utilization(&self, offered_qps: f64) -> f64 {
        offered_qps / self.capacity_qps
    }

    /// Reset to an empty queue at time `t` (e.g. after a route withdrawal
    /// empties a site's catchment).
    pub fn reset(&mut self, t: SimTime) {
        assert!(t >= self.updated);
        self.backlog = 0.0;
        self.updated = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn zero_signal_is_zero() {
        let s = RateSignal::zero();
        assert_eq!(s.at(t(5)), 0.0);
        assert_eq!(s.integrate(t(0), t(100)), 0.0);
    }

    #[test]
    fn constant_signal() {
        let s = RateSignal::constant(3.0);
        assert_eq!(s.at(SimTime::ZERO), 3.0);
        assert_eq!(s.at(t(1000)), 3.0);
        assert_eq!(s.integrate(t(10), t(20)), 30.0);
    }

    #[test]
    fn step_changes_apply_from_breakpoint() {
        let mut s = RateSignal::zero();
        s.set_from(t(10), 5.0);
        s.set_from(t(20), 1.0);
        assert_eq!(s.at(t(9)), 0.0);
        assert_eq!(s.at(t(10)), 5.0);
        assert_eq!(s.at(t(19)), 5.0);
        assert_eq!(s.at(t(20)), 1.0);
        // 0*10 + 5*10 + 1*10
        assert_eq!(s.integrate(t(0), t(30)), 60.0);
        assert_eq!(s.mean(t(0), t(30)), 2.0);
    }

    #[test]
    fn set_from_truncates_future() {
        let mut s = RateSignal::zero();
        s.set_from(t(10), 5.0);
        s.set_from(t(20), 9.0);
        s.set_from(t(15), 2.0); // rewrites history after t=15
        assert_eq!(s.at(t(20)), 2.0);
        assert_eq!(s.breakpoints().len(), 2);
    }

    #[test]
    fn redundant_breakpoints_are_skipped() {
        let mut s = RateSignal::zero();
        s.set_from(t(0), 0.0);
        assert!(s.breakpoints().is_empty());
        s.set_from(t(5), 2.0);
        s.set_from(t(7), 2.0);
        assert_eq!(s.breakpoints().len(), 1);
    }

    #[test]
    fn change_points_cover_window() {
        let mut s = RateSignal::zero();
        s.set_from(t(10), 5.0);
        s.set_from(t(20), 1.0);
        assert_eq!(s.change_points(t(5), t(25)), vec![t(5), t(10), t(20)]);
        assert_eq!(s.change_points(t(12), t(18)), vec![t(12)]);
    }

    #[test]
    fn queue_underload_never_drops() {
        let mut q = FluidQueue::new(100.0, 1000.0);
        let loss = q.advance(t(100), 50.0);
        assert_eq!(loss, 0.0);
        assert_eq!(q.backlog(), 0.0);
        assert_eq!(q.queue_delay(), SimDuration::ZERO);
    }

    #[test]
    fn queue_overload_fills_then_drops() {
        // capacity 100 qps, buffer 1000 queries, offered 200 qps.
        // Fill time = 1000/(200-100) = 10 s. Over 20 s, 10 s of overflow
        // drops (200-100)*10 = 1000 of 4000 offered => 25% loss.
        let mut q = FluidQueue::new(100.0, 1000.0);
        let loss = q.advance(t(20), 200.0);
        assert!((loss - 0.25).abs() < 1e-9, "loss={loss}");
        assert_eq!(q.backlog(), 1000.0);
        // Queue delay = 1000/100 = 10 s of bufferbloat.
        assert_eq!(q.queue_delay(), SimDuration::from_secs(10));
        assert!((q.drop_probability(200.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn queue_drains_after_overload() {
        let mut q = FluidQueue::new(100.0, 1000.0);
        q.advance(t(20), 200.0); // full
        let loss = q.advance(t(40), 50.0); // drains at 50 qps net
        assert_eq!(loss, 0.0);
        assert_eq!(q.backlog(), 0.0);
    }

    #[test]
    fn queue_reset_clears_backlog() {
        let mut q = FluidQueue::new(100.0, 1000.0);
        q.advance(t(20), 200.0);
        q.reset(t(21));
        assert_eq!(q.backlog(), 0.0);
        assert_eq!(q.drop_probability(200.0), 0.0);
    }
}
