//! The discrete-event scheduler.
//!
//! rootcast simulations are driven by a single-threaded event loop: handlers
//! pop timestamped events in order and may schedule further events. Ties on
//! the timestamp are broken by insertion order (FIFO), which — together with
//! the seeded RNG in [`crate::rng`] — makes every run deterministic.
//!
//! The scheduler is generic over the event payload `E` so each layer of the
//! stack can define its own event enum without boxing.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: a payload due at a virtual instant.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    due: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // and break timestamp ties by insertion sequence (FIFO).
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue with a virtual clock.
///
/// ```
/// use rootcast_netsim::event::EventQueue;
/// use rootcast_netsim::time::SimTime;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "second");
/// q.schedule(SimTime::from_secs(1), "first");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event, or
    /// zero before any event has run.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (a cheap progress metric).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` at absolute time `due`.
    ///
    /// # Panics
    /// Panics if `due` is in the virtual past: the simulation would no
    /// longer be causally consistent.
    pub fn schedule(&mut self, due: SimTime, payload: E) {
        assert!(
            due >= self.now,
            "cannot schedule into the past: due={due} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { due, seq, payload });
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.due >= self.now);
        self.now = ev.due;
        self.popped += 1;
        Some((ev.due, ev.payload))
    }

    /// Peek the timestamp of the next event without popping it.
    pub fn peek_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.due)
    }

    /// Pop the next event only if it is due at or before `horizon`.
    ///
    /// This is the primitive used to interleave the event loop with
    /// fixed-step fluid updates: drain all events up to the step boundary,
    /// then advance the fluid state.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_due() {
            Some(due) if due <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Advance the clock to `t` without running anything. Used at the end
    /// of a scenario to account for trailing quiet time.
    ///
    /// # Panics
    /// Panics if `t` is before the current time or before a pending event.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot rewind the clock");
        if let Some(due) = self.peek_due() {
            assert!(
                due >= t,
                "advance_to({t}) would skip a pending event at {due}"
            );
        }
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(10), 2);
        assert_eq!(
            q.pop_until(SimTime::from_secs(5)),
            Some((SimTime::from_secs(1), 1))
        );
        assert_eq!(q.pop_until(SimTime::from_secs(5)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn schedule_while_draining() {
        // Handlers may schedule follow-ups; a chain of events each
        // scheduling the next must run to completion.
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        while let Some((t, n)) = q.pop() {
            count += 1;
            if n < 9 {
                q.schedule(t + SimDuration::from_secs(1), n + 1);
            }
        }
        assert_eq!(count, 10);
        assert_eq!(q.now(), SimTime::from_secs(9));
        assert_eq!(q.events_processed(), 10);
    }

    #[test]
    #[should_panic(expected = "would skip a pending event")]
    fn advance_to_cannot_skip_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.advance_to(SimTime::from_secs(2));
    }
}
