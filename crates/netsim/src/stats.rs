//! Small statistics toolkit shared by the analysis modules.
//!
//! Nothing here is exotic: medians and quantiles for RTT series, linear
//! regression for the paper's site-count vs. reachability correlation
//! (§3.2.1 reports R² = 0.87), and a streaming cardinality sketch used by
//! the RSSAC-002 generator to count unique source addresses the way a real
//! collector would (exact counting of ~1.8 B spoofed addresses per day is
//! memory-prohibitive; operators use sketches too).

/// Median of a slice; NaN values are ignored. Returns NaN for an empty (or
/// all-NaN) input.
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Quantile `q` in [0,1] of a slice using the nearest-rank method on the
/// sorted finite values. Returns NaN when no finite values exist.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(f64::total_cmp);
    if v.len() == 1 {
        return v[0];
    }
    // Linear interpolation between closest ranks (type-7, same as numpy
    // default) so medians of even-length slices average the middle pair.
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Arithmetic mean; NaN for empty input, NaN values ignored.
pub fn mean(values: &[f64]) -> f64 {
    let finite: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    finite.iter().sum::<f64>() / finite.len() as f64
}

/// Result of an ordinary-least-squares fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Regression {
    pub slope: f64,
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    pub n: usize,
}

/// Ordinary least squares over `(x, y)` pairs. Pairs with non-finite
/// members are skipped. Returns `None` with fewer than two usable points
/// or when x has zero variance.
pub fn linear_regression(pairs: &[(f64, f64)]) -> Option<Regression> {
    let pts: Vec<(f64, f64)> = pairs
        .iter()
        .copied()
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let n = pts.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let mx = sx / nf;
    let my = sy / nf;
    let sxx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let syy: f64 = pts.iter().map(|p| (p.1 - my).powi(2)).sum();
    let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(Regression {
        slope,
        intercept,
        r_squared,
        n,
    })
}

/// Pearson correlation coefficient; `None` under the same conditions as
/// [`linear_regression`].
pub fn pearson(pairs: &[(f64, f64)]) -> Option<f64> {
    let reg = linear_regression(pairs)?;
    let r = reg.r_squared.sqrt();
    Some(if reg.slope < 0.0 { -r } else { r })
}

/// A fixed-precision HyperLogLog cardinality sketch (2^12 registers,
/// standard error ≈ 1.6 %). Used to count unique spoofed source addresses
/// per letter per day for the RSSAC-002 reports (Table 3's "M IPs" column).
#[derive(Debug, Clone)]
pub struct CardinalitySketch {
    registers: Vec<u8>,
}

const HLL_P: u32 = 12;
const HLL_M: usize = 1 << HLL_P;

impl Default for CardinalitySketch {
    fn default() -> Self {
        Self::new()
    }
}

impl CardinalitySketch {
    pub fn new() -> Self {
        CardinalitySketch {
            registers: vec![0; HLL_M],
        }
    }

    /// Insert a 64-bit item (callers hash their keys; IPv4 addresses are
    /// mixed through [`mix64`] first).
    pub fn insert(&mut self, item: u64) {
        let h = mix64(item);
        let idx = (h >> (64 - HLL_P)) as usize;
        let rest = h << HLL_P;
        // Rank = position of the leftmost 1-bit in the remaining bits.
        let rank = (rest.leading_zeros() + 1).min(64 - HLL_P + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct inserted items.
    pub fn estimate(&self) -> f64 {
        let m = HLL_M as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-i32::from(r)))
            .sum();
        let raw = alpha * m * m / sum;
        // Small-range correction (linear counting) per the HLL paper.
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merge another sketch into this one (union of the underlying sets).
    pub fn merge(&mut self, other: &CardinalitySketch) {
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.registers.fill(0);
    }
}

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn median_ignores_nan() {
        assert_eq!(median(&[f64::NAN, 5.0, 1.0, f64::NAN, 3.0]), 3.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [0.0, 10.0];
        assert_eq!(quantile(&v, 0.0), 0.0);
        assert_eq!(quantile(&v, 1.0), 10.0);
        assert_eq!(quantile(&v, 0.25), 2.5);
    }

    #[test]
    fn regression_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        let r = linear_regression(&pts).unwrap();
        assert!((r.slope - 3.0).abs() < 1e-12);
        assert!((r.intercept - 1.0).abs() < 1e-12);
        assert!((r.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_rejects_degenerate() {
        assert!(linear_regression(&[(1.0, 2.0)]).is_none());
        assert!(linear_regression(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn pearson_sign_follows_slope() {
        let up: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64)).collect();
        let down: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -(i as f64))).collect();
        assert!(pearson(&up).unwrap() > 0.99);
        assert!(pearson(&down).unwrap() < -0.99);
    }

    #[test]
    fn sketch_estimates_within_error() {
        let mut s = CardinalitySketch::new();
        let n = 100_000u64;
        for i in 0..n {
            s.insert(i);
        }
        let est = s.estimate();
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.05, "estimate {est} off by {err}");
    }

    #[test]
    fn sketch_small_range_is_accurate() {
        let mut s = CardinalitySketch::new();
        for i in 0..100u64 {
            s.insert(i);
            s.insert(i); // duplicates must not inflate
        }
        let est = s.estimate();
        assert!((est - 100.0).abs() < 5.0, "estimate {est}");
    }

    #[test]
    fn sketch_merge_is_union() {
        let mut a = CardinalitySketch::new();
        let mut b = CardinalitySketch::new();
        for i in 0..50_000u64 {
            a.insert(i);
            b.insert(i + 25_000);
        }
        a.merge(&b);
        let est = a.estimate();
        let err = (est - 75_000.0).abs() / 75_000.0;
        assert!(err < 0.05, "estimate {est} off by {err}");
    }
}
