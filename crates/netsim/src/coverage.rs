//! Observation coverage accounting.
//!
//! Measurement systems lose data exactly when things get interesting:
//! RSSAC-002 collection is best-effort under stress, Atlas probes
//! disconnect mid-event, BGP collectors have feed gaps. Instead of
//! panicking on (or silently absorbing) the holes, every consumer
//! annotates its result with a [`Coverage`] — how much of the expected
//! observation window was actually observed — so downstream analyses
//! can report *partial* results the way the paper reports around
//! missing operator data.

use serde::{Deserialize, Serialize};

/// Fraction of an expected observation window actually observed.
///
/// Counts are in arbitrary but consistent units (seconds of wall time,
/// probe slots, report bins). `expected == 0.0` means "nothing was ever
/// expected", which counts as complete coverage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Coverage {
    /// Units actually observed.
    pub observed: f64,
    /// Units that would have been observed with no faults.
    pub expected: f64,
}

impl Coverage {
    /// Full coverage over `expected` units.
    pub fn complete(expected: f64) -> Coverage {
        Coverage {
            observed: expected,
            expected,
        }
    }

    /// Record `units` of expected observation, of which `observed`
    /// actually happened.
    pub fn note(&mut self, units: f64, observed: bool) {
        self.expected += units;
        if observed {
            self.observed += units;
        }
    }

    /// Merge another coverage account into this one.
    pub fn merge(&mut self, other: Coverage) {
        self.observed += other.observed;
        self.expected += other.expected;
    }

    /// Observed fraction in `[0, 1]`; 1.0 when nothing was expected.
    pub fn fraction(&self) -> f64 {
        if self.expected <= 0.0 {
            1.0
        } else {
            (self.observed / self.expected).clamp(0.0, 1.0)
        }
    }

    /// True when nothing expected was missed.
    pub fn is_complete(&self) -> bool {
        self.fraction() >= 1.0 - 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_coverage_is_complete() {
        let c = Coverage::default();
        assert_eq!(c.fraction(), 1.0);
        assert!(c.is_complete());
    }

    #[test]
    fn note_tracks_fraction() {
        let mut c = Coverage::default();
        c.note(60.0, true);
        c.note(60.0, false);
        c.note(60.0, true);
        assert!((c.fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!(!c.is_complete());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Coverage::complete(10.0);
        let b = Coverage {
            observed: 0.0,
            expected: 10.0,
        };
        a.merge(b);
        assert!((a.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fraction_clamps() {
        let c = Coverage {
            observed: 12.0,
            expected: 10.0,
        };
        assert_eq!(c.fraction(), 1.0);
        assert!(c.is_complete());
    }
}
