//! Metrics primitives: counters, gauges, and fixed-bucket histograms
//! behind static handles.
//!
//! A [`MetricsRegistry`] is built once from a static catalog (name
//! arrays and histogram specs declared as `const`s by the owning
//! layer), so every update is an index into a flat vector — no string
//! hashing, no allocation, no locks. The engine owns one registry per
//! run and exports it as a [`MetricsSnapshot`] when the run finishes.
//!
//! Handles are plain indices into the catalog the registry was built
//! from. Declaring them as `const`s next to the name arrays keeps the
//! pairing visible and lets a unit test pin handle ↔ name agreement.

use serde::{Deserialize, Serialize};

/// Handle to a monotonically increasing counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub usize);

/// Handle to a last/extreme-value gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub usize);

/// Handle to a fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(pub usize);

/// Static description of one histogram: its name and upper bucket
/// bounds (ascending). Values land in the first bucket whose bound is
/// `>=` the value; anything above the last bound lands in the implicit
/// overflow bucket, so there are `bounds.len() + 1` buckets in total.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSpec {
    pub name: &'static str,
    pub bounds: &'static [f64],
}

/// A run-scoped metrics registry over a static catalog.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    counter_names: &'static [&'static str],
    gauge_names: &'static [&'static str],
    histogram_specs: &'static [HistogramSpec],
    counters: Vec<u64>,
    /// Gauges start unset (`None`) so a never-touched gauge snapshots
    /// as absent instead of a misleading zero.
    gauges: Vec<Option<f64>>,
    hist_counts: Vec<Vec<u64>>,
    hist_sums: Vec<f64>,
}

impl MetricsRegistry {
    /// Build a registry over a static catalog. All values start at zero
    /// (counters, histogram buckets) or unset (gauges).
    pub fn new(
        counter_names: &'static [&'static str],
        gauge_names: &'static [&'static str],
        histogram_specs: &'static [HistogramSpec],
    ) -> MetricsRegistry {
        MetricsRegistry {
            counter_names,
            gauge_names,
            histogram_specs,
            counters: vec![0; counter_names.len()],
            gauges: vec![None; gauge_names.len()],
            hist_counts: histogram_specs
                .iter()
                .map(|s| vec![0; s.bounds.len() + 1])
                .collect(),
            hist_sums: vec![0.0; histogram_specs.len()],
        }
    }

    /// Add `by` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0] += by;
    }

    /// Current value of a counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Set a gauge to `v` (last-value semantics).
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0] = Some(v);
    }

    /// Raise a gauge to `v` if `v` exceeds its current value
    /// (peak-tracking semantics).
    #[inline]
    pub fn max_gauge(&mut self, id: GaugeId, v: f64) {
        match self.gauges[id.0] {
            Some(cur) if cur >= v => {}
            _ => self.gauges[id.0] = Some(v),
        }
    }

    /// Lower a gauge to `v` if `v` is below its current value
    /// (trough-tracking semantics).
    #[inline]
    pub fn min_gauge(&mut self, id: GaugeId, v: f64) {
        match self.gauges[id.0] {
            Some(cur) if cur <= v => {}
            _ => self.gauges[id.0] = Some(v),
        }
    }

    /// Record one observation into a histogram. Non-finite values are
    /// counted in the overflow bucket and excluded from the sum.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: f64) {
        let spec = &self.histogram_specs[id.0];
        let bucket = if v.is_finite() {
            self.hist_sums[id.0] += v;
            spec.bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(spec.bounds.len())
        } else {
            spec.bounds.len()
        };
        self.hist_counts[id.0][bucket] += 1;
    }

    /// Freeze the registry into an export-friendly snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counter_names
                .iter()
                .zip(&self.counters)
                .map(|(&n, &v)| (n.to_string(), v))
                .collect(),
            gauges: self
                .gauge_names
                .iter()
                .zip(&self.gauges)
                .filter_map(|(&n, &v)| v.map(|v| (n.to_string(), v)))
                .collect(),
            histograms: self
                .histogram_specs
                .iter()
                .enumerate()
                .map(|(i, s)| HistogramSnapshot {
                    name: s.name.to_string(),
                    bounds: s.bounds.to_vec(),
                    counts: self.hist_counts[i].clone(),
                    sum: self.hist_sums[i],
                })
                .collect(),
        }
    }
}

/// One histogram, frozen: `counts[i]` observations fell at or below
/// `bounds[i]`; `counts[bounds.len()]` is the overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    /// Sum of all finite observations (for mean computation).
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of the finite observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.total();
        if n == 0 {
            None
        } else {
            Some(self.sum / n as f64)
        }
    }
}

/// Every metric of a finished run, in catalog order. Exported on
/// `SimOutput`; serializes for machine consumption.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Look up a counter by name (convenience for tests/reports).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTERS: &[&str] = &["ticks", "faults"];
    const GAUGES: &[&str] = &["peak_qps", "untouched"];
    const HISTS: &[HistogramSpec] = &[HistogramSpec {
        name: "delay_ms",
        bounds: &[1.0, 10.0, 100.0],
    }];

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut m = MetricsRegistry::new(COUNTERS, GAUGES, HISTS);
        m.inc(CounterId(0), 3);
        m.inc(CounterId(0), 2);
        m.max_gauge(GaugeId(0), 5.0);
        m.max_gauge(GaugeId(0), 2.0);
        let s = m.snapshot();
        assert_eq!(s.counter("ticks"), Some(5));
        assert_eq!(s.counter("faults"), Some(0));
        assert_eq!(s.gauge("peak_qps"), Some(5.0));
        assert_eq!(s.gauge("untouched"), None);
    }

    #[test]
    fn min_gauge_tracks_troughs() {
        let mut m = MetricsRegistry::new(COUNTERS, GAUGES, HISTS);
        m.min_gauge(GaugeId(0), 0.9);
        m.min_gauge(GaugeId(0), 0.4);
        m.min_gauge(GaugeId(0), 0.7);
        assert_eq!(m.snapshot().gauge("peak_qps"), Some(0.4));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut m = MetricsRegistry::new(COUNTERS, GAUGES, HISTS);
        for v in [0.5, 1.0, 5.0, 50.0, 5000.0, f64::NAN] {
            m.observe(HistogramId(0), v);
        }
        let s = m.snapshot();
        let h = s.histogram("delay_ms").unwrap();
        assert_eq!(h.counts, vec![2, 1, 1, 2]); // NaN lands in overflow
        assert_eq!(h.total(), 6);
        // NaN excluded from the sum.
        assert_eq!(h.sum, 0.5 + 1.0 + 5.0 + 50.0 + 5000.0);
        assert!(h.mean().unwrap().is_finite());
    }

    #[test]
    fn empty_histogram_has_no_mean() {
        let m = MetricsRegistry::new(COUNTERS, GAUGES, HISTS);
        assert_eq!(m.snapshot().histograms[0].mean(), None);
    }
}
