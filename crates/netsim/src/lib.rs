//! # rootcast-netsim
//!
//! Deterministic discrete-event simulation kernel underpinning the
//! [rootcast](../rootcast/index.html) reproduction of *"Anycast vs. DDoS:
//! Evaluating the November 2015 Root DNS Event"* (IMC 2016).
//!
//! This crate deliberately contains **no** networking or DNS knowledge —
//! only the simulation primitives every other layer shares:
//!
//! * [`time`] — integer-nanosecond virtual clock ([`SimTime`],
//!   [`SimDuration`]);
//! * [`event`] — a deterministic event queue with FIFO tie-breaking
//!   ([`EventQueue`]);
//! * [`rng`] — seeded, stream-split randomness ([`SimRng`]) so components
//!   never perturb each other's draws;
//! * [`rate`] — piecewise-constant fluid traffic signals ([`RateSignal`])
//!   and the fluid queue model ([`FluidQueue`]) that converts overload into
//!   loss and bufferbloat delay;
//! * [`series`] — fixed-width time-series bins matching the paper's
//!   10-minute methodology ([`BinnedSeries`], [`SampleBins`]);
//! * [`stats`] — medians, quantiles, OLS regression and a cardinality
//!   sketch for unique-source counting;
//! * [`metrics`] — counters, gauges, and fixed-bucket histograms behind
//!   static handles ([`MetricsRegistry`], [`MetricsSnapshot`]).
//!
//! ## Design
//!
//! Simulations are single-threaded and fully deterministic: the same master
//! seed always reproduces the same run, bit for bit. Parallelism (used by
//! the benchmark harness for parameter sweeps) happens only *across*
//! independent simulations, never inside one.

pub mod coverage;
pub mod event;
pub mod metrics;
pub mod rate;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use coverage::Coverage;
pub use event::EventQueue;
pub use metrics::{
    CounterId, GaugeId, HistogramId, HistogramSnapshot, HistogramSpec, MetricsRegistry,
    MetricsSnapshot,
};
pub use rand_chacha::ChaCha8Rng;
pub use rate::{FluidQueue, RateSignal};
pub use rng::SimRng;
pub use series::{BinnedSeries, Reduce, SampleBins};
pub use time::{SimDuration, SimTime};
