//! Deterministic, stream-split random number generation.
//!
//! Every stochastic component of the simulation draws from its own named
//! stream derived from the scenario's master seed. Adding a new component
//! (or reordering draws inside one) therefore never perturbs the random
//! sequences observed by the others — the property that keeps regression
//! baselines stable as the codebase grows.
//!
//! We use ChaCha8 rather than `rand`'s `StdRng` because ChaCha's output is
//! specified and stable across `rand` versions and platforms.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Factory for per-component RNG streams.
#[derive(Debug, Clone)]
pub struct SimRng {
    master_seed: u64,
}

impl SimRng {
    /// Create the factory from the scenario master seed.
    pub fn new(master_seed: u64) -> Self {
        SimRng { master_seed }
    }

    /// The master seed this factory was created with.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derive the RNG stream for a named component.
    ///
    /// The same `(master_seed, name)` pair always yields the same stream.
    /// Different names yield independent streams (derived by hashing the
    /// name into the ChaCha key, FNV-1a).
    pub fn stream(&self, name: &str) -> ChaCha8Rng {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&self.master_seed.to_le_bytes());
        key[8..16].copy_from_slice(&fnv1a(name.as_bytes()).to_le_bytes());
        // Mix the name a second way so one-character names still spread
        // over the key space.
        let prefix_hash = {
            let prefix: [u8; 16] = key[..16].try_into().expect("16-byte prefix");
            fnv1a(&prefix)
        };
        key[16..24].copy_from_slice(&prefix_hash.to_le_bytes());
        ChaCha8Rng::from_seed(key)
    }

    /// Derive a stream for a named component plus numeric index — e.g. one
    /// stream per vantage point.
    pub fn indexed_stream(&self, name: &str, index: u64) -> ChaCha8Rng {
        let mut rng = self.stream(name);
        // Jump the stream to a per-index position by re-keying. ChaCha8Rng
        // supports cheap stream selection via `set_stream`.
        rng.set_stream(index);
        rng
    }
}

/// 64-bit FNV-1a hash; tiny, stable, dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Draw from an exponential distribution with the given rate (events per
/// unit) using inverse-CDF sampling. Returns the waiting time in the same
/// unit as `1/rate`. Used for Poisson arrival processes.
pub fn exp_sample<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Sample an index from a discrete distribution given by non-negative
/// weights. Panics if all weights are zero or the slice is empty.
pub fn weighted_index<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weights must have a positive finite sum"
    );
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    // Floating-point round-off can leave us past the end; return the last
    // non-zero weight.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("at least one positive weight")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let a = SimRng::new(42).stream("atlas").next_u64();
        let b = SimRng::new(42).stream("atlas").next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let a = SimRng::new(42).stream("atlas").next_u64();
        let b = SimRng::new(42).stream("attack").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SimRng::new(1).stream("atlas").next_u64();
        let b = SimRng::new(2).stream("atlas").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent_and_stable() {
        let f = SimRng::new(7);
        let a1 = f.indexed_stream("vp", 1).next_u64();
        let a2 = f.indexed_stream("vp", 2).next_u64();
        let a1_again = f.indexed_stream("vp", 1).next_u64();
        assert_ne!(a1, a2);
        assert_eq!(a1, a1_again);
    }

    #[test]
    fn exp_sample_mean_approximates_inverse_rate() {
        let mut rng = SimRng::new(3).stream("exp");
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp_sample(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(9).stream("w");
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = f64::from(counts[2]) / f64::from(counts[0]);
        assert!((ratio - 3.0).abs() < 0.3, "ratio={ratio}");
    }

    #[test]
    #[should_panic(expected = "positive finite sum")]
    fn weighted_index_rejects_all_zero() {
        let mut rng = SimRng::new(9).stream("w");
        weighted_index(&mut rng, &[0.0, 0.0]);
    }
}
