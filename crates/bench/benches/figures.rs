//! One benchmark per table and figure of the paper.
//!
//! Each bench regenerates its table/figure from the cached scenario and
//! prints it once, so `cargo bench --bench figures` both times the
//! analysis pipeline and reproduces the paper's outputs:
//!
//! | bench id | reproduces |
//! |---|---|
//! | `table2_site_census` | Table 2 |
//! | `table3_event_size`  | Table 3 |
//! | `fig2_policy_model`  | Figure 2 / §2.2 cases |
//! | `fig3_letter_reachability` | Figure 3 + R² |
//! | `fig4_letter_rtt`    | Figure 4 |
//! | `fig5_site_minmax`   | Figure 5 (E & K) |
//! | `fig6_site_series`   | Figure 6 (E & K) |
//! | `fig7_site_rtt`      | Figure 7 |
//! | `fig8_site_flips`    | Figure 8 |
//! | `fig9_route_changes` | Figure 9 |
//! | `fig10_flip_flows`   | Figure 10 (K-LHR, K-FRA) |
//! | `fig11_vp_raster`    | Figure 11 + cohorts |
//! | `fig12_13_servers`   | Figures 12 & 13 |
//! | `fig14_collateral_droot` | Figure 14 |
//! | `fig15_collateral_nl`    | Figure 15 |

use criterion::{criterion_group, criterion_main, Criterion};
use rootcast::analysis::{
    collateral, event_size, flips, letter_rtt, raster, reachability, routing, servers, site_reach,
    site_rtt,
};
use rootcast::{policy_model, Letter};
use rootcast_bench::bench_scenario;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let out = bench_scenario();

    c.bench_function("table2_site_census", |b| {
        b.iter(|| black_box(site_reach::table2(out)))
    });
    println!("{}", site_reach::table2(out).render());

    c.bench_function("table3_event_size", |b| {
        b.iter(|| black_box(event_size::table3(out)))
    });
    println!("{}", event_size::table3(out).render());

    c.bench_function("fig2_policy_model", |b| {
        b.iter(|| black_box(policy_model::paper_cases()))
    });
    println!(
        "{}",
        policy_model::render_cases(&policy_model::paper_cases())
    );

    c.bench_function("fig3_letter_reachability", |b| {
        b.iter(|| black_box(reachability::figure3(out)))
    });
    println!("{}", reachability::figure3(out).render());

    c.bench_function("fig4_letter_rtt", |b| {
        b.iter(|| black_box(letter_rtt::figure4(out)))
    });
    println!("{}", letter_rtt::figure4(out).render());

    c.bench_function("fig5_site_minmax", |b| {
        b.iter(|| {
            black_box(site_reach::figure5(out, Letter::E));
            black_box(site_reach::figure5(out, Letter::K));
        })
    });
    println!("{}", site_reach::figure5(out, Letter::K).render());

    c.bench_function("fig6_site_series", |b| {
        b.iter(|| {
            black_box(site_reach::figure6(out, Letter::E));
            black_box(site_reach::figure6(out, Letter::K));
        })
    });
    println!("{}", site_reach::figure6(out, Letter::K).render());

    c.bench_function("fig7_site_rtt", |b| {
        b.iter(|| black_box(site_rtt::figure7(out)))
    });
    println!("{}", site_rtt::figure7(out).render());

    c.bench_function("fig8_site_flips", |b| {
        b.iter(|| black_box(flips::figure8(out)))
    });
    println!("{}", flips::figure8(out).render());

    c.bench_function("fig9_route_changes", |b| {
        b.iter(|| black_box(routing::figure9(out)))
    });
    println!("{}", routing::figure9(out).render());

    c.bench_function("fig10_flip_flows", |b| {
        b.iter(|| {
            black_box(flips::figure10(out, Letter::K, "LHR"));
            black_box(flips::figure10(out, Letter::K, "FRA"));
        })
    });
    println!("{}", flips::figure10(out, Letter::K, "LHR").render());

    c.bench_function("fig11_vp_raster", |b| {
        b.iter(|| {
            let f = raster::figure11(out, Letter::K, &["LHR", "FRA"], 300).expect("K is rastered");
            black_box(f.cohort_counts())
        })
    });
    println!(
        "{}",
        raster::figure11(out, Letter::K, &["LHR", "FRA"], 300)
            .expect("K is rastered")
            .render_cohorts()
    );

    c.bench_function("fig12_13_servers", |b| {
        b.iter(|| black_box(servers::figures12_13(out)))
    });
    println!("{}", servers::figures12_13(out).render());

    c.bench_function("fig14_collateral_droot", |b| {
        b.iter(|| black_box(collateral::figure14(out, Letter::D)))
    });
    println!("{}", collateral::figure14(out, Letter::D).render());

    c.bench_function("fig15_collateral_nl", |b| {
        b.iter(|| black_box(collateral::figure15(out)))
    });
    println!("{}", collateral::figure15(out).render());
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = bench_figures
}
criterion_main!(figures);
