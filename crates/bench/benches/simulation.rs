//! End-to-end simulation throughput: how long a scenario takes as the
//! fleet and horizon grow. This is the number that gates "reproduce the
//! whole paper in under a minute".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rootcast::{sim, ScenarioConfig, SimTime};
use rootcast_atlas::FleetParams;
use rootcast_attack::{AttackSchedule, AttackWindow};
use rootcast_netsim::SimDuration;
use std::hint::black_box;

fn cfg_with(n_vps: usize, hours: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small();
    cfg.fleet = FleetParams::tiny(n_vps);
    cfg.horizon = SimTime::from_hours(hours);
    cfg.pipeline.horizon = cfg.horizon;
    cfg.attack = AttackSchedule::new(vec![AttackWindow {
        start: SimTime::from_mins(30),
        duration: SimDuration::from_mins(30),
        qname: "www.336901.com".into(),
        targets: AttackSchedule::nov2015_targets(),
        rate_qps: 2_000_000.0,
    }]);
    cfg
}

/// Pulse-wave attack schedule (Khamaisi et al. style): short bursts at a
/// fixed cadence, each strong enough to trip the withdraw policy at the
/// targeted letters and quiet gaps long enough for re-announcement, so
/// every pulse exercises RIB reconvergence and collector diffs.
fn cfg_pulse_wave(n_vps: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small();
    cfg.fleet = FleetParams::tiny(n_vps);
    cfg.horizon = SimTime::from_hours(3);
    cfg.pipeline.horizon = cfg.horizon;
    let windows = (0..16u64)
        .map(|i| AttackWindow {
            start: SimTime::from_mins(10 + i * 10),
            duration: SimDuration::from_mins(5),
            qname: "www.336901.com".into(),
            targets: AttackSchedule::nov2015_targets(),
            rate_qps: 2_500_000.0,
        })
        .collect();
    cfg.attack = AttackSchedule::new(windows);
    cfg
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario_run");
    g.sample_size(10);
    for &n_vps in &[100usize, 400, 1000] {
        g.bench_with_input(BenchmarkId::new("vps", n_vps), &n_vps, |b, &n| {
            b.iter(|| black_box(sim::run(&cfg_with(n, 2)).expect("valid scenario")))
        });
    }
    for &hours in &[1u64, 2, 4] {
        g.bench_with_input(BenchmarkId::new("hours", hours), &hours, |b, &h| {
            b.iter(|| black_box(sim::run(&cfg_with(400, h)).expect("valid scenario")))
        });
    }
    g.bench_with_input(
        BenchmarkId::new("withdraw_oscillation", "pulse"),
        &400usize,
        |b, &n| b.iter(|| black_box(sim::run(&cfg_pulse_wave(n)).expect("valid scenario"))),
    );
    // The same run with the structured event trace enabled: the gap to
    // `vps/1000` above is the whole observability overhead (the metrics
    // registry is always on; only tracing is opt-in).
    g.bench_with_input(
        BenchmarkId::new("vps_traced", 1000usize),
        &1000usize,
        |b, &n| {
            let mut cfg = cfg_with(n, 2);
            cfg.trace.enabled = true;
            cfg.trace.capacity = 65_536;
            b.iter(|| black_box(sim::run(&cfg).expect("valid scenario")))
        },
    );
    g.finish();
}

criterion_group!(simulation, bench_simulation);
criterion_main!(simulation);
