//! Micro-benchmarks of the simulation kernels: the hot paths a
//! full-scale run spends its time in. Useful when optimizing, and as a
//! regression tripwire for the 30-second full reproduction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rootcast::engine::{FluidTraffic, NoopInstrumentation, SimWorld};
use rootcast::{ScenarioConfig, Subsystem};
use rootcast_anycast::{AnycastService, CatchmentIndex};
use rootcast_atlas::{clean_outcome, CleanObs, MeasurementPipeline, PipelineConfig, VpId};
use rootcast_atlas::{RawMeasurement, RawOutcome};
use rootcast_attack::{Botnet, BotnetParams};
use rootcast_bgp::{compute_rib_scoped, Origin, Scope};
use rootcast_dns::{Letter, Message, Name, RootZone, RrClass, RrType, ServerIdentity};
use rootcast_netsim::stats::CardinalitySketch;
use rootcast_netsim::{FluidQueue, SimDuration, SimRng, SimTime};
use rootcast_topology::{gen, Tier, TopologyParams};
use std::hint::black_box;

fn bench_topology(c: &mut Criterion) {
    c.bench_function("topology_generate_default", |b| {
        b.iter(|| black_box(gen::generate(&TopologyParams::default(), &SimRng::new(1))))
    });
}

fn bench_bgp(c: &mut Criterion) {
    let graph = gen::generate(&TopologyParams::default(), &SimRng::new(1));
    let stubs = graph.by_tier(Tier::Stub);
    // A 30-origin anycast prefix (K-root scale).
    let origins: Vec<Origin> = stubs
        .iter()
        .step_by(stubs.len() / 30)
        .take(30)
        .map(|&host| Origin {
            host,
            scope: Scope::Global,
            prepend: 0,
        })
        .collect();
    let active = vec![true; origins.len()];
    c.bench_function("bgp_rib_30_sites_1600_ases", |b| {
        b.iter(|| black_box(compute_rib_scoped(&graph, &origins, &active)))
    });
    // The withdrawal-reconvergence path: one site toggles.
    let mut toggled = active.clone();
    toggled[0] = false;
    c.bench_function("bgp_reconverge_after_withdrawal", |b| {
        b.iter(|| black_box(compute_rib_scoped(&graph, &origins, &toggled)))
    });
}

fn bench_dns(c: &mut Criterion) {
    let zone = RootZone::nov2015();
    let q = Message::query(
        1,
        Name::parse("www.336901.com").unwrap(),
        RrType::A,
        RrClass::In,
    );
    c.bench_function("dns_encode_query", |b| b.iter(|| black_box(q.encode())));
    let referral = zone.answer(&q);
    c.bench_function("dns_encode_referral", |b| {
        b.iter(|| black_box(referral.encode()))
    });
    let wire = referral.encode();
    c.bench_function("dns_decode_referral", |b| {
        b.iter(|| black_box(Message::decode(&wire).unwrap()))
    });
    let id = ServerIdentity::new(Letter::K, "AMS", 2);
    let txt = id.format_txt();
    c.bench_function("chaos_parse_identity", |b| {
        b.iter(|| black_box(ServerIdentity::parse_txt(Letter::K, &txt)))
    });
    c.bench_function("rootzone_answer_referral", |b| {
        b.iter(|| black_box(zone.answer(&q)))
    });
}

fn bench_rrl(c: &mut Criterion) {
    use rootcast_dns::{RateLimiter, RrlConfig};
    c.bench_function("rrl_check_mixed_sources", |b| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        use rand::Rng;
        b.iter_batched(
            || RateLimiter::new(RrlConfig::default()),
            |mut rrl| {
                for i in 0..1000u32 {
                    let src = if rng.gen_bool(0.68) {
                        [100, 64, 0, (i % 200) as u8]
                    } else {
                        let b = rng.gen::<u32>().to_be_bytes();
                        [b[0].max(1), b[1], b[2], b[3]]
                    };
                    black_box(rrl.check(src, SimTime::from_nanos(u64::from(i) * 1000)));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_fluid(c: &mut Criterion) {
    c.bench_function("fluid_queue_advance_1000_steps", |b| {
        b.iter_batched(
            || FluidQueue::new(100_000.0, 150_000.0),
            |mut q| {
                let mut t = SimTime::ZERO;
                for i in 0..1000u64 {
                    t += SimDuration::from_secs(60);
                    let offered = if i % 10 < 3 { 250_000.0 } else { 50_000.0 };
                    black_box(q.advance(t, offered));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let cfg = PipelineConfig {
        bin: SimDuration::from_mins(10),
        horizon: SimTime::from_hours(2),
        rtt_subsample: 8,
        watched_sites: vec![(Letter::K, "FRA".into())],
        raster_letters: vec![Letter::K],
        probe_interval: SimDuration::from_mins(4),
    };
    c.bench_function("pipeline_record_10k_observations", |b| {
        b.iter_batched(
            || {
                let mut p = MeasurementPipeline::new(cfg.clone(), 500);
                p.register_letter(Letter::K, vec!["AMS".into(), "FRA".into(), "LHR".into()]);
                p
            },
            |mut p| {
                let id = ServerIdentity::new(Letter::K, "FRA", 2);
                for i in 0..10_000u64 {
                    let t = SimTime::from_secs(i % 7000);
                    let obs = if i % 7 == 0 {
                        CleanObs::Timeout
                    } else {
                        CleanObs::Site(id.clone(), SimDuration::from_millis(30))
                    };
                    p.record(VpId((i % 500) as u32), Letter::K, t, &obs)
                        .unwrap();
                }
                p.finalize();
                black_box(p)
            },
            BatchSize::SmallInput,
        )
    });
    // The cleaning classifier on raw outcomes.
    let m = RawMeasurement {
        vp: 1,
        letter: Letter::K,
        at: SimTime::ZERO,
        outcome: RawOutcome::Reply {
            txt: ServerIdentity::new(Letter::K, "AMS", 1).format_txt(),
            rtt: SimDuration::from_millis(30),
        },
    };
    c.bench_function("clean_outcome_reply", |b| {
        b.iter(|| black_box(clean_outcome(&m)))
    });
}

fn bench_catchment(c: &mut Criterion) {
    // The offered_per_site kernel at K-root scale: the uncached path
    // rebuilds the per-site weight sums from the full RIB every call
    // (O(n_AS)); the cached path refreshes a CatchmentIndex (a no-op
    // while the routing epoch and weight version are unchanged) and
    // fills from the per-site sums (O(n_sites)).
    let rng = SimRng::new(1);
    let graph = gen::generate(&TopologyParams::default(), &rng);
    let d = rootcast::nov2015_deployments(&graph)
        .into_iter()
        .find(|d| d.letter == Letter::K)
        .expect("K-root deployed");
    let svc = AnycastService::new("k-root", Some(Letter::K), &graph, d.sites);
    let botnet = Botnet::generate(&graph, BotnetParams::default(), &rng);
    let weights = botnet.weights();
    c.bench_function("offered_per_site_uncached", |b| {
        b.iter(|| black_box(svc.offered_per_site(weights, 2_500_000.0)))
    });
    let mut idx = CatchmentIndex::default();
    let mut out = Vec::new();
    c.bench_function("offered_per_site_cached", |b| {
        b.iter(|| {
            svc.refresh_catchment_index(&mut idx, weights, 1);
            idx.offered_per_site_into(2_500_000.0, &mut out);
            black_box(out.last().copied())
        })
    });
}

fn bench_fluid_tick(c: &mut Criterion) {
    // One full fluid window over the small scenario: catchment loads,
    // shared facilities, ingress queues, and stress policies for all 13
    // letters plus .nl.
    let cfg = ScenarioConfig::small();
    let rngf = SimRng::new(cfg.seed);
    let mut obs = NoopInstrumentation;
    let mut world = SimWorld::build(&cfg, &rngf, &mut obs).expect("world builds");
    let mut fluid = FluidTraffic::new(cfg.fluid_step);
    let mut t = SimTime::ZERO;
    c.bench_function("fluid_tick", |b| {
        b.iter(|| {
            t += cfg.fluid_step;
            black_box(fluid.tick(&mut world, t))
        })
    });
}

fn bench_sketch(c: &mut Criterion) {
    c.bench_function("hll_insert_100k", |b| {
        b.iter_batched(
            CardinalitySketch::new,
            |mut s| {
                for i in 0..100_000u64 {
                    s.insert(i);
                }
                black_box(s.estimate())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_topology, bench_bgp, bench_dns, bench_rrl, bench_fluid, bench_catchment, bench_fluid_tick, bench_pipeline, bench_sketch
}
criterion_main!(kernels);
