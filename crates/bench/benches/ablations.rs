//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! These are *experiments* dressed as benches: each sweeps one modeling
//! dial, runs the scenario (or model) at each setting, and prints the
//! outcome table next to its timing — so `cargo bench --bench ablations`
//! documents how sensitive the reproduction is to each choice.
//!
//! * `ablation_policy_sweep` — absorb vs withdraw across attack sizes
//!   (the §2.2 model, exhaustively);
//! * `ablation_buffer_depth` — bufferbloat depth vs RTT inflation and
//!   loss (the Figure 7 mechanism);
//! * `ablation_rrl` — response-rate limiting on/off vs response volume
//!   (the Table 3 query/response asymmetry);
//! * `ablation_site_scaling` — deployment size vs survival under a
//!   fixed attack (the Figure 3 correlation, controlled).

use criterion::{criterion_group, criterion_main, Criterion};
use rootcast::policy_model::{paper_deployment, Strategy};
use rootcast_anycast::{AnycastService, FacilityTable, SiteSpec};
use rootcast_attack::{Botnet, BotnetParams};
use rootcast_dns::rrl::{blended_suppression, effective_response_rate};
use rootcast_netsim::{FluidQueue, SimDuration, SimRng, SimTime};
use rootcast_topology::{gen, Tier, TopologyParams};
use std::hint::black_box;

fn ablation_policy_sweep(c: &mut Criterion) {
    c.bench_function("ablation_policy_sweep", |b| {
        b.iter(|| {
            let mut results = Vec::new();
            for step in 0..=48 {
                let a = step as f64 * 0.25;
                let d = paper_deployment(1.0, a, a);
                let hs: Vec<u32> = Strategy::ALL
                    .iter()
                    .map(|s| s.apply(&d).happiness())
                    .collect();
                results.push((a, hs, d.best_possible()));
            }
            black_box(results)
        })
    });
    // Outcome table.
    println!("\n--- ablation: absorb vs withdraw (H by attack size) ---");
    println!("a      absorb  w/ISP1  w/small  reroute  best");
    for step in (0..=48).step_by(8) {
        let a = step as f64 * 0.25;
        let d = paper_deployment(1.0, a, a);
        let hs: Vec<u32> = Strategy::ALL
            .iter()
            .map(|s| s.apply(&d).happiness())
            .collect();
        println!(
            "{:<6} {:<7} {:<7} {:<8} {:<8} {}",
            a,
            hs[0],
            hs[1],
            hs[2],
            hs[3],
            d.best_possible()
        );
    }
}

fn ablation_buffer_depth(c: &mut Criterion) {
    let run = |buffer_secs: f64| -> (f64, f64) {
        // A site at 2x overload for 10 minutes, buffer sized in seconds
        // of capacity.
        let capacity = 100_000.0;
        let mut q = FluidQueue::new(capacity, capacity * buffer_secs);
        let loss = q.advance(SimTime::from_mins(10), capacity * 2.0);
        (q.queue_delay().as_millis_f64(), loss)
    };
    c.bench_function("ablation_buffer_depth", |b| {
        b.iter(|| {
            for &secs in &[0.01, 0.1, 0.5, 1.0, 2.0, 5.0] {
                black_box(run(secs));
            }
        })
    });
    println!("\n--- ablation: buffer depth vs RTT inflation (2x overload, 10 min) ---");
    println!("buffer(s of capacity)  queue delay(ms)  loss");
    for &secs in &[0.01, 0.1, 0.5, 1.0, 2.0, 5.0] {
        let (delay, loss) = run(secs);
        println!("{secs:<22} {delay:<16.0} {loss:.2}");
    }
    println!("(B-root's stable RTT under loss = shallow buffer; K-AMS's 2s RTT = deep buffer)");
}

fn ablation_rrl(c: &mut Criterion) {
    let attack_qps = 5_000_000.0;
    c.bench_function("ablation_rrl", |b| {
        b.iter(|| {
            let s = blended_suppression(attack_qps, 0.68, 200, 5.0);
            black_box(effective_response_rate(attack_qps, s))
        })
    });
    println!("\n--- ablation: RRL on/off at 5 Mq/s fixed-qname attack ---");
    let s = blended_suppression(attack_qps, 0.68, 200, 5.0);
    println!("RRL off: {:.2} M responses/s", attack_qps / 1e6);
    println!(
        "RRL on:  {:.2} M responses/s ({:.0}% suppressed; Verisign reported 60%)",
        effective_response_rate(attack_qps, s) / 1e6,
        s * 100.0
    );
}

fn ablation_site_scaling(c: &mut Criterion) {
    // Fixed 2 Mq/s attack against deployments of 1..24 sites, in two
    // regimes: constant per-site capacity (aggregate grows with the
    // deployment — the real-world case behind Figure 3's correlation)
    // and constant total capacity (pure catchment-splitting, no added
    // muscle — where more sites mostly adds exposure imbalance).
    let graph = gen::generate(&TopologyParams::tiny(), &SimRng::new(11));
    let botnet = Botnet::generate(&graph, BotnetParams::default(), &SimRng::new(11));
    let stubs = graph.by_tier(Tier::Stub);
    let attack = 2_000_000.0;
    let run = |n_sites: usize, per_site_capacity: f64| -> f64 {
        let sites: Vec<SiteSpec> = (0..n_sites)
            .map(|i| {
                SiteSpec::global(
                    "AMS", // code is irrelevant to routing
                    stubs[(i * stubs.len()) / n_sites],
                    per_site_capacity,
                )
            })
            .collect();
        let mut svc = AnycastService::new("scaling", None, &graph, sites);
        let facilities = FacilityTable::new();
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_mins(1);
            let offered = svc.offered_per_site(botnet.weights(), attack);
            svc.advance_queues(t, &offered, &facilities);
        }
        // Served fraction across sites = survival proxy.
        let served: f64 = svc.served_per_site().iter().sum();
        let offered: f64 = svc.offered_per_site(botnet.weights(), attack).iter().sum();
        served / offered
    };
    c.bench_function("ablation_site_scaling", |b| {
        b.iter(|| {
            for &n in &[1usize, 2, 4, 8, 16, 24] {
                black_box(run(n, 300_000.0));
                black_box(run(n, 1_200_000.0 / n as f64));
            }
        })
    });
    println!("\n--- ablation: site count vs served fraction of a 2 Mq/s attack ---");
    println!("sites  constant-per-site (300k each)  constant-total (1.2M split)");
    for &n in &[1usize, 2, 4, 8, 16, 24] {
        println!(
            "{n:<6} {:<31.2} {:.2}",
            run(n, 300_000.0),
            run(n, 1_200_000.0 / n as f64)
        );
    }
    println!("(more sites helps because it adds capacity AND isolation; splitting a");
    println!(" fixed capacity mostly reshuffles exposure — the paper's correlation");
    println!(" rides on deployments growing, not splitting)");
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_policy_sweep, ablation_buffer_depth, ablation_rrl, ablation_site_scaling
}
criterion_main!(ablations);
