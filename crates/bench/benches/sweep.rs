//! Sweep-engine throughput: the same scenario grid executed over one
//! shared substrate versus a naive per-run rebuild. The gap is the
//! payoff of hoisting topology generation and baseline BGP convergence
//! out of the per-run loop — the sweep acceptance bar is >= 1.5x.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rootcast::{
    run_sweep, run_sweep_with, ConfigPatch, Letter, ScenarioConfig, SimTime, SiteOverride,
    SiteTuning, SweepAxis, SweepOptions, SweepPlan,
};
use std::hint::black_box;

/// A 2x2 grid on a short horizon over an enlarged topology: substrate
/// construction (topology + baseline RIBs + fleet calibration)
/// dominates each run, which is the regime real sweeps live in — many
/// cheap variants of one expensive world.
fn plan() -> SweepPlan {
    let mut base = ScenarioConfig::small();
    base.topology.n_tier2 = 60;
    base.topology.n_stub = 1200;
    base.horizon = SimTime::from_mins(20);
    base.pipeline.horizon = base.horizon;
    SweepPlan::grid(
        "bench",
        base,
        &[
            SweepAxis::new(
                "legit",
                vec![
                    ("base", ConfigPatch::none()),
                    ("low", ConfigPatch::none().with_legit_total_qps(200_000.0)),
                ],
            ),
            SweepAxis::new(
                "klhr",
                vec![
                    ("base", ConfigPatch::none()),
                    (
                        "thin",
                        ConfigPatch::none().with_site_override(SiteOverride::new(
                            Letter::K,
                            "LHR",
                            SiteTuning::none().with_capacity(20_000.0),
                        )),
                    ),
                ],
            ),
        ],
    )
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_grid");
    g.sample_size(10);
    let plan = plan();
    g.bench_with_input(
        BenchmarkId::new("shared", plan.runs.len()),
        &plan,
        |b, p| b.iter(|| black_box(run_sweep(p).expect("valid sweep"))),
    );
    g.bench_with_input(
        BenchmarkId::new("naive_rebuild", plan.runs.len()),
        &plan,
        |b, p| {
            let opts = SweepOptions {
                no_substrate_reuse: true,
                ..SweepOptions::default()
            };
            b.iter(|| black_box(run_sweep_with(p, &opts).expect("valid sweep")))
        },
    );
    g.finish();
}

criterion_group!(sweep, bench_sweep);
criterion_main!(sweep);
