//! Shared fixtures for the rootcast benchmark harness.
//!
//! Every figure/table bench needs a finished simulation; building one
//! per benchmark would dwarf the measured work, so this crate caches one
//! scenario per scale behind `OnceLock`s. The bench targets then measure
//! the *analysis* cost of regenerating each table/figure (and print each
//! one once, so `cargo bench` output doubles as a mini-reproduction).

use rootcast::{sim, ScenarioConfig, SimDuration, SimOutput, SimTime};
use rootcast_attack::{AttackSchedule, AttackWindow};
use std::sync::OnceLock;

/// A small scenario with one event — fast enough that `cargo bench`
/// startup stays pleasant, rich enough that every figure is non-trivial.
pub fn bench_scenario() -> &'static SimOutput {
    static OUT: OnceLock<SimOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        let mut cfg = ScenarioConfig::small();
        cfg.horizon = SimTime::from_hours(4);
        cfg.pipeline.horizon = cfg.horizon;
        cfg.attack = AttackSchedule::new(vec![AttackWindow {
            start: SimTime::from_mins(90),
            duration: SimDuration::from_mins(40),
            qname: "www.336901.com".into(),
            targets: AttackSchedule::nov2015_targets(),
            rate_qps: 3_000_000.0,
        }]);
        sim::run(&cfg).expect("valid scenario")
    })
}

/// A scenario config with the given attack rate (for sweeps).
pub fn swept_config(rate_qps: f64, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small();
    cfg.seed = seed;
    cfg.horizon = SimTime::from_hours(2);
    cfg.pipeline.horizon = cfg.horizon;
    cfg.attack = AttackSchedule::new(vec![AttackWindow {
        start: SimTime::from_mins(40),
        duration: SimDuration::from_mins(40),
        qname: "www.336901.com".into(),
        targets: AttackSchedule::nov2015_targets(),
        rate_qps,
    }]);
    cfg
}
