//! # rootcast-dns
//!
//! DNS machinery for the rootcast reproduction of *"Anycast vs. DDoS"*
//! (IMC 2016): a real wire-format codec, the 13 root letters with their
//! CHAOS identification conventions, Response Rate Limiting, and a
//! minimal authoritative root zone.
//!
//! * [`name`] — RFC 1035 domain names with compression-pointer decoding;
//! * [`wire`] — message encode/decode (IN + CHAOS classes; A/AAAA/NS/
//!   SOA/TXT/OPT), used so probe traffic is real packets and attack
//!   traffic has exact byte sizes for Table 3;
//! * [`chaos`] — [`Letter`] (A–M) and [`ServerIdentity`]: per-operator
//!   `hostname.bind` formats and the parser that maps TXT replies back to
//!   (letter, site, server) — the instrument behind every catchment
//!   figure in the paper;
//! * [`rrl`] — token-bucket Response Rate Limiting plus the analytic
//!   steady-state form used by the fluid traffic model;
//! * [`rootzone`] — priming responses, `.com`-shaped referrals (the
//!   ~490-byte responses of Table 3), NXDOMAIN, and CHAOS answers.

pub mod chaos;
pub mod name;
pub mod rootzone;
pub mod rrl;
pub mod wire;

pub use chaos::{Letter, ServerIdentity};
pub use name::{Name, NameError};
pub use rootzone::{parse_chaos_response, RootZone};
pub use rrl::{RateLimiter, RrlAction, RrlConfig};
pub use wire::{
    edns0_opt, packet_bytes, Flags, Message, Question, Rcode, Rdata, Record, RrClass, RrType,
    WireError,
};
