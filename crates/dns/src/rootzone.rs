//! A minimal authoritative root zone.
//!
//! Enough of the root to serve the traffic classes in the events: priming
//! queries (`. NS`), TLD referrals (the attack queried `www.336901.com`
//! and `www.916yy.com`, both answered with a `.com` referral), negative
//! answers for nonexistent TLDs, and CHAOS identification.
//!
//! Response sizes produced here feed Table 3's bandwidth estimates, so the
//! referral shape (13 NS + glue) matches the real root's.

use crate::chaos::{Letter, ServerIdentity};
use crate::name::Name;
use crate::wire::{Message, Rcode, Rdata, Record, RrClass, RrType};

/// TTL used for root NS/referral records (2 days, as in the real zone).
const REFERRAL_TTL: u32 = 172_800;
/// Negative TTL from the root SOA.
const NEGATIVE_TTL: u32 = 86_400;

/// The authoritative root zone content: delegated TLDs.
#[derive(Debug, Clone)]
pub struct RootZone {
    /// Sorted list of delegated TLD labels (lowercase).
    tlds: Vec<String>,
    /// Serial for the SOA record.
    pub serial: u32,
}

impl Default for RootZone {
    fn default() -> Self {
        Self::nov2015()
    }
}

impl RootZone {
    /// The delegation set relevant to the Nov/Dec 2015 events (a subset
    /// of the ~1000 real TLDs; behaviourally only `com` and `nl` matter,
    /// the rest exist so random legitimate traffic resolves).
    pub fn nov2015() -> RootZone {
        let mut tlds: Vec<String> = [
            "com", "net", "org", "edu", "gov", "mil", "arpa", "info", "biz", "io", "nl", "de",
            "uk", "fr", "jp", "cn", "ru", "br", "au", "it", "se", "ch", "at", "pl",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        tlds.sort();
        RootZone {
            tlds,
            serial: 2_015_113_000,
        }
    }

    /// Whether `tld` is delegated.
    pub fn is_delegated(&self, tld: &str) -> bool {
        self.tlds
            .binary_search_by(|t| t.as_str().cmp(&tld.to_ascii_lowercase()))
            .is_ok()
    }

    /// Number of delegated TLDs.
    pub fn tld_count(&self) -> usize {
        self.tlds.len()
    }

    fn soa_record(&self) -> Record {
        Record {
            name: Name::root(),
            rtype: RrType::Soa,
            class: RrClass::In,
            ttl: NEGATIVE_TTL,
            rdata: Rdata::Soa {
                mname: Name::parse("a.root-servers.net").expect("static name"),
                rname: Name::parse("nstld.verisign-grs.com").expect("static name"),
                serial: self.serial,
                refresh: 1800,
                retry: 900,
                expire: 604_800,
                minimum: NEGATIVE_TTL,
            },
        }
    }

    /// Answer an IN-class query as this root letter would.
    ///
    /// * `. NS` → the 13 root NS records plus glue (priming response);
    /// * `<name under delegated TLD>` → referral: TLD NS set + glue;
    /// * `<name under unknown TLD>` → NXDOMAIN with SOA;
    /// * non-IN class → handled by [`RootZone::answer_chaos`] or REFUSED.
    pub fn answer(&self, query: &Message) -> Message {
        let Some(q) = query.questions.first() else {
            let mut r = query.response_to(Rcode::FormErr);
            r.flags.authoritative = false;
            return r;
        };
        if q.qclass != RrClass::In {
            let mut r = query.response_to(Rcode::Refused);
            r.flags.authoritative = false;
            return r;
        }
        if q.qname.is_root() {
            return self.priming_response(query);
        }
        // The TLD is the last label.
        let tld: String = q
            .qname
            .labels()
            .last()
            .map(|l| String::from_utf8_lossy(l).into_owned())
            .expect("non-root name has labels");
        if self.is_delegated(&tld) {
            self.referral_response(query, &tld)
        } else {
            let mut r = query.response_to(Rcode::NxDomain);
            r.authorities.push(self.soa_record());
            r
        }
    }

    /// The priming response: `. NS` for all 13 letters, with A glue.
    fn priming_response(&self, query: &Message) -> Message {
        let mut r = query.response_to(Rcode::NoError);
        for letter in Letter::ALL {
            let fqdn = Name::parse(&letter.fqdn()).expect("letter fqdn");
            r.answers.push(Record {
                name: Name::root(),
                rtype: RrType::Ns,
                class: RrClass::In,
                ttl: REFERRAL_TTL,
                rdata: Rdata::Ns(fqdn.clone()),
            });
            r.additionals.push(Record {
                name: fqdn,
                rtype: RrType::A,
                class: RrClass::In,
                ttl: REFERRAL_TTL,
                rdata: Rdata::A(letter.service_addr()),
            });
        }
        r
    }

    /// A referral to `tld`'s name servers (13 NS + glue, the real root's
    /// `.com` shape, which produces the ~490-byte responses in Table 3).
    fn referral_response(&self, query: &Message, tld: &str) -> Message {
        let mut r = query.response_to(Rcode::NoError);
        // Referrals are not authoritative answers.
        r.flags.authoritative = false;
        let tld_name = Name::parse(tld).expect("valid tld label");
        let n_servers = if tld == "com" || tld == "net" { 13 } else { 8 };
        for i in 0..n_servers {
            let ns = Name::parse(&format!("{}.{}-servers.example", (b'a' + i) as char, tld))
                .expect("constructed ns name");
            r.authorities.push(Record {
                name: tld_name.clone(),
                rtype: RrType::Ns,
                class: RrClass::In,
                ttl: REFERRAL_TTL,
                rdata: Rdata::Ns(ns.clone()),
            });
            r.additionals.push(Record {
                name: ns,
                rtype: RrType::A,
                class: RrClass::In,
                ttl: REFERRAL_TTL,
                rdata: Rdata::A([192, 5, 6, 30 + i]),
            });
        }
        r
    }

    /// Answer a CHAOS-class TXT query (`hostname.bind` / `id.server`)
    /// with the responding server's identity.
    pub fn answer_chaos(query: &Message, identity: &ServerIdentity) -> Message {
        let Some(q) = query.questions.first() else {
            return query.response_to(Rcode::FormErr);
        };
        let qname = q.qname.to_string();
        let known = qname == "hostname.bind." || qname == "id.server.";
        if q.qclass != RrClass::Chaos || q.qtype != RrType::Txt || !known {
            let mut r = query.response_to(Rcode::Refused);
            r.flags.authoritative = false;
            return r;
        }
        let mut r = query.response_to(Rcode::NoError);
        r.answers.push(Record {
            name: q.qname.clone(),
            rtype: RrType::Txt,
            class: RrClass::Chaos,
            ttl: 0,
            rdata: Rdata::Txt(vec![identity.format_txt().into_bytes()]),
        });
        r
    }
}

/// Extract the server identity from a CHAOS response, if present and
/// well-formed for `letter`. This is the measurement-side complement of
/// [`RootZone::answer_chaos`], used by the Atlas probing pipeline.
pub fn parse_chaos_response(letter: Letter, response: &Message) -> Option<ServerIdentity> {
    let rec = response
        .answers
        .iter()
        .find(|r| r.rtype == RrType::Txt && r.class == RrClass::Chaos)?;
    match &rec.rdata {
        Rdata::Txt(strings) => {
            let txt = strings.first()?;
            let txt = std::str::from_utf8(txt).ok()?;
            ServerIdentity::parse_txt(letter, txt)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::packet_bytes;

    fn zone() -> RootZone {
        RootZone::nov2015()
    }

    fn query(name: &str, rtype: RrType) -> Message {
        Message::query(42, Name::parse(name).unwrap(), rtype, RrClass::In)
    }

    #[test]
    fn attack_name_gets_com_referral() {
        let z = zone();
        let q = query("www.336901.com", RrType::A);
        let r = z.answer(&q);
        assert_eq!(r.rcode(), Rcode::NoError);
        assert!(r.answers.is_empty(), "referral has no answers");
        assert_eq!(r.authorities.len(), 13);
        assert_eq!(r.additionals.len(), 13);
        assert!(!r.flags.authoritative);
        // Response size near the paper's 493-byte attack responses.
        let sz = packet_bytes(r.encode().len());
        assert!(
            (380..=620).contains(&sz),
            "referral packet size {sz} out of expected band"
        );
    }

    #[test]
    fn both_event_qnames_resolve_identically() {
        let z = zone();
        let r1 = z.answer(&query("www.336901.com", RrType::A));
        let r2 = z.answer(&query("www.916yy.com", RrType::A));
        assert_eq!(r1.authorities.len(), r2.authorities.len());
        // Sizes differ only by the qname length difference (1 byte).
        let d = (r1.encode().len() as i64 - r2.encode().len() as i64).abs();
        assert!(d <= 2, "size delta {d}");
    }

    #[test]
    fn priming_response_lists_all_letters() {
        let z = zone();
        let q = Message::query(1, Name::root(), RrType::Ns, RrClass::In);
        let r = z.answer(&q);
        assert_eq!(r.answers.len(), 13);
        assert_eq!(r.additionals.len(), 13);
        assert!(r.flags.authoritative);
    }

    #[test]
    fn unknown_tld_is_nxdomain_with_soa() {
        let z = zone();
        let r = z.answer(&query("foo.nosuchtld", RrType::A));
        assert_eq!(r.rcode(), Rcode::NxDomain);
        assert_eq!(r.authorities.len(), 1);
        assert!(matches!(r.authorities[0].rdata, Rdata::Soa { .. }));
    }

    #[test]
    fn non_in_class_refused_by_answer() {
        let z = zone();
        let q = Message::query(
            9,
            Name::parse("hostname.bind").unwrap(),
            RrType::Txt,
            RrClass::Chaos,
        );
        assert_eq!(z.answer(&q).rcode(), Rcode::Refused);
    }

    #[test]
    fn chaos_identity_roundtrips_through_wire() {
        let id = ServerIdentity::new(Letter::K, "AMS", 2);
        let q = Message::query(
            7,
            Name::parse("hostname.bind").unwrap(),
            RrType::Txt,
            RrClass::Chaos,
        );
        let r = RootZone::answer_chaos(&q, &id);
        let wire = r.encode();
        let decoded = Message::decode(&wire).unwrap();
        let parsed = parse_chaos_response(Letter::K, &decoded).unwrap();
        assert_eq!(parsed, id);
        // Wrong letter: the pattern must not parse.
        assert!(parse_chaos_response(Letter::E, &decoded).is_none());
    }

    #[test]
    fn chaos_rejects_wrong_qname() {
        let id = ServerIdentity::new(Letter::K, "AMS", 2);
        let q = Message::query(
            7,
            Name::parse("version.bind").unwrap(),
            RrType::Txt,
            RrClass::Chaos,
        );
        let r = RootZone::answer_chaos(&q, &id);
        assert_eq!(r.rcode(), Rcode::Refused);
        assert!(parse_chaos_response(Letter::K, &r).is_none());
    }

    #[test]
    fn id_server_also_accepted() {
        let id = ServerIdentity::new(Letter::E, "FRA", 1);
        let q = Message::query(
            7,
            Name::parse("id.server").unwrap(),
            RrType::Txt,
            RrClass::Chaos,
        );
        let r = RootZone::answer_chaos(&q, &id);
        assert_eq!(r.rcode(), Rcode::NoError);
        assert_eq!(parse_chaos_response(Letter::E, &r), Some(id));
    }

    #[test]
    fn delegation_lookup_is_case_insensitive() {
        let z = zone();
        assert!(z.is_delegated("COM"));
        assert!(z.is_delegated("nl"));
        assert!(!z.is_delegated("example"));
    }
}
