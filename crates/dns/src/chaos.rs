//! Root letters and CHAOS-class server identification.
//!
//! The 13 root services ("letters") answer `hostname.bind TXT CH` queries
//! (RFC 4892) with an identifier naming the responding site and server.
//! Each operator uses its own format — the paper exploits this to map
//! anycast catchments from RIPE Atlas (§2.1), and notes the formats "can
//! be inferred". We give each letter a distinct, parseable style modeled
//! on the operators' conventions, and a parser that recovers
//! `(letter, site, server)` — or fails, which is exactly the signal the
//! cleaning pipeline uses to flag hijacked vantage points (§2.4.1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The 13 DNS root letters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Letter {
    A,
    B,
    C,
    D,
    E,
    F,
    G,
    H,
    I,
    J,
    K,
    L,
    M,
}

impl Letter {
    /// All letters in order.
    pub const ALL: [Letter; 13] = [
        Letter::A,
        Letter::B,
        Letter::C,
        Letter::D,
        Letter::E,
        Letter::F,
        Letter::G,
        Letter::H,
        Letter::I,
        Letter::J,
        Letter::K,
        Letter::L,
        Letter::M,
    ];

    /// The operator of this letter (Table 2).
    pub fn operator(self) -> &'static str {
        match self {
            Letter::A => "Verisign",
            Letter::B => "USC/ISI",
            Letter::C => "Cogent",
            Letter::D => "U. Maryland",
            Letter::E => "NASA",
            Letter::F => "ISC",
            Letter::G => "U.S. DoD",
            Letter::H => "ARL",
            Letter::I => "Netnod",
            Letter::J => "Verisign",
            Letter::K => "RIPE",
            Letter::L => "ICANN",
            Letter::M => "WIDE",
        }
    }

    /// Lowercase letter char.
    pub fn ch(self) -> char {
        (b'a' + self as u8) as char
    }

    /// Uppercase letter char.
    pub fn ch_upper(self) -> char {
        (b'A' + self as u8) as char
    }

    /// Parse from a single letter character.
    pub fn from_char(c: char) -> Option<Letter> {
        let idx = (c.to_ascii_uppercase() as u8).wrapping_sub(b'A');
        Letter::ALL.get(idx as usize).copied()
    }

    /// The letter's service address (a stand-in unique IPv4 per letter;
    /// not the real root addresses).
    pub fn service_addr(self) -> [u8; 4] {
        [198, 41, 10 + self as u8, 4]
    }

    /// `<letter>.root-servers.net`.
    pub fn fqdn(self) -> String {
        format!("{}.root-servers.net", self.ch())
    }
}

impl fmt::Display for Letter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ch_upper())
    }
}

/// Identity of one physical server at one site of one letter —
/// the paper's Figure 1 hierarchy: letter → site → server.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServerIdentity {
    pub letter: Letter,
    /// Three-letter airport code of the site, uppercase (`AMS`).
    pub site: String,
    /// Server ordinal within the site, 1-based.
    pub server: u16,
}

impl ServerIdentity {
    pub fn new(letter: Letter, site: &str, server: u16) -> ServerIdentity {
        assert!(
            site.len() == 3 && site.chars().all(|c| c.is_ascii_alphabetic()),
            "site must be a 3-letter airport code, got {site:?}"
        );
        assert!(server >= 1, "server ordinals are 1-based");
        ServerIdentity {
            letter,
            site: site.to_ascii_uppercase(),
            server,
        }
    }

    /// `X-APT` site label used throughout the paper ("K-AMS").
    pub fn site_label(&self) -> String {
        format!("{}-{}", self.letter, self.site)
    }

    /// Format the `hostname.bind` TXT string in this letter's style.
    ///
    /// Styles are distinct per operator, mirroring the real-world zoo:
    ///
    /// | letter | example |
    /// |--------|---------|
    /// | A | `nnn1-ams2` |
    /// | B | `b3-lax` |
    /// | C | `ams1b.c.root-servers.org` |
    /// | D | `ams1.droot.maxgigapop.net` |
    /// | E | `e2.ams.eroot` |
    /// | F | `ams2a.f.root-servers.org` |
    /// | G | `groot-ams-2` |
    /// | H | `h1.bwi.hroot` |
    /// | I | `s2.ams.i.root` |
    /// | J | `rootns-ams2.j` |
    /// | K | `k2.ams-ix.k.ripe.net` |
    /// | L | `ams1.l.root-servers.org` |
    /// | M | `m2.ams.wide` |
    pub fn format_txt(&self) -> String {
        let site = self.site.to_ascii_lowercase();
        let n = self.server;
        match self.letter {
            Letter::A => format!("nnn1-{site}{n}"),
            Letter::B => format!("b{n}-{site}"),
            Letter::C => format!("{site}{n}b.c.root-servers.org"),
            Letter::D => format!("{site}{n}.droot.maxgigapop.net"),
            Letter::E => format!("e{n}.{site}.eroot"),
            Letter::F => format!("{site}{n}a.f.root-servers.org"),
            Letter::G => format!("groot-{site}-{n}"),
            Letter::H => format!("h{n}.{site}.hroot"),
            Letter::I => format!("s{n}.{site}.i.root"),
            Letter::J => format!("rootns-{site}{n}.j"),
            Letter::K => format!("k{n}.{site}-ix.k.ripe.net"),
            Letter::L => format!("{site}{n}.l.root-servers.org"),
            Letter::M => format!("m{n}.{site}.wide"),
        }
    }

    /// Parse a TXT identity string claimed to come from `letter`.
    ///
    /// Returns `None` when the string does not match the letter's known
    /// pattern — the hijack signal used in data cleaning.
    pub fn parse_txt(letter: Letter, txt: &str) -> Option<ServerIdentity> {
        let mk = |site: &str, n: &str| -> Option<ServerIdentity> {
            if site.len() != 3 || !site.chars().all(|c| c.is_ascii_alphabetic()) {
                return None;
            }
            let server: u16 = n.parse().ok()?;
            if server == 0 {
                return None;
            }
            Some(ServerIdentity::new(letter, site, server))
        };
        // Split "<3 letters><digits>" like "ams12".
        fn split_site_num(s: &str) -> Option<(&str, &str)> {
            if s.len() < 4 {
                return None;
            }
            let (site, num) = s.split_at(3);
            if num.is_empty() || !num.chars().all(|c| c.is_ascii_digit()) {
                return None;
            }
            Some((site, num))
        }
        match letter {
            Letter::A => {
                let rest = txt.strip_prefix("nnn1-")?;
                let (site, n) = split_site_num(rest)?;
                mk(site, n)
            }
            Letter::B => {
                let rest = txt.strip_prefix('b')?;
                let (n, site) = rest.split_once('-')?;
                mk(site, n)
            }
            Letter::C => {
                let rest = txt.strip_suffix("b.c.root-servers.org")?;
                let (site, n) = split_site_num(rest)?;
                mk(site, n)
            }
            Letter::D => {
                let rest = txt.strip_suffix(".droot.maxgigapop.net")?;
                let (site, n) = split_site_num(rest)?;
                mk(site, n)
            }
            Letter::E => {
                let rest = txt.strip_prefix('e')?;
                let mut parts = rest.splitn(3, '.');
                let n = parts.next()?;
                let site = parts.next()?;
                if parts.next()? != "eroot" {
                    return None;
                }
                mk(site, n)
            }
            Letter::F => {
                let rest = txt.strip_suffix("a.f.root-servers.org")?;
                let (site, n) = split_site_num(rest)?;
                mk(site, n)
            }
            Letter::G => {
                let rest = txt.strip_prefix("groot-")?;
                let (site, n) = rest.split_once('-')?;
                mk(site, n)
            }
            Letter::H => {
                let rest = txt.strip_prefix('h')?;
                let mut parts = rest.splitn(3, '.');
                let n = parts.next()?;
                let site = parts.next()?;
                if parts.next()? != "hroot" {
                    return None;
                }
                mk(site, n)
            }
            Letter::I => {
                let rest = txt.strip_prefix('s')?;
                let mut parts = rest.splitn(3, '.');
                let n = parts.next()?;
                let site = parts.next()?;
                if parts.next()? != "i.root" {
                    return None;
                }
                mk(site, n)
            }
            Letter::J => {
                let rest = txt.strip_prefix("rootns-")?.strip_suffix(".j")?;
                let (site, n) = split_site_num(rest)?;
                mk(site, n)
            }
            Letter::K => {
                let rest = txt.strip_prefix('k')?;
                let (n, tail) = rest.split_once('.')?;
                let site = tail.strip_suffix("-ix.k.ripe.net")?;
                mk(site, n)
            }
            Letter::L => {
                let rest = txt.strip_suffix(".l.root-servers.org")?;
                let (site, n) = split_site_num(rest)?;
                mk(site, n)
            }
            Letter::M => {
                let rest = txt.strip_prefix('m')?;
                let mut parts = rest.splitn(3, '.');
                let n = parts.next()?;
                let site = parts.next()?;
                if parts.next()? != "wide" {
                    return None;
                }
                mk(site, n)
            }
        }
    }
}

impl fmt::Display for ServerIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}-s{}", self.letter, self.site, self.server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_letters_roundtrip_identity() {
        for letter in Letter::ALL {
            for (site, server) in [("AMS", 1), ("NRT", 12), ("lhr", 3)] {
                let id = ServerIdentity::new(letter, site, server);
                let txt = id.format_txt();
                let parsed = ServerIdentity::parse_txt(letter, &txt)
                    .unwrap_or_else(|| panic!("{letter}: failed to parse {txt:?}"));
                assert_eq!(parsed, id, "letter {letter} mangled {txt:?}");
            }
        }
    }

    #[test]
    fn parse_rejects_cross_letter_strings() {
        // A K-style identity must not parse as any other letter, etc.
        for src in Letter::ALL {
            let txt = ServerIdentity::new(src, "AMS", 2).format_txt();
            for dst in Letter::ALL {
                if dst == src {
                    continue;
                }
                assert!(
                    ServerIdentity::parse_txt(dst, &txt).is_none(),
                    "{dst} wrongly parsed {src}'s identity {txt:?}"
                );
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for letter in Letter::ALL {
            for garbage in ["", "hello", "k1..k.ripe.net", "resolver.local", "1234"] {
                assert!(
                    ServerIdentity::parse_txt(letter, garbage).is_none(),
                    "{letter} parsed garbage {garbage:?}"
                );
            }
        }
    }

    #[test]
    fn site_label_matches_paper_convention() {
        let id = ServerIdentity::new(Letter::K, "ams", 1);
        assert_eq!(id.site_label(), "K-AMS");
        assert_eq!(id.to_string(), "K-AMS-s1");
    }

    #[test]
    fn letters_have_unique_addresses() {
        let mut addrs: Vec<[u8; 4]> = Letter::ALL.iter().map(|l| l.service_addr()).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 13);
    }

    #[test]
    fn letter_char_roundtrip() {
        for letter in Letter::ALL {
            assert_eq!(Letter::from_char(letter.ch()), Some(letter));
            assert_eq!(Letter::from_char(letter.ch_upper()), Some(letter));
        }
        assert_eq!(Letter::from_char('z'), None);
    }

    #[test]
    fn operators_match_table2() {
        assert_eq!(Letter::B.operator(), "USC/ISI");
        assert_eq!(Letter::K.operator(), "RIPE");
        assert_eq!(Letter::A.operator(), Letter::J.operator());
    }

    #[test]
    fn multi_digit_servers_roundtrip() {
        let id = ServerIdentity::new(Letter::L, "FRA", 42);
        let parsed = ServerIdentity::parse_txt(Letter::L, &id.format_txt()).unwrap();
        assert_eq!(parsed.server, 42);
    }
}
