//! DNS message wire format: header, questions, resource records.
//!
//! The simulation sends *real encoded packets* for probe traffic and uses
//! encoded sizes for the fluid attack model, so Table 3's query/response
//! byte accounting (84/85-byte queries, 493/494-byte responses) rests on
//! an actual codec rather than constants.
//!
//! Scope: everything the root service and the paper's measurements need —
//! IN and CHAOS classes; A, AAAA, NS, SOA, TXT and OPT (EDNS0) types;
//! full RFC 1035 name compression on both encode and decode (question
//! names, owner names, and NS/SOA rdata), matching the compression
//! profile of real root servers so referral responses land in the same
//! size band the paper reports.

use crate::name::{Name, NameError};
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// DNS RR/QTYPE values we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RrType {
    A,
    Ns,
    Soa,
    Txt,
    Aaaa,
    Opt,
    /// Anything else, carried numerically.
    Other(u16),
}

impl RrType {
    pub fn code(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Soa => 6,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Opt => 41,
            RrType::Other(c) => c,
        }
    }

    pub fn from_code(c: u16) -> RrType {
        match c {
            1 => RrType::A,
            2 => RrType::Ns,
            6 => RrType::Soa,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            41 => RrType::Opt,
            other => RrType::Other(other),
        }
    }
}

/// DNS classes. CHAOS matters: `hostname.bind TXT CH` is the query the
/// paper (and RIPE Atlas) uses to identify which site and server answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RrClass {
    In,
    Chaos,
    Other(u16),
}

impl RrClass {
    pub fn code(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::Chaos => 3,
            RrClass::Other(c) => c,
        }
    }

    pub fn from_code(c: u16) -> RrClass {
        match c {
            1 => RrClass::In,
            3 => RrClass::Chaos,
            other => RrClass::Other(other),
        }
    }
}

/// Response codes (RFC 1035 §4.1.1 plus common extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    NotImp,
    Refused,
    Other(u8),
}

impl Rcode {
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(c) => c,
        }
    }

    pub fn from_code(c: u8) -> Rcode {
        match c {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::Other(c) => write!(f, "RCODE{c}"),
        }
    }
}

/// Record data for the types we model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rdata {
    A([u8; 4]),
    Aaaa([u8; 16]),
    Ns(Name),
    Soa {
        mname: Name,
        rname: Name,
        serial: u32,
        refresh: u32,
        retry: u32,
        expire: u32,
        minimum: u32,
    },
    /// TXT: one or more character-strings.
    Txt(Vec<Vec<u8>>),
    /// Opaque bytes for types we carry but do not interpret.
    Raw(Vec<u8>),
}

/// Name-compression state for one message being encoded: maps each name
/// suffix already emitted to its offset, per RFC 1035 §4.1.4. Compression
/// inside rdata is applied only for NS and SOA, the "well-known" types
/// where it is unambiguously legal.
#[derive(Debug, Default)]
struct Compressor {
    offsets: std::collections::HashMap<Vec<Vec<u8>>, u16>,
}

impl Compressor {
    /// Encode `name` at the current buffer position, emitting a pointer
    /// for the longest already-seen suffix and recording new suffixes.
    fn encode_name(&mut self, buf: &mut BytesMut, name: &Name) {
        let labels: Vec<Vec<u8>> = name.labels().map(<[u8]>::to_vec).collect();
        for i in 0..labels.len() {
            let suffix = labels[i..].to_vec();
            if let Some(&off) = self.offsets.get(&suffix) {
                buf.put_u8(0xC0 | (off >> 8) as u8);
                buf.put_u8((off & 0xFF) as u8);
                return;
            }
            // Pointers can only address the first 16 KiB.
            if buf.len() <= 0x3FFF {
                self.offsets.insert(suffix, buf.len() as u16);
            }
            buf.put_u8(labels[i].len() as u8);
            buf.put_slice(&labels[i]);
        }
        buf.put_u8(0);
    }
}

impl Rdata {
    fn encode(&self, buf: &mut BytesMut, comp: &mut Compressor) {
        match self {
            Rdata::A(addr) => buf.put_slice(addr),
            Rdata::Aaaa(addr) => buf.put_slice(addr),
            Rdata::Ns(name) => comp.encode_name(buf, name),
            Rdata::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => {
                comp.encode_name(buf, mname);
                comp.encode_name(buf, rname);
                buf.put_u32(*serial);
                buf.put_u32(*refresh);
                buf.put_u32(*retry);
                buf.put_u32(*expire);
                buf.put_u32(*minimum);
            }
            Rdata::Txt(strings) => {
                for s in strings {
                    buf.put_u8(s.len() as u8);
                    buf.put_slice(s);
                }
            }
            Rdata::Raw(bytes) => buf.put_slice(bytes),
        }
    }

    fn decode(rtype: RrType, msg: &[u8], pos: usize, rdlen: usize) -> Result<Rdata, WireError> {
        let end = pos + rdlen;
        let slice = msg.get(pos..end).ok_or(WireError::Truncated)?;
        Ok(match rtype {
            RrType::A => {
                if rdlen != 4 {
                    return Err(WireError::BadRdata);
                }
                Rdata::A(slice.try_into().expect("checked length"))
            }
            RrType::Aaaa => {
                if rdlen != 16 {
                    return Err(WireError::BadRdata);
                }
                Rdata::Aaaa(slice.try_into().expect("checked length"))
            }
            RrType::Ns => {
                let (name, _) = Name::decode(msg, pos)?;
                Rdata::Ns(name)
            }
            RrType::Soa => {
                let (mname, p) = Name::decode(msg, pos)?;
                let (rname, p) = Name::decode(msg, p)?;
                let fixed = msg.get(p..p + 20).ok_or(WireError::Truncated)?;
                let u =
                    |i: usize| u32::from_be_bytes(fixed[i..i + 4].try_into().expect("fixed slice"));
                Rdata::Soa {
                    mname,
                    rname,
                    serial: u(0),
                    refresh: u(4),
                    retry: u(8),
                    expire: u(12),
                    minimum: u(16),
                }
            }
            RrType::Txt => {
                let mut strings = Vec::new();
                let mut cursor = 0usize;
                while cursor < slice.len() {
                    let l = usize::from(slice[cursor]);
                    let s = slice
                        .get(cursor + 1..cursor + 1 + l)
                        .ok_or(WireError::Truncated)?;
                    strings.push(s.to_vec());
                    cursor += 1 + l;
                }
                Rdata::Txt(strings)
            }
            RrType::Opt | RrType::Other(_) => Rdata::Raw(slice.to_vec()),
        })
    }
}

/// A question entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Question {
    pub qname: Name,
    pub qtype: RrType,
    pub qclass: RrClass,
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    pub name: Name,
    pub rtype: RrType,
    pub class: RrClass,
    pub ttl: u32,
    pub rdata: Rdata,
}

/// The EDNS0 OPT pseudo-record (RFC 6891): root owner name, TYPE=OPT,
/// CLASS carrying the requester's UDP payload size, empty RDATA. On the
/// wire this is exactly 11 bytes — name (1) + type (2) + class (2) +
/// ttl (4) + rdlength (2).
pub fn edns0_opt(udp_payload_size: u16) -> Record {
    Record {
        name: Name::root(),
        rtype: RrType::Opt,
        class: RrClass::Other(udp_payload_size),
        ttl: 0,
        rdata: Rdata::Raw(Vec::new()),
    }
}

/// Message header flags we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Flags {
    pub response: bool,
    pub authoritative: bool,
    pub truncated: bool,
    pub recursion_desired: bool,
    pub recursion_available: bool,
    pub rcode: u8,
}

/// A full DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    pub id: u16,
    pub flags: Flags,
    pub questions: Vec<Question>,
    pub answers: Vec<Record>,
    pub authorities: Vec<Record>,
    pub additionals: Vec<Record>,
}

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    Truncated,
    BadRdata,
    Name(NameError),
    /// More records claimed in the header than present in the body.
    CountMismatch,
}

impl From<NameError> for WireError {
    fn from(e: NameError) -> Self {
        WireError::Name(e)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadRdata => write!(f, "malformed rdata"),
            WireError::Name(e) => write!(f, "bad name: {e}"),
            WireError::CountMismatch => write!(f, "header counts exceed body"),
        }
    }
}

impl std::error::Error for WireError {}

impl Message {
    /// A query for `qname`/`qtype`/`qclass` with the given id.
    pub fn query(id: u16, qname: Name, qtype: RrType, qclass: RrClass) -> Message {
        Message {
            id,
            flags: Flags {
                recursion_desired: false,
                ..Flags::default()
            },
            questions: vec![Question {
                qname,
                qtype,
                qclass,
            }],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Start a response to this query, copying id and question.
    pub fn response_to(&self, rcode: Rcode) -> Message {
        Message {
            id: self.id,
            flags: Flags {
                response: true,
                authoritative: true,
                rcode: rcode.code(),
                ..Flags::default()
            },
            questions: self.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// The response code as an enum.
    pub fn rcode(&self) -> Rcode {
        Rcode::from_code(self.flags.rcode)
    }

    /// Encode to wire format with full RFC 1035 name compression for
    /// question names, record owner names, and NS/SOA rdata names — the
    /// same compression profile real root servers use, which is what
    /// keeps a 13-NS `.com` referral under ~500 bytes (Table 3's
    /// response-size band).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(512);
        buf.put_u16(self.id);
        let f = &self.flags;
        let mut b1: u8 = 0;
        if f.response {
            b1 |= 0x80;
        }
        // OPCODE 0 (QUERY).
        if f.authoritative {
            b1 |= 0x04;
        }
        if f.truncated {
            b1 |= 0x02;
        }
        if f.recursion_desired {
            b1 |= 0x01;
        }
        let mut b2: u8 = f.rcode & 0x0F;
        if f.recursion_available {
            b2 |= 0x80;
        }
        buf.put_u8(b1);
        buf.put_u8(b2);
        buf.put_u16(self.questions.len() as u16);
        buf.put_u16(self.answers.len() as u16);
        buf.put_u16(self.authorities.len() as u16);
        buf.put_u16(self.additionals.len() as u16);

        let mut comp = Compressor::default();
        for q in &self.questions {
            comp.encode_name(&mut buf, &q.qname);
            buf.put_u16(q.qtype.code());
            buf.put_u16(q.qclass.code());
        }
        let put_record = |buf: &mut BytesMut, comp: &mut Compressor, r: &Record| {
            comp.encode_name(buf, &r.name);
            buf.put_u16(r.rtype.code());
            buf.put_u16(r.class.code());
            buf.put_u32(r.ttl);
            let rdlen_pos = buf.len();
            buf.put_u16(0);
            let before = buf.len();
            r.rdata.encode(buf, comp);
            let rdlen = (buf.len() - before) as u16;
            buf[rdlen_pos..rdlen_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
        };
        for r in &self.answers {
            put_record(&mut buf, &mut comp, r);
        }
        for r in &self.authorities {
            put_record(&mut buf, &mut comp, r);
        }
        for r in &self.additionals {
            put_record(&mut buf, &mut comp, r);
        }
        buf.to_vec()
    }

    /// Wire size in bytes without encoding twice.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }

    /// Decode from wire format.
    pub fn decode(msg: &[u8]) -> Result<Message, WireError> {
        if msg.len() < 12 {
            return Err(WireError::Truncated);
        }
        let id = u16::from_be_bytes([msg[0], msg[1]]);
        let b1 = msg[2];
        let b2 = msg[3];
        let flags = Flags {
            response: b1 & 0x80 != 0,
            authoritative: b1 & 0x04 != 0,
            truncated: b1 & 0x02 != 0,
            recursion_desired: b1 & 0x01 != 0,
            recursion_available: b2 & 0x80 != 0,
            rcode: b2 & 0x0F,
        };
        let qd = u16::from_be_bytes([msg[4], msg[5]]) as usize;
        let an = u16::from_be_bytes([msg[6], msg[7]]) as usize;
        let ns = u16::from_be_bytes([msg[8], msg[9]]) as usize;
        let ar = u16::from_be_bytes([msg[10], msg[11]]) as usize;

        let mut pos = 12usize;
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let (qname, p) = Name::decode(msg, pos)?;
            let rest = msg.get(p..p + 4).ok_or(WireError::Truncated)?;
            questions.push(Question {
                qname,
                qtype: RrType::from_code(u16::from_be_bytes([rest[0], rest[1]])),
                qclass: RrClass::from_code(u16::from_be_bytes([rest[2], rest[3]])),
            });
            pos = p + 4;
        }
        let read_records = |pos: &mut usize, count: usize| -> Result<Vec<Record>, WireError> {
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                let (name, p) = Name::decode(msg, *pos)?;
                let fixed = msg.get(p..p + 10).ok_or(WireError::Truncated)?;
                let rtype = RrType::from_code(u16::from_be_bytes([fixed[0], fixed[1]]));
                let class = RrClass::from_code(u16::from_be_bytes([fixed[2], fixed[3]]));
                let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
                let rdlen = u16::from_be_bytes([fixed[8], fixed[9]]) as usize;
                let rd_start = p + 10;
                if msg.len() < rd_start + rdlen {
                    return Err(WireError::Truncated);
                }
                let rdata = Rdata::decode(rtype, msg, rd_start, rdlen)?;
                out.push(Record {
                    name,
                    rtype,
                    class,
                    ttl,
                    rdata,
                });
                *pos = rd_start + rdlen;
            }
            Ok(out)
        };
        let answers = read_records(&mut pos, an)?;
        let authorities = read_records(&mut pos, ns)?;
        let additionals = read_records(&mut pos, ar)?;
        Ok(Message {
            id,
            flags,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

/// Sizes of the non-DNS headers on the wire: IPv4 (20) + UDP (8).
pub const IP_UDP_HEADER_BYTES: usize = 28;

/// Ethernet-independent "packet size" used for bitrate estimates:
/// DNS payload + IP + UDP headers. The paper adds 40 bytes for
/// "IP, UDP, and DNS headers" to payload-only sizes; our accounting
/// carries the DNS header inside the payload, so we add 28.
pub fn packet_bytes(dns_payload: usize) -> usize {
    dns_payload + IP_UDP_HEADER_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_query() -> Message {
        Message::query(
            0x1234,
            Name::parse("www.336901.com").unwrap(),
            RrType::A,
            RrClass::In,
        )
    }

    #[test]
    fn query_roundtrip() {
        let q = a_query();
        let wire = q.encode();
        let d = Message::decode(&wire).unwrap();
        assert_eq!(q, d);
    }

    #[test]
    fn edns0_opt_adds_exactly_eleven_bytes() {
        let bare = a_query();
        let mut with_opt = bare.clone();
        with_opt.additionals.push(edns0_opt(4096));
        assert_eq!(with_opt.wire_size(), bare.wire_size() + 11);
        // And it survives a wire round-trip with the payload size intact.
        let decoded = Message::decode(&with_opt.encode()).unwrap();
        assert_eq!(decoded.additionals.len(), 1);
        let opt = &decoded.additionals[0];
        assert_eq!(opt.rtype, RrType::Opt);
        assert_eq!(opt.class, RrClass::Other(4096));
        assert_eq!(opt.name, Name::root());
        assert_eq!(opt.rdata, Rdata::Raw(Vec::new()));
    }

    #[test]
    fn attack_query_size_matches_paper() {
        // §3.1: full attack query packets were 84/85 bytes including
        // IP/UDP headers. www.336901.com A IN: 12 (header) + 16 (qname)
        // + 4 = 32 DNS bytes, + 28 IP/UDP = 60; with EDNS0 OPT (11
        // bytes) = 71. The paper's 84 bytes includes a longer qname
        // (www.916yy.com is 15) and EDNS; we assert the right ballpark
        // (56..=90) rather than an exact constant.
        let q = a_query();
        let sz = packet_bytes(q.wire_size());
        assert!((56..=90).contains(&sz), "attack query size {sz}");
    }

    #[test]
    fn response_with_records_roundtrips() {
        let q = a_query();
        let mut r = q.response_to(Rcode::NoError);
        let com = Name::parse("com").unwrap();
        for i in 0..13u8 {
            let ns = Name::parse(&format!("{}.gtld-servers.net", (b'a' + i) as char)).unwrap();
            r.authorities.push(Record {
                name: com.clone(),
                rtype: RrType::Ns,
                class: RrClass::In,
                ttl: 172800,
                rdata: Rdata::Ns(ns.clone()),
            });
            r.additionals.push(Record {
                name: ns,
                rtype: RrType::A,
                class: RrClass::In,
                ttl: 172800,
                rdata: Rdata::A([192, 5, 6, 30 + i]),
            });
        }
        let wire = r.encode();
        let d = Message::decode(&wire).unwrap();
        assert_eq!(d.authorities.len(), 13);
        assert_eq!(d.additionals.len(), 13);
        assert_eq!(d.rcode(), Rcode::NoError);
        // A .com referral is a few hundred bytes — the order of
        // magnitude behind the paper's 493-byte responses.
        assert!(wire.len() > 300, "referral size {}", wire.len());
    }

    #[test]
    fn txt_rdata_roundtrip() {
        let q = Message::query(
            7,
            Name::parse("hostname.bind").unwrap(),
            RrType::Txt,
            RrClass::Chaos,
        );
        let mut r = q.response_to(Rcode::NoError);
        r.answers.push(Record {
            name: q.questions[0].qname.clone(),
            rtype: RrType::Txt,
            class: RrClass::Chaos,
            ttl: 0,
            rdata: Rdata::Txt(vec![b"k1.ams-ix.k.ripe.net".to_vec()]),
        });
        let d = Message::decode(&r.encode()).unwrap();
        match &d.answers[0].rdata {
            Rdata::Txt(strings) => {
                assert_eq!(strings[0], b"k1.ams-ix.k.ripe.net");
            }
            other => panic!("wrong rdata {other:?}"),
        }
    }

    #[test]
    fn soa_roundtrip() {
        let rec = Record {
            name: Name::root(),
            rtype: RrType::Soa,
            class: RrClass::In,
            ttl: 86400,
            rdata: Rdata::Soa {
                mname: Name::parse("a.root-servers.net").unwrap(),
                rname: Name::parse("nstld.verisign-grs.com").unwrap(),
                serial: 2015113000,
                refresh: 1800,
                retry: 900,
                expire: 604800,
                minimum: 86400,
            },
        };
        let q = Message::query(1, Name::root(), RrType::Soa, RrClass::In);
        let mut r = q.response_to(Rcode::NoError);
        r.answers.push(rec.clone());
        let d = Message::decode(&r.encode()).unwrap();
        assert_eq!(d.answers[0], rec);
    }

    #[test]
    fn compression_pointer_used_for_answer_owner() {
        let q = Message::query(
            1,
            Name::parse("example.com").unwrap(),
            RrType::A,
            RrClass::In,
        );
        let mut r = q.response_to(Rcode::NoError);
        r.answers.push(Record {
            name: q.questions[0].qname.clone(),
            rtype: RrType::A,
            class: RrClass::In,
            ttl: 60,
            rdata: Rdata::A([1, 2, 3, 4]),
        });
        let wire = r.encode();
        // Owner name is a 2-byte pointer, not 13 bytes of labels:
        // total = 12 header + 17 question + (2+2+2+4+2+4) record = 45.
        assert_eq!(wire.len(), 45);
        let d = Message::decode(&wire).unwrap();
        assert_eq!(d.answers[0].name, q.questions[0].qname);
    }

    #[test]
    fn truncated_messages_rejected() {
        let wire = a_query().encode();
        for cut in [0, 5, 11, wire.len() - 1] {
            assert!(
                Message::decode(&wire[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    /// A complex message exercising every rdata decoder and the name
    /// compressor: SOA + 13-NS referral + glue + TXT + OPT.
    fn complex_message() -> Message {
        let q = a_query();
        let mut r = q.response_to(Rcode::NoError);
        let com = Name::parse("com").unwrap();
        r.answers.push(Record {
            name: Name::root(),
            rtype: RrType::Soa,
            class: RrClass::In,
            ttl: 86400,
            rdata: Rdata::Soa {
                mname: Name::parse("a.root-servers.net").unwrap(),
                rname: Name::parse("nstld.verisign-grs.com").unwrap(),
                serial: 2015113000,
                refresh: 1800,
                retry: 900,
                expire: 604800,
                minimum: 86400,
            },
        });
        r.answers.push(Record {
            name: com.clone(),
            rtype: RrType::Txt,
            class: RrClass::Chaos,
            ttl: 0,
            rdata: Rdata::Txt(vec![b"k1.ams-ix.k.ripe.net".to_vec(), b"x".to_vec()]),
        });
        for i in 0..13u8 {
            let ns = Name::parse(&format!("{}.gtld-servers.net", (b'a' + i) as char)).unwrap();
            r.authorities.push(Record {
                name: com.clone(),
                rtype: RrType::Ns,
                class: RrClass::In,
                ttl: 172800,
                rdata: Rdata::Ns(ns.clone()),
            });
            r.additionals.push(Record {
                name: ns.clone(),
                rtype: RrType::A,
                class: RrClass::In,
                ttl: 172800,
                rdata: Rdata::A([192, 5, 6, 30 + i]),
            });
            r.additionals.push(Record {
                name: ns,
                rtype: RrType::Aaaa,
                class: RrClass::In,
                ttl: 172800,
                rdata: Rdata::Aaaa([0x20, 0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, i]),
            });
        }
        r.additionals.push(edns0_opt(4096));
        r
    }

    #[test]
    fn every_prefix_of_a_valid_packet_parses_or_errors() {
        // Fuzz-style truncation sweep: decoding any prefix of a valid
        // packet must return Ok or Err — never panic (slice-index or
        // otherwise). The full message must still round-trip.
        let msg = complex_message();
        let wire = msg.encode();
        for cut in 0..wire.len() {
            let _ = Message::decode(&wire[..cut]);
        }
        assert_eq!(Message::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        // Flip every byte position to a handful of adversarial values
        // (pointer prefixes, max label length, zero). Decode may accept
        // or reject, but must not panic.
        let wire = complex_message().encode();
        for pos in 0..wire.len() {
            for val in [0x00, 0x3F, 0x40, 0x80, 0xC0, 0xFF] {
                let mut bad = wire.clone();
                bad[pos] = val;
                let _ = Message::decode(&bad);
            }
        }
    }

    #[test]
    fn flags_roundtrip() {
        let mut m = a_query();
        m.flags = Flags {
            response: true,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            rcode: Rcode::Refused.code(),
        };
        let d = Message::decode(&m.encode()).unwrap();
        assert_eq!(d.flags, m.flags);
        assert_eq!(d.rcode(), Rcode::Refused);
    }
}
