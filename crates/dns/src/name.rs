//! Domain names: validation, wire encoding, and decompression.
//!
//! Implements the RFC 1035 name representation used by every query and
//! response in the simulation, including message-compression pointers on
//! decode (responses from real root servers compress aggressively, and
//! response *size* matters for Table 3's bandwidth estimates).

use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum length of a single label.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum total wire length of a name (including length octets and root).
pub const MAX_NAME_LEN: usize = 255;

/// Errors arising from name parsing or construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    EmptyLabel,
    LabelTooLong(usize),
    NameTooLong(usize),
    /// A compression pointer points at or after its own location, or the
    /// pointer chain is too deep.
    BadPointer,
    /// Ran off the end of the buffer.
    Truncated,
    /// A label length octet uses the reserved 0b10/0b01 prefixes.
    BadLabelType(u8),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(n) => write!(f, "label of {n} bytes exceeds 63"),
            NameError::NameTooLong(n) => write!(f, "name of {n} bytes exceeds 255"),
            NameError::BadPointer => write!(f, "invalid compression pointer"),
            NameError::Truncated => write!(f, "truncated name"),
            NameError::BadLabelType(b) => write!(f, "reserved label type {b:#04x}"),
        }
    }
}

impl std::error::Error for NameError {}

/// A fully-qualified domain name, stored as lowercase labels.
///
/// DNS names are case-insensitive; we canonicalize to lowercase at
/// construction so equality and hashing behave.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Name {
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name `.`.
    pub fn root() -> Name {
        Name { labels: Vec::new() }
    }

    /// Parse from presentation format (`www.example.com`, trailing dot
    /// optional). Empty string or `.` yields the root.
    pub fn parse(s: &str) -> Result<Name, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for label in s.split('.') {
            if label.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong(label.len()));
            }
            labels.push(label.to_ascii_lowercase().into_bytes());
        }
        let name = Name { labels };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The labels, most-specific first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(Vec::as_slice)
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Uncompressed wire length: each label costs `1 + len`, plus the
    /// terminating zero octet.
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| 1 + l.len()).sum::<usize>() + 1
    }

    /// Append in uncompressed wire format.
    pub fn encode(&self, buf: &mut BytesMut) {
        for label in &self.labels {
            buf.put_u8(label.len() as u8);
            buf.put_slice(label);
        }
        buf.put_u8(0);
    }

    /// Decode a name starting at `pos` within `msg` (the whole message is
    /// needed to chase compression pointers). Returns the name and the
    /// position just past the name's *first* encoding (i.e. where the
    /// caller continues reading).
    pub fn decode(msg: &[u8], pos: usize) -> Result<(Name, usize), NameError> {
        let mut labels = Vec::new();
        let mut cursor = pos;
        // Where parsing resumes; set at the first pointer jump only.
        let mut resume: Option<usize> = None;
        let mut jumps = 0usize;
        let mut total_len = 1usize; // terminating zero

        loop {
            let &len_byte = msg.get(cursor).ok_or(NameError::Truncated)?;
            match len_byte {
                0 => {
                    cursor += 1;
                    break;
                }
                l if l & 0xC0 == 0xC0 => {
                    // Compression pointer: 14-bit offset.
                    let &lo = msg.get(cursor + 1).ok_or(NameError::Truncated)?;
                    let target = ((usize::from(l & 0x3F)) << 8) | usize::from(lo);
                    // Pointers must go strictly backwards to terminate.
                    if target >= cursor {
                        return Err(NameError::BadPointer);
                    }
                    jumps += 1;
                    if jumps > 32 {
                        return Err(NameError::BadPointer);
                    }
                    if resume.is_none() {
                        resume = Some(cursor + 2);
                    }
                    cursor = target;
                }
                l if l & 0xC0 != 0 => return Err(NameError::BadLabelType(l)),
                l => {
                    let l = usize::from(l);
                    let start = cursor + 1;
                    let end = start + l;
                    let label = msg.get(start..end).ok_or(NameError::Truncated)?;
                    total_len += 1 + l;
                    if total_len > MAX_NAME_LEN {
                        return Err(NameError::NameTooLong(total_len));
                    }
                    labels.push(label.to_ascii_lowercase());
                    cursor = end;
                }
            }
        }
        let next = resume.unwrap_or(cursor);
        Ok((Name { labels }, next))
    }

    /// The parent name (root's parent is root).
    pub fn parent(&self) -> Name {
        if self.labels.is_empty() {
            return Name::root();
        }
        Name {
            labels: self.labels[1..].to_vec(),
        }
    }

    /// True if `self` is `other` or a subdomain of it.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let skip = self.labels.len() - other.labels.len();
        self.labels[skip..] == other.labels[..]
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for label in &self.labels {
            for &b in label {
                if b.is_ascii_graphic() && b != b'.' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{:03}", b)?;
                }
            }
            f.write_str(".")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let n = Name::parse("www.Example.COM").unwrap();
        assert_eq!(n.to_string(), "www.example.com.");
        assert_eq!(n.label_count(), 3);
    }

    #[test]
    fn root_forms() {
        assert!(Name::parse("").unwrap().is_root());
        assert!(Name::parse(".").unwrap().is_root());
        assert_eq!(Name::root().to_string(), ".");
        assert_eq!(Name::root().wire_len(), 1);
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!(Name::parse("a..b"), Err(NameError::EmptyLabel));
        let long = "x".repeat(64);
        assert!(matches!(
            Name::parse(&long),
            Err(NameError::LabelTooLong(64))
        ));
        let huge = (0..50).map(|_| "abcde").collect::<Vec<_>>().join(".");
        assert!(matches!(Name::parse(&huge), Err(NameError::NameTooLong(_))));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let n = Name::parse("e.root-servers.net").unwrap();
        let mut buf = BytesMut::new();
        n.encode(&mut buf);
        assert_eq!(buf.len(), n.wire_len());
        let (decoded, next) = Name::decode(&buf, 0).unwrap();
        assert_eq!(decoded, n);
        assert_eq!(next, buf.len());
    }

    #[test]
    fn decode_follows_compression_pointer() {
        // Message: name "example.com" at 0, then "www" + pointer to 0.
        let mut buf = BytesMut::new();
        Name::parse("example.com").unwrap().encode(&mut buf);
        let ptr_at = buf.len();
        buf.put_u8(3);
        buf.put_slice(b"www");
        buf.put_u8(0xC0);
        buf.put_u8(0);
        let (n, next) = Name::decode(&buf, ptr_at).unwrap();
        assert_eq!(n, Name::parse("www.example.com").unwrap());
        assert_eq!(next, buf.len());
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Pointer at 0 pointing to itself.
        let buf = [0xC0u8, 0x00];
        assert_eq!(Name::decode(&buf, 0), Err(NameError::BadPointer));
    }

    #[test]
    fn decode_rejects_truncation() {
        let buf = [5u8, b'a', b'b'];
        assert_eq!(Name::decode(&buf, 0), Err(NameError::Truncated));
        let empty: [u8; 0] = [];
        assert_eq!(Name::decode(&empty, 0), Err(NameError::Truncated));
    }

    #[test]
    fn decode_rejects_reserved_label_types() {
        let buf = [0x80u8, 0x00];
        assert_eq!(Name::decode(&buf, 0), Err(NameError::BadLabelType(0x80)));
    }

    #[test]
    fn every_prefix_of_a_compressed_name_parses_or_errors() {
        // Truncation sweep over a pointer-compressed encoding: no prefix
        // may panic, and decoding at any in-range start offset must also
        // return cleanly.
        let mut buf = BytesMut::new();
        Name::parse("example.com").unwrap().encode(&mut buf);
        let ptr_at = buf.len();
        buf.put_u8(3);
        buf.put_slice(b"www");
        buf.put_u8(0xC0);
        buf.put_u8(0);
        for cut in 0..buf.len() {
            let _ = Name::decode(&buf[..cut], ptr_at.min(cut.saturating_sub(1)));
        }
        for start in 0..buf.len() + 2 {
            let _ = Name::decode(&buf, start);
        }
        assert!(Name::decode(&buf, ptr_at).is_ok());
    }

    #[test]
    fn pointer_loop_is_rejected_not_infinite() {
        // a chain of strictly-backwards pointers longer than the jump
        // budget must error out, not hang.
        let mut buf = BytesMut::new();
        buf.put_u8(0); // offset 0: root, a valid terminator
        for i in 0..40u16 {
            // each pointer at offset 1+2i targets the previous pointer
            let target = if i == 0 { 0 } else { 1 + 2 * (i - 1) };
            buf.put_u8(0xC0 | (target >> 8) as u8);
            buf.put_u8((target & 0xFF) as u8);
        }
        let last = buf.len() - 2;
        assert_eq!(Name::decode(&buf, last), Err(NameError::BadPointer));
    }

    #[test]
    fn subdomain_relationships() {
        let root = Name::root();
        let com = Name::parse("com").unwrap();
        let www = Name::parse("www.example.com").unwrap();
        assert!(www.is_subdomain_of(&com));
        assert!(www.is_subdomain_of(&root));
        assert!(com.is_subdomain_of(&com));
        assert!(!com.is_subdomain_of(&www));
        assert_eq!(www.parent(), Name::parse("example.com").unwrap());
        assert_eq!(root.parent(), root);
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(
            Name::parse("WWW.ORG").unwrap(),
            Name::parse("www.org").unwrap()
        );
    }
}
