//! Response Rate Limiting (RRL).
//!
//! Verisign reported that RRL "identified duplicated queries to drop 60%
//! of the responses" during the Nov. 30 event (§2.3), and the paper
//! attributes the query/response asymmetry in Table 3 to it. RRL tracks
//! per-source response rates and suppresses responses beyond a budget,
//! optionally "slipping" an occasional truncated reply so legitimate
//! clients can fall back to TCP.
//!
//! We implement the classic token-bucket-per-/24 design with bounded
//! memory, plus an analytic aggregate helper used by the fluid traffic
//! model (per-packet simulation of 5 Mq/s over 48 h is deliberately out
//! of scope; the analytic form is exact for the steady state).

use rootcast_netsim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Decision for one response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrlAction {
    /// Send the response normally.
    Respond,
    /// Suppress the response entirely.
    Drop,
    /// Send a minimal truncated response (every `slip`-th drop).
    Slip,
}

/// RRL configuration.
#[derive(Debug, Clone, Copy)]
pub struct RrlConfig {
    /// Sustained responses per second allowed per /24 source block.
    pub responses_per_second: f64,
    /// Bucket depth in responses (burst allowance).
    pub burst: f64,
    /// Every n-th dropped response is slipped (0 = never slip).
    pub slip: u32,
    /// Maximum tracked source blocks; beyond this the oldest-seen block
    /// is evicted (bounded memory under spoofed floods).
    pub max_entries: usize,
}

impl Default for RrlConfig {
    fn default() -> Self {
        RrlConfig {
            responses_per_second: 5.0,
            burst: 15.0,
            slip: 2,
            max_entries: 100_000,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    updated: SimTime,
    drops: u32,
}

/// Token-bucket RRL state for one server.
#[derive(Debug)]
pub struct RateLimiter {
    config: RrlConfig,
    buckets: HashMap<u32, Bucket>,
    /// Count of responses allowed/dropped/slipped, for reporting.
    pub allowed: u64,
    pub dropped: u64,
    pub slipped: u64,
}

impl RateLimiter {
    pub fn new(config: RrlConfig) -> Self {
        assert!(config.responses_per_second > 0.0);
        assert!(config.burst >= 1.0);
        RateLimiter {
            config,
            buckets: HashMap::new(),
            allowed: 0,
            dropped: 0,
            slipped: 0,
        }
    }

    /// The /24 block key for a source address.
    fn key(src: [u8; 4]) -> u32 {
        u32::from_be_bytes([src[0], src[1], src[2], 0])
    }

    /// Decide the fate of a response to `src` at time `now`.
    pub fn check(&mut self, src: [u8; 4], now: SimTime) -> RrlAction {
        let key = Self::key(src);
        if !self.buckets.contains_key(&key) && self.buckets.len() >= self.config.max_entries {
            self.evict_oldest();
        }
        let cfg = self.config;
        let bucket = self.buckets.entry(key).or_insert(Bucket {
            tokens: cfg.burst,
            updated: now,
            drops: 0,
        });
        // Refill.
        let dt = now.saturating_since(bucket.updated).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * cfg.responses_per_second).min(cfg.burst);
        bucket.updated = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            bucket.drops = 0;
            self.allowed += 1;
            RrlAction::Respond
        } else {
            bucket.drops += 1;
            if cfg.slip > 0 && bucket.drops.is_multiple_of(cfg.slip) {
                self.slipped += 1;
                RrlAction::Slip
            } else {
                self.dropped += 1;
                RrlAction::Drop
            }
        }
    }

    /// Number of tracked source blocks.
    pub fn tracked_blocks(&self) -> usize {
        self.buckets.len()
    }

    /// Evict the stalest of a small sample of entries (approximate LRU).
    /// A full min-scan would be O(n) per insert — under the spoofed
    /// floods RRL exists for, that is exactly the hot path — while an
    /// 8-entry sample keeps eviction O(1) with near-LRU behaviour.
    fn evict_oldest(&mut self) {
        if let Some((&key, _)) = self.buckets.iter().take(8).min_by_key(|(_, b)| b.updated) {
            self.buckets.remove(&key);
        }
    }

    /// Fraction of responses suppressed so far (drops excluding slips).
    pub fn suppression_ratio(&self) -> f64 {
        let total = self.allowed + self.dropped + self.slipped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

/// Analytic steady-state RRL suppression for the fluid model.
///
/// If each attacking source block offers `qps_per_source` queries/s and
/// RRL allows `limit` responses/s per block, the suppressed fraction of
/// responses is `max(0, 1 - limit/qps_per_source)`. With the Nov. 30
/// parameters (top-200 sources carrying 68% of 5 Mq/s → ≈17 kq/s each,
/// limit 5/s) suppression approaches 1 for heavy hitters; blended over
/// the observed source distribution it lands near the reported 60%.
pub fn steady_state_suppression(qps_per_source: f64, limit_per_source: f64) -> f64 {
    if qps_per_source <= 0.0 {
        return 0.0;
    }
    (1.0 - limit_per_source / qps_per_source).max(0.0)
}

/// Blended suppression over a two-class source model: a fraction
/// `heavy_share` of queries from `n_heavy` heavy sources, the rest from
/// sources too slow to trip RRL. Mirrors Verisign's description of the
/// event (top 200 addresses = 68% of queries).
pub fn blended_suppression(
    total_qps: f64,
    heavy_share: f64,
    n_heavy: usize,
    limit_per_source: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&heavy_share));
    if total_qps <= 0.0 || n_heavy == 0 {
        return 0.0;
    }
    let heavy_qps_each = total_qps * heavy_share / n_heavy as f64;
    heavy_share * steady_state_suppression(heavy_qps_each, limit_per_source)
}

/// RRL's effect expressed as [`SimDuration`]-free aggregate: given an
/// offered response rate, the rate actually sent.
pub fn effective_response_rate(offered_qps: f64, suppression: f64) -> f64 {
    offered_qps * (1.0 - suppression.clamp(0.0, 1.0))
}

/// Convenience: the interval between allowed responses for a saturating
/// source under the default config (used in tests and docs).
pub fn min_response_interval(config: &RrlConfig) -> SimDuration {
    SimDuration::from_secs_f64(1.0 / config.responses_per_second)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_nanos((s * 1e9) as u64)
    }

    #[test]
    fn slow_source_never_limited() {
        let mut rrl = RateLimiter::new(RrlConfig::default());
        let src = [192, 0, 2, 1];
        for i in 0..100 {
            // One query per second: well under the 5/s budget.
            assert_eq!(rrl.check(src, t(i as f64)), RrlAction::Respond);
        }
        assert_eq!(rrl.suppression_ratio(), 0.0);
    }

    #[test]
    fn flood_source_is_suppressed() {
        let mut rrl = RateLimiter::new(RrlConfig::default());
        let src = [192, 0, 2, 1];
        let mut dropped = 0;
        let mut slipped = 0;
        // 1000 queries in one second from one source.
        for i in 0..1000 {
            match rrl.check(src, t(i as f64 * 0.001)) {
                RrlAction::Drop => dropped += 1,
                RrlAction::Slip => slipped += 1,
                RrlAction::Respond => {}
            }
        }
        // With slip=2, drops and slips split the suppressed responses
        // roughly evenly; together they must dominate.
        assert!(
            dropped + slipped > 900,
            "dropped {dropped} slipped {slipped}"
        );
        assert!(dropped > 400, "dropped {dropped}");
        assert!(slipped > 400, "slipped {slipped}");
        assert!(rrl.suppression_ratio() > 0.4);
    }

    #[test]
    fn sources_in_different_blocks_are_independent() {
        let mut rrl = RateLimiter::new(RrlConfig::default());
        // Saturate one /24 …
        for i in 0..100 {
            rrl.check([10, 0, 0, 1], t(i as f64 * 0.001));
        }
        // … another /24 is unaffected.
        assert_eq!(rrl.check([10, 0, 1, 1], t(0.2)), RrlAction::Respond);
    }

    #[test]
    fn same_block_shares_bucket() {
        let mut rrl = RateLimiter::new(RrlConfig::default());
        for i in 0..100 {
            rrl.check([10, 0, 0, (i % 250) as u8], t(i as f64 * 0.001));
        }
        // Different host, same /24 — still limited.
        assert_ne!(rrl.check([10, 0, 0, 251], t(0.11)), RrlAction::Respond);
    }

    #[test]
    fn bucket_refills_over_time() {
        let cfg = RrlConfig::default();
        let mut rrl = RateLimiter::new(cfg);
        let src = [10, 0, 0, 1];
        // Exhaust the burst.
        for i in 0..(cfg.burst as usize + 5) {
            rrl.check(src, t(i as f64 * 0.001));
        }
        assert_ne!(rrl.check(src, t(0.05)), RrlAction::Respond);
        // After 2 seconds, ~10 tokens have refilled.
        assert_eq!(rrl.check(src, t(2.1)), RrlAction::Respond);
    }

    #[test]
    fn memory_is_bounded() {
        let cfg = RrlConfig {
            max_entries: 100,
            ..RrlConfig::default()
        };
        let mut rrl = RateLimiter::new(cfg);
        for i in 0u32..10_000 {
            let b = i.to_be_bytes();
            rrl.check([b[0], b[1], b[2], 1], t(i as f64 * 0.0001));
        }
        assert!(rrl.tracked_blocks() <= 100);
    }

    #[test]
    fn analytic_suppression_matches_intuition() {
        // A source at exactly the limit loses nothing.
        assert_eq!(steady_state_suppression(5.0, 5.0), 0.0);
        // A 50 q/s source keeps 10% of responses.
        assert!((steady_state_suppression(50.0, 5.0) - 0.9).abs() < 1e-12);
        assert_eq!(steady_state_suppression(0.0, 5.0), 0.0);
    }

    #[test]
    fn blended_suppression_near_verisign_report() {
        // Nov 30 at A-root: ~5 Mq/s, top 200 sources = 68% of queries.
        let s = blended_suppression(5_000_000.0, 0.68, 200, 5.0);
        // Heavy sources are suppressed ≈ 100%, so blended ≈ 68% — the
        // same order as Verisign's reported 60% response drop.
        assert!((0.55..=0.69).contains(&s), "suppression {s}");
    }

    #[test]
    fn effective_rate_clamps() {
        assert_eq!(effective_response_rate(100.0, 0.25), 75.0);
        assert_eq!(effective_response_rate(100.0, 2.0), 0.0);
        assert_eq!(effective_response_rate(100.0, -1.0), 100.0);
    }

    #[test]
    fn min_interval_inverse_of_rate() {
        let cfg = RrlConfig::default();
        assert_eq!(min_response_interval(&cfg), SimDuration::from_millis(200));
    }
}
