//! Probe execution: one CHAOS query from one VP toward one letter.
//!
//! The measurement layer is decoupled from the anycast layer through the
//! [`ChaosTarget`] trait: the orchestration crate adapts each
//! `AnycastService` to it. A probe samples the current network state
//! (catchment, queue delay, drop probability) and produces a
//! [`RawMeasurement`] — including the *textual* CHAOS identity exactly as
//! the wire would carry it, so the cleaning stage has to parse it back,
//! the way the paper's pipeline parses real TXT records.

use crate::vp::VantagePoint;
use rand::Rng;
use rootcast_dns::{Letter, ServerIdentity};
use rootcast_netsim::{SimDuration, SimTime};
use rootcast_topology::AsId;
use serde::{Deserialize, Serialize};

/// The Atlas query timeout: replies slower than this count as lost.
pub const ATLAS_TIMEOUT: SimDuration = SimDuration::from_secs(5);

/// What a probe toward a service would experience from a given AS.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetView {
    /// Airport code of the catchment site.
    pub site_code: String,
    /// 1-based answering server ordinal.
    pub server: u16,
    /// Round-trip time if answered.
    pub rtt: SimDuration,
    /// Probability the query or reply is dropped. Private: sanitized at
    /// construction so `gen_bool` can never see NaN or out-of-range
    /// values at probe time.
    drop_prob: f64,
}

impl TargetView {
    /// Build a view, sanitizing `drop_prob` once at construction:
    /// values are clamped to `[0, 1]`, and NaN — a broken loss
    /// estimate — fails *closed* to certain loss rather than feeding
    /// `gen_bool` a panic.
    pub fn new(
        site_code: impl Into<String>,
        server: u16,
        rtt: SimDuration,
        drop_prob: f64,
    ) -> TargetView {
        let drop_prob = if drop_prob.is_nan() {
            1.0
        } else {
            drop_prob.clamp(0.0, 1.0)
        };
        TargetView {
            site_code: site_code.into(),
            server,
            rtt,
            drop_prob,
        }
    }

    /// The sanitized drop probability, guaranteed finite in `[0, 1]`.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }
}

/// [`TargetView`] pre-resolved to a pipeline site index: the `Copy`,
/// allocation-free view the fused probe path uses. Carries the same
/// physics (RTT, drop probability) minus the site's airport-code string.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexedView {
    /// The pipeline's per-letter site index of the catchment site.
    pub site: u16,
    /// 1-based answering server ordinal.
    pub server: u16,
    /// Round-trip time if answered.
    pub rtt: SimDuration,
    /// Sanitized at construction, like [`TargetView`]'s.
    drop_prob: f64,
}

impl IndexedView {
    /// Build a view, sanitizing `drop_prob` exactly like
    /// [`TargetView::new`]: clamped to `[0, 1]`, NaN fails closed to
    /// certain loss.
    pub fn new(site: u16, server: u16, rtt: SimDuration, drop_prob: f64) -> IndexedView {
        let drop_prob = if drop_prob.is_nan() {
            1.0
        } else {
            drop_prob.clamp(0.0, 1.0)
        };
        IndexedView {
            site,
            server,
            rtt,
            drop_prob,
        }
    }

    /// The sanitized drop probability, guaranteed finite in `[0, 1]`.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }
}

/// A probe-able anycast service (implemented for `AnycastService` by the
/// orchestration layer).
pub trait ChaosTarget {
    /// The letter this target serves.
    fn letter(&self) -> Letter;
    /// Current view from `asn` for a client with `client_hash`, or
    /// `None` when the service is unreachable from there.
    fn view(&self, asn: AsId, client_hash: u64) -> Option<TargetView>;
}

/// Raw (pre-cleaning) outcome of one probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RawOutcome {
    /// A TXT reply arrived: the identity string and the measured RTT.
    Reply { txt: String, rtt: SimDuration },
    /// A DNS error response (RCODE != 0) arrived.
    Error,
    /// Nothing within [`ATLAS_TIMEOUT`].
    Timeout,
}

/// One raw measurement record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawMeasurement {
    pub vp: u32,
    pub letter: Letter,
    pub at: SimTime,
    pub outcome: RawOutcome,
}

/// Execute one probe. `rng` supplies the loss draw and measurement
/// noise; everything else is deterministic in the current target state.
pub fn execute_probe<T: ChaosTarget, R: Rng>(
    vp: &VantagePoint,
    target: &T,
    at: SimTime,
    rng: &mut R,
) -> RawMeasurement {
    let letter = target.letter();
    // Hijacked VPs never reach the real service: a local middlebox
    // answers with its own identity, fast (the <7 ms signature the
    // cleaning stage looks for).
    if vp.hijacked {
        return RawMeasurement {
            vp: vp.id.0,
            letter,
            at,
            outcome: RawOutcome::Reply {
                txt: format!("cache{}.local", vp.id.0 % 7),
                rtt: SimDuration::from_micros(rng.gen_range(600..4000)),
            },
        };
    }
    // Flaky VPs occasionally fail on their own (independent VP failure,
    // §2.4.1 "VPs fail independently").
    if vp.flaky && rng.gen_bool(0.02) {
        return RawMeasurement {
            vp: vp.id.0,
            letter,
            at,
            outcome: RawOutcome::Timeout,
        };
    }
    let Some(view) = target.view(vp.asn, vp.client_hash()) else {
        return RawMeasurement {
            vp: vp.id.0,
            letter,
            at,
            outcome: RawOutcome::Timeout,
        };
    };
    // Loss: the query or its reply dies in a saturated queue. The
    // probability was sanitized at TargetView construction.
    if view.drop_prob > 0.0 && rng.gen_bool(view.drop_prob) {
        return RawMeasurement {
            vp: vp.id.0,
            letter,
            at,
            outcome: RawOutcome::Timeout,
        };
    }
    // Measurement noise: ±5% jitter on the RTT.
    let jitter = 1.0 + (rng.gen_range(-50..=50) as f64) / 1000.0;
    let rtt = SimDuration::from_secs_f64(view.rtt.as_secs_f64() * jitter);
    if rtt >= ATLAS_TIMEOUT {
        return RawMeasurement {
            vp: vp.id.0,
            letter,
            at,
            outcome: RawOutcome::Timeout,
        };
    }
    let identity = ServerIdentity::new(letter, &view.site_code, view.server);
    RawMeasurement {
        vp: vp.id.0,
        letter,
        at,
        outcome: RawOutcome::Reply {
            txt: identity.format_txt(),
            rtt,
        },
    }
}

/// Execute one probe on the fused path: the target view arrives
/// pre-resolved to a pipeline site index and the outcome skips the
/// wire-format string round trip (`format_txt` → `parse_txt`) that
/// [`execute_probe`] + [`clean_outcome`](crate::clean::clean_outcome)
/// perform. Draws the identical RNG sequence as that legacy pair, so
/// from equal RNG states the two paths yield equal observations and
/// leave the RNG in equal states — the property the golden equivalence
/// tests pin.
pub fn execute_probe_fused<R: Rng>(
    vp: &VantagePoint,
    view: Option<IndexedView>,
    rng: &mut R,
) -> crate::clean::FastObs {
    use crate::clean::FastObs;
    if vp.hijacked {
        // The middlebox reply is unparseable at an implausibly fast RTT,
        // which cleans to an error. Hijacked VPs never survive
        // `clean_fleet`, so fused callers probing a cleaned fleet never
        // take this branch — the draw is kept for RNG parity.
        let _ = SimDuration::from_micros(rng.gen_range(600..4000));
        return FastObs::Error;
    }
    if vp.flaky && rng.gen_bool(0.02) {
        return FastObs::Timeout;
    }
    let Some(view) = view else {
        return FastObs::Timeout;
    };
    if view.drop_prob > 0.0 && rng.gen_bool(view.drop_prob) {
        return FastObs::Timeout;
    }
    let jitter = 1.0 + (rng.gen_range(-50..=50) as f64) / 1000.0;
    let rtt = SimDuration::from_secs_f64(view.rtt.as_secs_f64() * jitter);
    if rtt >= ATLAS_TIMEOUT {
        return FastObs::Timeout;
    }
    FastObs::Site {
        site: view.site,
        server: view.server,
        rtt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::{clean_outcome, CleanObs, FastObs};
    use crate::vp::VpId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct FakeTarget {
        letter: Letter,
        view: Option<TargetView>,
    }

    impl ChaosTarget for FakeTarget {
        fn letter(&self) -> Letter {
            self.letter
        }
        fn view(&self, _asn: AsId, _h: u64) -> Option<TargetView> {
            self.view.clone()
        }
    }

    fn vp(hijacked: bool) -> VantagePoint {
        VantagePoint {
            id: VpId(3),
            asn: AsId(0),
            firmware: 4700,
            hijacked,
            flaky: false,
        }
    }

    fn target(drop_prob: f64, rtt_ms: u64) -> FakeTarget {
        FakeTarget {
            letter: Letter::K,
            view: Some(TargetView::new(
                "AMS",
                2,
                SimDuration::from_millis(rtt_ms),
                drop_prob,
            )),
        }
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    #[test]
    fn healthy_probe_returns_parseable_identity() {
        let m = execute_probe(&vp(false), &target(0.0, 30), SimTime::ZERO, &mut rng());
        match m.outcome {
            RawOutcome::Reply { ref txt, rtt } => {
                let id = ServerIdentity::parse_txt(Letter::K, txt).expect("parses");
                assert_eq!(id.site, "AMS");
                assert_eq!(id.server, 2);
                let ms = rtt.as_millis_f64();
                assert!((28.0..32.0).contains(&ms), "rtt {ms}");
            }
            ref other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn unreachable_target_times_out() {
        let t = FakeTarget {
            letter: Letter::K,
            view: None,
        };
        let m = execute_probe(&vp(false), &t, SimTime::ZERO, &mut rng());
        assert_eq!(m.outcome, RawOutcome::Timeout);
    }

    #[test]
    fn certain_loss_times_out() {
        let m = execute_probe(&vp(false), &target(1.0, 30), SimTime::ZERO, &mut rng());
        assert_eq!(m.outcome, RawOutcome::Timeout);
    }

    #[test]
    fn loss_probability_respected_statistically() {
        let t = target(0.5, 30);
        let v = vp(false);
        let mut r = rng();
        let n = 4000;
        let timeouts = (0..n)
            .filter(|_| {
                matches!(
                    execute_probe(&v, &t, SimTime::ZERO, &mut r).outcome,
                    RawOutcome::Timeout
                )
            })
            .count();
        let frac = timeouts as f64 / n as f64;
        assert!((0.45..0.55).contains(&frac), "timeout fraction {frac}");
    }

    #[test]
    fn nan_drop_prob_fails_closed_without_panicking() {
        // A NaN loss estimate must never reach gen_bool (which panics on
        // NaN); construction sanitizes it to certain loss.
        let m = execute_probe(&vp(false), &target(f64::NAN, 30), SimTime::ZERO, &mut rng());
        assert_eq!(m.outcome, RawOutcome::Timeout);
    }

    #[test]
    fn out_of_range_drop_prob_clamps_at_construction() {
        let v = TargetView::new("AMS", 1, SimDuration::from_millis(30), 7.5);
        assert_eq!(v.drop_prob(), 1.0);
        let v = TargetView::new("AMS", 1, SimDuration::from_millis(30), -0.3);
        assert_eq!(v.drop_prob(), 0.0);
        let m = execute_probe(&vp(false), &target(-0.3, 30), SimTime::ZERO, &mut rng());
        assert!(matches!(m.outcome, RawOutcome::Reply { .. }));
    }

    #[test]
    fn rtt_beyond_timeout_is_a_timeout() {
        let m = execute_probe(&vp(false), &target(0.0, 6000), SimTime::ZERO, &mut rng());
        assert_eq!(m.outcome, RawOutcome::Timeout);
    }

    #[test]
    fn fused_path_matches_legacy_path_and_rng_stream() {
        // Across VP states and target conditions, the fused probe must
        // clean to the same observation as execute_probe + clean_outcome
        // AND leave the RNG at the same position.
        type Case = (bool, bool, Option<(f64, u64)>); // (hijacked, flaky, view)
        let cases: Vec<Case> = vec![
            (false, false, Some((0.0, 30))),   // healthy reply
            (false, false, Some((0.5, 30))),   // coin-flip loss
            (false, false, Some((1.0, 30))),   // certain loss
            (false, false, Some((0.0, 6000))), // over-timeout RTT
            (false, false, Some((0.0, 4990))), // jitter decides timeout
            (false, false, None),              // unreachable
            (false, true, Some((0.3, 30))),    // flaky VP
            (true, false, Some((0.0, 30))),    // hijacked VP
            (true, true, None),                // hijacked trumps all
        ];
        for (ci, &(hijacked, flaky, ref cond)) in cases.iter().enumerate() {
            let v = VantagePoint {
                id: VpId(3),
                asn: AsId(0),
                firmware: 4700,
                hijacked,
                flaky,
            };
            let t = FakeTarget {
                letter: Letter::K,
                view: cond.map(|(drop, ms)| {
                    TargetView::new("AMS", 2, SimDuration::from_millis(ms), drop)
                }),
            };
            let iv =
                cond.map(|(drop, ms)| IndexedView::new(0, 2, SimDuration::from_millis(ms), drop));
            for seed in 0..200u64 {
                let mut legacy_rng = ChaCha8Rng::seed_from_u64(seed);
                let mut fused_rng = legacy_rng.clone();
                let legacy = clean_outcome(&execute_probe(&v, &t, SimTime::ZERO, &mut legacy_rng));
                let fused = execute_probe_fused(&v, iv, &mut fused_rng);
                match (&legacy, fused) {
                    (CleanObs::Site(id, lr), FastObs::Site { site, server, rtt }) => {
                        assert_eq!(site, 0, "case {ci}");
                        assert_eq!(id.server, server, "case {ci}");
                        assert_eq!(*lr, rtt, "case {ci}");
                    }
                    (CleanObs::Error, FastObs::Error) | (CleanObs::Timeout, FastObs::Timeout) => {}
                    other => panic!("case {ci} seed {seed}: outcomes diverge: {other:?}"),
                }
                assert_eq!(
                    legacy_rng.gen::<u64>(),
                    fused_rng.gen::<u64>(),
                    "case {ci} seed {seed}: RNG streams diverged"
                );
            }
        }
    }

    #[test]
    fn hijacked_vp_gets_fast_bogus_reply() {
        let m = execute_probe(&vp(true), &target(0.0, 30), SimTime::ZERO, &mut rng());
        match m.outcome {
            RawOutcome::Reply { ref txt, rtt } => {
                assert!(ServerIdentity::parse_txt(Letter::K, txt).is_none());
                assert!(rtt < SimDuration::from_millis(7));
            }
            ref other => panic!("unexpected outcome {other:?}"),
        }
    }
}
