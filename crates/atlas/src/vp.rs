//! The vantage-point fleet, modeled on RIPE Atlas (§2.4.1).
//!
//! RIPE Atlas had ~9000 active probes at the time of the events, heavily
//! biased toward Europe. Each VP regularly sends CHAOS queries to every
//! root letter. The paper's cleaning pipeline (reproduced in
//! [`crate::clean`]) drops VPs with pre-2013 firmware (< 4570) and VPs
//! whose root traffic is hijacked by third parties (74 of 9363, < 1%).
//! We generate a fleet with all three populations so the cleaning code
//! has real work to do.

use rand::Rng;
use rootcast_netsim::rng::weighted_index;
use rootcast_netsim::stats::mix64;
use rootcast_netsim::SimRng;
use rootcast_topology::{city, AsGraph, AsId, NamedFn, Region, Tier};
use serde::{Deserialize, Serialize};

/// Identifier of a vantage point (index into the fleet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VpId(pub u32);

/// The firmware version below which measurements are discarded
/// (released early 2013; the paper's cleaning threshold).
pub const MIN_FIRMWARE: u32 = 4570;

/// One vantage point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VantagePoint {
    pub id: VpId,
    /// The AS this VP measures from.
    pub asn: AsId,
    /// Atlas firmware version.
    pub firmware: u32,
    /// Whether a third party intercepts this VP's root queries
    /// (answers locally with a wrong identity and a suspiciously
    /// short RTT).
    pub hijacked: bool,
    /// Mean time between independent VP failures (None = reliable).
    /// A failed VP misses probes for a while — the background noise the
    /// paper guards against with its 20-VP site threshold.
    pub flaky: bool,
}

impl VantagePoint {
    /// Stable per-VP hash used for server selection (stands in for the
    /// VP's source address as seen by load balancers).
    pub fn client_hash(&self) -> u64 {
        mix64(0xA71A5 ^ u64::from(self.id.0))
    }
}

/// Fleet generation parameters.
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// Number of VPs (the paper's dataset: 9363 active, >9000 kept).
    pub n_vps: usize,
    /// Fraction with firmware older than [`MIN_FIRMWARE`].
    pub old_firmware_fraction: f64,
    /// Fraction whose root queries are hijacked (paper: 74/9363).
    pub hijacked_fraction: f64,
    /// Fraction of flaky VPs that fail independently now and then.
    pub flaky_fraction: f64,
    /// Regional placement bias. RIPE Atlas is Europe-heavy; the default
    /// puts ~2/3 of VPs in Europe. Named so the config's `Debug` form
    /// (and every hash built from it) is stable across processes.
    pub region_bias: NamedFn<fn(Region) -> f64>,
    /// Per-metro probe-density multiplier on top of the regional bias.
    /// Atlas is operated from Amsterdam and its probe density peaks in
    /// the Benelux/DE/UK corridor — the reason the paper's largest
    /// site medians are AMS, FRA and LHR.
    pub city_bias: NamedFn<fn(&str) -> f64>,
}

fn atlas_city_bias(code: &str) -> f64 {
    match code {
        "AMS" => 4.0,
        "FRA" => 2.5,
        "LHR" => 2.0,
        "CDG" | "ZRH" | "VIE" => 1.3,
        _ => 1.0,
    }
}

fn atlas_region_bias(r: Region) -> f64 {
    match r {
        Region::Europe => 8.0,
        Region::NorthAmerica => 1.5,
        Region::Asia => 0.6,
        Region::Oceania => 0.7,
        Region::SouthAmerica => 0.3,
        Region::Africa => 0.2,
        Region::MiddleEast => 0.3,
    }
}

impl Default for FleetParams {
    fn default() -> Self {
        FleetParams {
            n_vps: 9363,
            old_firmware_fraction: 0.03,
            hijacked_fraction: 74.0 / 9363.0,
            flaky_fraction: 0.05,
            region_bias: NamedFn::new("atlas", atlas_region_bias),
            city_bias: NamedFn::new("atlas", atlas_city_bias),
        }
    }
}

impl FleetParams {
    /// A small fleet for tests.
    pub fn tiny(n_vps: usize) -> FleetParams {
        FleetParams {
            n_vps,
            ..FleetParams::default()
        }
    }
}

/// The generated fleet.
#[derive(Debug, Clone)]
pub struct VpFleet {
    vps: Vec<VantagePoint>,
}

impl VpFleet {
    /// Place VPs on stub ASes with the configured regional bias.
    pub fn generate(graph: &AsGraph, params: &FleetParams, rng_factory: &SimRng) -> VpFleet {
        assert!(params.n_vps > 0);
        let mut rng = rng_factory.stream("atlas-fleet");
        let stubs = graph.by_tier(Tier::Stub);
        assert!(!stubs.is_empty());
        let weights: Vec<f64> = stubs
            .iter()
            .map(|&s| {
                let c = city(graph.node(s).city);
                (params.region_bias.f)(c.region)
                    * (params.city_bias.f)(c.code)
                    * c.population_weight.max(0.01)
            })
            .collect();
        let vps = (0..params.n_vps)
            .map(|i| {
                let asn = stubs[weighted_index(&mut rng, &weights)];
                let firmware = if rng.gen_bool(params.old_firmware_fraction) {
                    rng.gen_range(4200..MIN_FIRMWARE)
                } else {
                    rng.gen_range(MIN_FIRMWARE..4790)
                };
                VantagePoint {
                    id: VpId(i as u32),
                    asn,
                    firmware,
                    hijacked: rng.gen_bool(params.hijacked_fraction),
                    flaky: rng.gen_bool(params.flaky_fraction),
                }
            })
            .collect();
        VpFleet { vps }
    }

    pub fn len(&self) -> usize {
        self.vps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vps.is_empty()
    }

    pub fn vp(&self, id: VpId) -> &VantagePoint {
        &self.vps[id.0 as usize]
    }

    pub fn iter(&self) -> impl Iterator<Item = &VantagePoint> {
        self.vps.iter()
    }

    /// Count of VPs in each region (diagnostics / bias checks).
    pub fn region_counts(&self, graph: &AsGraph) -> Vec<(Region, usize)> {
        let mut counts: Vec<(Region, usize)> = Region::ALL.iter().map(|&r| (r, 0usize)).collect();
        for vp in &self.vps {
            let r = city(graph.node(vp.asn).city).region;
            let slot = counts
                .iter_mut()
                .find(|(region, _)| *region == r)
                .expect("region in ALL");
            slot.1 += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootcast_topology::{gen, TopologyParams};

    fn fleet(n: usize, seed: u64) -> (AsGraph, VpFleet) {
        let rng = SimRng::new(seed);
        let g = gen::generate(&TopologyParams::tiny(), &rng);
        let f = VpFleet::generate(&g, &FleetParams::tiny(n), &rng);
        (g, f)
    }

    #[test]
    fn fleet_has_requested_size() {
        let (_, f) = fleet(500, 1);
        assert_eq!(f.len(), 500);
    }

    #[test]
    fn europe_dominates() {
        let (g, f) = fleet(2000, 2);
        let counts = f.region_counts(&g);
        let europe = counts.iter().find(|(r, _)| *r == Region::Europe).unwrap().1;
        let frac = europe as f64 / f.len() as f64;
        assert!(frac > 0.5, "europe fraction {frac}");
    }

    #[test]
    fn hijacked_fraction_is_small_but_nonzero() {
        let (_, f) = fleet(5000, 3);
        let h = f.iter().filter(|v| v.hijacked).count();
        let frac = h as f64 / f.len() as f64;
        assert!(
            (0.002..0.02).contains(&frac),
            "hijacked fraction {frac} ({h} VPs)"
        );
    }

    #[test]
    fn firmware_split_matches_params() {
        let (_, f) = fleet(5000, 4);
        let old = f.iter().filter(|v| v.firmware < MIN_FIRMWARE).count();
        let frac = old as f64 / f.len() as f64;
        assert!((0.01..0.06).contains(&frac), "old firmware fraction {frac}");
    }

    #[test]
    fn client_hashes_are_distinct_and_stable() {
        let (_, f) = fleet(100, 5);
        let mut hashes: Vec<u64> = f.iter().map(VantagePoint::client_hash).collect();
        let h0 = f.vp(VpId(0)).client_hash();
        assert_eq!(hashes[0], h0);
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 100);
    }

    #[test]
    fn deterministic_generation() {
        let (_, f1) = fleet(200, 9);
        let (_, f2) = fleet(200, 9);
        for (a, b) in f1.iter().zip(f2.iter()) {
            assert_eq!(a.asn, b.asn);
            assert_eq!(a.firmware, b.firmware);
            assert_eq!(a.hijacked, b.hijacked);
        }
    }
}
