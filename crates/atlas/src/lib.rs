//! # rootcast-atlas
//!
//! A RIPE-Atlas-like measurement platform for the rootcast reproduction
//! of *"Anycast vs. DDoS"* (IMC 2016): the instrument through which every
//! catchment figure in the paper is observed.
//!
//! * [`vp`] — the vantage-point fleet: ~9000 probes, Europe-heavy,
//!   including the old-firmware and hijacked populations the cleaning
//!   stage must remove;
//! * [`probe`] — CHAOS probe execution against any [`ChaosTarget`]
//!   (timeouts at 5 s, loss draws, RTT jitter, hijack middleboxes);
//! * [`clean`] — the paper's §2.4.1 cleaning pipeline: firmware
//!   filtering and hijack detection (bad identity + RTT < 7 ms);
//! * [`pipeline`] — streaming 10-minute binning with the site > error >
//!   timeout preference, producing the aggregates behind Figures 3–8 and
//!   10–14 without materializing ~90 M raw measurements.

pub mod clean;
pub mod pipeline;
pub mod probe;
pub mod vp;

pub use clean::{clean_fleet, clean_outcome, CleanObs, CleaningReport, ExclusionReason, FastObs};
pub use pipeline::{
    raster_code, FlipEvent, LetterData, MeasurementPipeline, PipelineConfig, PipelineError,
    ProbeOutcomeStats, ServerWatch,
};
pub use probe::{
    execute_probe, execute_probe_fused, ChaosTarget, IndexedView, RawMeasurement, RawOutcome,
    TargetView, ATLAS_TIMEOUT,
};
pub use vp::{FleetParams, VantagePoint, VpFleet, VpId, MIN_FIRMWARE};
