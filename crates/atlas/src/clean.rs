//! Data cleaning, reproducing §2.4.1 of the paper.
//!
//! Three filters, applied in order:
//!
//! 1. **Firmware** — VPs with firmware < 4570 are discarded wholesale
//!    (methodological consistency, not data quality).
//! 2. **Hijack detection** — a VP is flagged when its replies combine a
//!    CHAOS identity that does not match the letter's known pattern with
//!    an implausibly short RTT (< 7 ms), following Fan et al. The flag is
//!    per-VP: all of the VP's measurements are discarded.
//! 3. **Parse** — surviving replies are parsed into
//!    `(site, server, rtt)`; replies whose identity fails to parse
//!    without the short-RTT signature are kept as errors (the odd
//!    mangled reply should not silence a VP).

use crate::probe::{RawMeasurement, RawOutcome};
use crate::vp::{VpFleet, VpId, MIN_FIRMWARE};
use rootcast_dns::ServerIdentity;
use rootcast_netsim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// RTT below which an unparseable reply marks its VP as hijacked.
pub const HIJACK_RTT: SimDuration = SimDuration::from_millis(7);

/// A cleaned observation, ready for binning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CleanObs {
    /// Identified reply from a (site, server), with RTT.
    Site(ServerIdentity, SimDuration),
    /// A response arrived but carried an error (or unparseable identity
    /// at plausible RTT).
    Error,
    Timeout,
}

/// The indexed, `Copy` form of [`CleanObs`] used by the fused probe
/// path: the site is carried as the pipeline's per-letter site index
/// instead of a parsed [`ServerIdentity`], skipping the wire-format
/// string round trip entirely. Produced by
/// [`execute_probe_fused`](crate::probe::execute_probe_fused) and
/// consumed by
/// [`record_fast`](crate::pipeline::MeasurementPipeline::record_fast).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FastObs {
    /// Identified reply: pipeline site index, 1-based server ordinal,
    /// measured RTT.
    Site {
        site: u16,
        server: u16,
        rtt: SimDuration,
    },
    /// A response arrived but carried an error.
    Error,
    Timeout,
}

/// Why a VP was excluded from the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExclusionReason {
    OldFirmware,
    Hijacked,
}

/// The cleaning verdict for a whole fleet.
#[derive(Debug, Clone)]
pub struct CleaningReport {
    pub excluded: Vec<(VpId, ExclusionReason)>,
    /// VPs kept, ascending.
    pub kept: Vec<VpId>,
}

impl CleaningReport {
    pub fn excluded_set(&self) -> BTreeSet<VpId> {
        self.excluded.iter().map(|&(id, _)| id).collect()
    }

    pub fn kept_count(&self) -> usize {
        self.kept.len()
    }
}

/// Identify VPs to exclude using a calibration sample of raw
/// measurements (one probe per VP per letter is plenty — hijacks are a
/// static property of the VP's network path).
pub fn clean_fleet(fleet: &VpFleet, calibration: &[RawMeasurement]) -> CleaningReport {
    let mut excluded: Vec<(VpId, ExclusionReason)> = Vec::new();
    let mut hijacked: BTreeSet<VpId> = BTreeSet::new();
    for m in calibration {
        if let RawOutcome::Reply { txt, rtt } = &m.outcome {
            let parses = ServerIdentity::parse_txt(m.letter, txt).is_some();
            if !parses && *rtt < HIJACK_RTT {
                hijacked.insert(VpId(m.vp));
            }
        }
    }
    for vp in fleet.iter() {
        if vp.firmware < MIN_FIRMWARE {
            excluded.push((vp.id, ExclusionReason::OldFirmware));
        } else if hijacked.contains(&vp.id) {
            excluded.push((vp.id, ExclusionReason::Hijacked));
        }
    }
    let excluded_ids: BTreeSet<VpId> = excluded.iter().map(|&(id, _)| id).collect();
    let kept = fleet
        .iter()
        .map(|v| v.id)
        .filter(|id| !excluded_ids.contains(id))
        .collect();
    CleaningReport { excluded, kept }
}

/// Convert a raw outcome into a cleaned observation (for a VP that
/// survived [`clean_fleet`]).
pub fn clean_outcome(m: &RawMeasurement) -> CleanObs {
    match &m.outcome {
        RawOutcome::Reply { txt, rtt } => match ServerIdentity::parse_txt(m.letter, txt) {
            Some(id) => CleanObs::Site(id, *rtt),
            None => CleanObs::Error,
        },
        RawOutcome::Error => CleanObs::Error,
        RawOutcome::Timeout => CleanObs::Timeout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::{FleetParams, VpFleet};
    use rootcast_dns::Letter;
    use rootcast_netsim::{SimRng, SimTime};
    use rootcast_topology::{gen, TopologyParams};

    fn fleet(seed: u64) -> VpFleet {
        let rng = SimRng::new(seed);
        let g = gen::generate(&TopologyParams::tiny(), &rng);
        VpFleet::generate(&g, &FleetParams::tiny(3000), &rng)
    }

    fn reply(vp: u32, letter: Letter, txt: &str, rtt_ms: f64) -> RawMeasurement {
        RawMeasurement {
            vp,
            letter,
            at: SimTime::ZERO,
            outcome: RawOutcome::Reply {
                txt: txt.to_string(),
                rtt: SimDuration::from_secs_f64(rtt_ms / 1000.0),
            },
        }
    }

    #[test]
    fn old_firmware_vps_excluded() {
        let f = fleet(1);
        let report = clean_fleet(&f, &[]);
        let old = f.iter().filter(|v| v.firmware < MIN_FIRMWARE).count();
        let by_fw = report
            .excluded
            .iter()
            .filter(|(_, r)| *r == ExclusionReason::OldFirmware)
            .count();
        assert_eq!(old, by_fw);
        assert_eq!(report.kept_count() + report.excluded.len(), f.len());
    }

    #[test]
    fn hijack_needs_both_signals() {
        let f = fleet(2);
        // Pick a kept (good-firmware, non-hijack-generated) VP id.
        let good = f.iter().find(|v| v.firmware >= MIN_FIRMWARE).unwrap().id;
        // Unparseable + fast -> hijacked.
        let cal = vec![reply(good.0, Letter::K, "cache0.local", 2.0)];
        let report = clean_fleet(&f, &cal);
        assert!(report
            .excluded
            .iter()
            .any(|&(id, r)| id == good && r == ExclusionReason::Hijacked));
        // Unparseable but slow -> kept (could be a mangled reply).
        let cal = vec![reply(good.0, Letter::K, "cache0.local", 50.0)];
        let report = clean_fleet(&f, &cal);
        assert!(!report.excluded.iter().any(|&(id, _)| id == good));
        // Parseable and fast -> kept (legitimately close to a site).
        let id_txt = ServerIdentity::new(Letter::K, "AMS", 1).format_txt();
        let cal = vec![reply(good.0, Letter::K, &id_txt, 2.0)];
        let report = clean_fleet(&f, &cal);
        assert!(!report.excluded.iter().any(|&(id, _)| id == good));
    }

    #[test]
    fn cleaning_keeps_nearly_all_vps() {
        // The paper: cleaning preserves "more than 9000 of the 9363".
        let f = fleet(3);
        let cal: Vec<RawMeasurement> = f
            .iter()
            .filter(|v| v.hijacked)
            .map(|v| reply(v.id.0, Letter::K, "cache.local", 2.0))
            .collect();
        let report = clean_fleet(&f, &cal);
        let kept_frac = report.kept_count() as f64 / f.len() as f64;
        assert!(kept_frac > 0.94, "kept {kept_frac}");
    }

    #[test]
    fn clean_outcome_parses_identities() {
        let id = ServerIdentity::new(Letter::E, "FRA", 2);
        let m = reply(1, Letter::E, &id.format_txt(), 20.0);
        match clean_outcome(&m) {
            CleanObs::Site(parsed, rtt) => {
                assert_eq!(parsed, id);
                assert_eq!(rtt, SimDuration::from_millis(20));
            }
            other => panic!("{other:?}"),
        }
        let bogus = reply(1, Letter::E, "nonsense", 20.0);
        assert_eq!(clean_outcome(&bogus), CleanObs::Error);
        let timeout = RawMeasurement {
            vp: 1,
            letter: Letter::E,
            at: SimTime::ZERO,
            outcome: RawOutcome::Timeout,
        };
        assert_eq!(clean_outcome(&timeout), CleanObs::Timeout);
    }
}
