//! Streaming measurement pipeline: raw probes → per-bin observations →
//! the aggregates every figure in the paper reads.
//!
//! The paper's methodology (§2.4.1): map observations into ten-minute
//! bins; within a bin prefer *site* answers over *errors* over *missing*
//! replies. We implement that preference in a single streaming pass so a
//! full 48-hour, 9000-VP, 13-letter run never materializes the ~90 M raw
//! measurements — per-(VP, letter) state is O(1) and aggregates are
//! per-bin.
//!
//! Outputs maintained per letter:
//!
//! * successful-VP count per bin (Figure 3) and error count;
//! * subsampled RTTs per bin (Figure 4's medians);
//! * per-site VP counts per bin (Figures 5, 6, 14);
//! * site flips per bin plus the individual flip events (Figures 8, 10);
//! * per-server counts and RTTs for *watched* sites (Figures 12, 13);
//! * optional full per-probe site timelines ("raster") at probe
//!   granularity for Figures 10 and 11.

use crate::clean::{CleanObs, FastObs};
use crate::vp::VpId;
use rootcast_dns::Letter;
use rootcast_netsim::{BinnedSeries, Coverage, Reduce, SampleBins, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Typed failure of a pipeline operation. Recording into the pipeline
/// is fallible — a measurement can name a letter or site the pipeline
/// was never configured for — and the caller decides whether that is a
/// programmer error (unwrap) or data to skip (degrade).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The letter was never registered with [`MeasurementPipeline::register_letter`].
    UnregisteredLetter(Letter),
    /// A site identity not in the letter's registered site list.
    UnknownSite { letter: Letter, site: String },
    /// A VP id at or beyond the fleet size the pipeline was built for.
    VpOutOfRange { vp: VpId, n_vps: usize },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::UnregisteredLetter(l) => write!(f, "letter {l} not registered"),
            PipelineError::UnknownSite { letter, site } => {
                write!(f, "unknown site {site} for {letter}")
            }
            PipelineError::VpOutOfRange { vp, n_vps } => {
                write!(f, "VP {} beyond fleet size {n_vps}", vp.0)
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Bin width for all aggregates (paper: 10 minutes).
    pub bin: SimDuration,
    /// Analysis horizon; observations beyond it are dropped.
    pub horizon: SimTime,
    /// Keep RTT samples from one VP in `rtt_subsample` (memory bound;
    /// medians are insensitive to this).
    pub rtt_subsample: u32,
    /// Sites whose per-server behaviour is tracked (Figures 12/13).
    pub watched_sites: Vec<(Letter, String)>,
    /// Letters with full per-probe site timelines (Figures 10/11).
    pub raster_letters: Vec<Letter>,
    /// Probe spacing used to index raster timelines.
    pub probe_interval: SimDuration,
}

impl PipelineConfig {
    /// The paper's parameters: 10-minute bins over 48 hours, raster for
    /// K-root, per-server watches on K-FRA and K-NRT.
    pub fn paper_default() -> PipelineConfig {
        PipelineConfig {
            bin: SimDuration::from_mins(10),
            horizon: SimTime::from_hours(48),
            rtt_subsample: 8,
            watched_sites: vec![
                (Letter::K, "FRA".to_string()),
                (Letter::K, "NRT".to_string()),
                (Letter::K, "AMS".to_string()),
            ],
            raster_letters: vec![Letter::K],
            probe_interval: SimDuration::from_mins(4),
        }
    }

    fn n_bins(&self) -> usize {
        (self.horizon.as_nanos() / self.bin.as_nanos()) as usize
    }

    fn n_probes(&self) -> usize {
        (self.horizon.as_nanos() / self.probe_interval.as_nanos()) as usize
    }
}

/// Raster cell codes (per-probe site timeline).
pub mod raster_code {
    /// No reply within the timeout.
    pub const TIMEOUT: u8 = 0;
    /// An error reply.
    pub const ERROR: u8 = 1;
    /// Sites are encoded as `SITE_BASE + site_idx`.
    pub const SITE_BASE: u8 = 2;
    /// No probe recorded for this slot (VP not yet active).
    pub const MISSING: u8 = 255;
}

/// One recorded site-flip event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipEvent {
    pub at_bin: u32,
    pub vp: VpId,
    pub from_site: u16,
    pub to_site: u16,
}

/// Per-server aggregates for a watched site.
#[derive(Debug, Clone)]
pub struct ServerWatch {
    /// VP count per bin, per server ordinal (1-based key).
    pub counts: BTreeMap<u16, BinnedSeries>,
    /// RTT samples per bin, per server ordinal.
    pub rtts: BTreeMap<u16, SampleBins>,
    /// Site-level RTT samples (Figure 7).
    pub site_rtt: SampleBins,
}

/// Everything accumulated for one letter.
#[derive(Debug, Clone)]
pub struct LetterData {
    pub letter: Letter,
    /// Airport codes, indexed by site index.
    pub site_codes: Vec<String>,
    /// VPs with a successful (site) answer per bin — Figure 3.
    pub success: BinnedSeries,
    /// VPs whose best answer was an error per bin.
    pub errors: BinnedSeries,
    /// Subsampled per-bin RTTs — Figure 4.
    pub rtt: SampleBins,
    /// VP count per bin for each site — Figures 5/6/14.
    pub site_counts: Vec<BinnedSeries>,
    /// Site flips per bin — Figure 8.
    pub flips: BinnedSeries,
    /// Individual flip events — Figure 10.
    pub flip_events: Vec<FlipEvent>,
    /// Watched-site per-server data, keyed by site index.
    pub watches: BTreeMap<u16, ServerWatch>,
    /// Per-probe site timeline per VP (raster letters only).
    pub raster: Option<Vec<Vec<u8>>>,
    /// Probes recorded within the horizon.
    pub observed_probes: u64,
    /// Scheduled probes that never produced a measurement (probe-fleet
    /// dropout, firmware churn) — reported via [`LetterData::coverage`].
    pub missed_probes: u64,
}

impl LetterData {
    /// Index of a site code.
    pub fn site_idx(&self, code: &str) -> Option<u16> {
        let code = code.to_ascii_uppercase();
        self.site_codes
            .iter()
            .position(|c| *c == code)
            .map(|i| i as u16)
    }

    /// Median VP count over bins for a site (the paper's per-site
    /// baseline used for normalization in Figures 5/6).
    pub fn site_median(&self, site: u16) -> f64 {
        self.site_counts[site as usize].median()
    }

    /// Fraction of scheduled probes that actually produced a
    /// measurement. 1.0 when no probe was ever reported missing.
    pub fn coverage(&self) -> Coverage {
        Coverage {
            observed: self.observed_probes as f64,
            expected: (self.observed_probes + self.missed_probes) as f64,
        }
    }

    /// Per-bin median RTT in milliseconds (NaN where no samples).
    pub fn rtt_median_ms(&self) -> BinnedSeries {
        let s = self.rtt.reduce(Reduce::Median, f64::NAN);
        BinnedSeries::from_values(s.bin_width(), s.values().iter().map(|v| v / 1e6).collect())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum BinBest {
    Empty,
    Timeout,
    Error,
    Site {
        site: u16,
        server: u16,
        rtt: SimDuration,
    },
}

impl BinBest {
    /// Preference rank: site > error > timeout > empty.
    fn rank(self) -> u8 {
        match self {
            BinBest::Empty => 0,
            BinBest::Timeout => 1,
            BinBest::Error => 2,
            BinBest::Site { .. } => 3,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct VpLetterState {
    cur_bin: u32,
    best: BinBest,
    last_site: Option<u16>,
}

impl Default for VpLetterState {
    fn default() -> Self {
        VpLetterState {
            cur_bin: 0,
            best: BinBest::Empty,
            last_site: None,
        }
    }
}

/// Pipeline-wide tallies of probe clean/drop outcomes: how many
/// recorded observations resolved to a site, timed out, or errored, and
/// how many scheduled probes produced nothing at all. Counted once per
/// recorded probe regardless of which entry point (fused or reference)
/// delivered it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeOutcomeStats {
    pub site: u64,
    pub timeout: u64,
    pub error: u64,
    pub missed: u64,
}

/// The streaming pipeline.
#[derive(Debug)]
pub struct MeasurementPipeline {
    cfg: PipelineConfig,
    n_vps: usize,
    /// Registered letters in registration order.
    letter_order: Vec<Letter>,
    letters: BTreeMap<Letter, LetterData>,
    /// Per (vp, letter-slot) streaming state.
    state: Vec<VpLetterState>,
    outcomes: ProbeOutcomeStats,
}

impl MeasurementPipeline {
    pub fn new(cfg: PipelineConfig, n_vps: usize) -> MeasurementPipeline {
        assert!(n_vps > 0);
        assert!(!cfg.bin.is_zero());
        MeasurementPipeline {
            cfg,
            n_vps,
            letter_order: Vec::new(),
            letters: BTreeMap::new(),
            state: Vec::new(),
            outcomes: ProbeOutcomeStats::default(),
        }
    }

    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Pipeline-wide probe outcome tallies (clean/drop accounting).
    pub fn outcome_stats(&self) -> ProbeOutcomeStats {
        self.outcomes
    }

    /// Register a letter and its site codes before recording for it.
    pub fn register_letter(&mut self, letter: Letter, site_codes: Vec<String>) {
        assert!(
            !self.letters.contains_key(&letter),
            "letter {letter} registered twice"
        );
        assert!(
            site_codes.len() < (raster_code::MISSING - raster_code::SITE_BASE) as usize,
            "too many sites for raster encoding"
        );
        let n_bins = self.cfg.n_bins();
        let bin = self.cfg.bin;
        let site_codes: Vec<String> = site_codes.iter().map(|c| c.to_ascii_uppercase()).collect();
        let watches: BTreeMap<u16, ServerWatch> = self
            .cfg
            .watched_sites
            .iter()
            .filter(|(l, _)| *l == letter)
            .filter_map(|(_, code)| {
                site_codes
                    .iter()
                    .position(|c| c == &code.to_ascii_uppercase())
                    .map(|i| {
                        (
                            i as u16,
                            ServerWatch {
                                counts: BTreeMap::new(),
                                rtts: BTreeMap::new(),
                                site_rtt: SampleBins::new(bin, n_bins),
                            },
                        )
                    })
            })
            .collect();
        let raster = self
            .cfg
            .raster_letters
            .contains(&letter)
            .then(|| vec![Vec::new(); self.n_vps]);
        let data = LetterData {
            letter,
            site_counts: site_codes
                .iter()
                .map(|_| BinnedSeries::zeros(bin, n_bins))
                .collect(),
            site_codes,
            success: BinnedSeries::zeros(bin, n_bins),
            errors: BinnedSeries::zeros(bin, n_bins),
            rtt: SampleBins::new(bin, n_bins),
            flips: BinnedSeries::zeros(bin, n_bins),
            flip_events: Vec::new(),
            watches,
            raster,
            observed_probes: 0,
            missed_probes: 0,
        };
        self.letters.insert(letter, data);
        self.letter_order.push(letter);
        // Grow the state table: one slot per (vp, letter).
        self.state.resize(
            self.n_vps * self.letter_order.len(),
            VpLetterState::default(),
        );
    }

    fn slot(&self, vp: VpId, letter: Letter) -> Result<usize, PipelineError> {
        let li = self
            .letter_order
            .iter()
            .position(|&l| l == letter)
            .ok_or(PipelineError::UnregisteredLetter(letter))?;
        if vp.0 as usize >= self.n_vps {
            return Err(PipelineError::VpOutOfRange {
                vp,
                n_vps: self.n_vps,
            });
        }
        Ok(li * self.n_vps + vp.0 as usize)
    }

    /// Record that a scheduled probe produced no measurement at all
    /// (the VP was disconnected or its result was discarded). Counts
    /// toward [`LetterData::coverage`]; beyond-horizon slots are ignored
    /// symmetrically with [`MeasurementPipeline::record`].
    pub fn note_missed(&mut self, letter: Letter, at: SimTime) -> Result<(), PipelineError> {
        if at >= self.cfg.horizon {
            return Ok(());
        }
        let data = self
            .letters
            .get_mut(&letter)
            .ok_or(PipelineError::UnregisteredLetter(letter))?;
        data.missed_probes += 1;
        self.outcomes.missed += 1;
        Ok(())
    }

    /// Record one cleaned observation. Thin wrapper over
    /// [`Self::record_fast`]: resolves the identity's site code to its
    /// index (after the horizon and slot checks, preserving the error
    /// order: unregistered letter, then VP range, then unknown site),
    /// then records on the fused path.
    pub fn record(
        &mut self,
        vp: VpId,
        letter: Letter,
        at: SimTime,
        obs: &CleanObs,
    ) -> Result<(), PipelineError> {
        if at >= self.cfg.horizon {
            return Ok(());
        }
        self.slot(vp, letter)?;
        let fast = match obs {
            CleanObs::Timeout => FastObs::Timeout,
            CleanObs::Error => FastObs::Error,
            CleanObs::Site(id, rtt) => {
                let data = self.letters.get(&letter).expect("slot() checked");
                let site = data
                    .site_idx(&id.site)
                    .ok_or_else(|| PipelineError::UnknownSite {
                        letter,
                        site: id.site.clone(),
                    })?;
                FastObs::Site {
                    site,
                    server: id.server,
                    rtt: *rtt,
                }
            }
        };
        self.record_fast(vp, letter, at, fast)
    }

    /// Record one observation already resolved to a site index — the
    /// fused-path primary implementation (no strings touched). A site
    /// index beyond the letter's registered sites is an
    /// [`PipelineError::UnknownSite`] (reported as `#idx`).
    pub fn record_fast(
        &mut self,
        vp: VpId,
        letter: Letter,
        at: SimTime,
        obs: FastObs,
    ) -> Result<(), PipelineError> {
        if at >= self.cfg.horizon {
            return Ok(());
        }
        let bin = at.bin_index(self.cfg.bin) as u32;
        let slot = self.slot(vp, letter)?;

        // Raster: per-probe timeline, padded for any missed slots.
        let probe_seq = (at.as_nanos() / self.cfg.probe_interval.as_nanos()) as usize;
        let n_probes = self.cfg.n_probes();
        let data = self.letters.get_mut(&letter).expect("slot() checked");
        let code = match obs {
            FastObs::Timeout => raster_code::TIMEOUT,
            FastObs::Error => raster_code::ERROR,
            FastObs::Site { site, .. } => {
                if site as usize >= data.site_codes.len() {
                    return Err(PipelineError::UnknownSite {
                        letter,
                        site: format!("#{site}"),
                    });
                }
                raster_code::SITE_BASE + site as u8
            }
        };
        data.observed_probes += 1;
        match obs {
            FastObs::Timeout => self.outcomes.timeout += 1,
            FastObs::Error => self.outcomes.error += 1,
            FastObs::Site { .. } => self.outcomes.site += 1,
        }
        if let Some(raster) = &mut data.raster {
            if probe_seq < n_probes {
                let row = &mut raster[vp.0 as usize];
                while row.len() < probe_seq {
                    row.push(raster_code::MISSING);
                }
                if row.len() == probe_seq {
                    row.push(code);
                } else {
                    // Second probe in the same slot: prefer the "better"
                    // outcome, mirroring bin preference.
                    let existing = row[probe_seq];
                    if code_rank(code) > code_rank(existing) {
                        row[probe_seq] = code;
                    }
                }
            }
        }

        // Binning with site > error > timeout preference.
        let state = &mut self.state[slot];
        if bin != state.cur_bin {
            let finished = *state;
            Self::commit(data, vp, finished, self.cfg.rtt_subsample);
            if let BinBest::Site { site, .. } = finished.best {
                // The committed bin's site becomes the reference point
                // for flip detection in later bins.
                state.last_site = Some(site);
            }
            state.cur_bin = bin;
            state.best = BinBest::Empty;
        }
        let cand = match obs {
            FastObs::Timeout => BinBest::Timeout,
            FastObs::Error => BinBest::Error,
            // The site index was validated above, at raster-code time.
            FastObs::Site { site, server, rtt } => BinBest::Site { site, server, rtt },
        };
        if cand.rank() > state.best.rank() {
            state.best = cand;
        }
        Ok(())
    }

    fn commit(data: &mut LetterData, vp: VpId, st: VpLetterState, rtt_subsample: u32) {
        let bin_start = SimTime::ZERO + data.success.bin_width() * u64::from(st.cur_bin);
        // Find the slot in the state table we were given (committing uses
        // only the letter-local aggregates).
        match st.best {
            BinBest::Empty | BinBest::Timeout => {}
            BinBest::Error => data.errors.incr_at(bin_start),
            BinBest::Site { site, server, rtt } => {
                data.success.incr_at(bin_start);
                data.site_counts[site as usize].incr_at(bin_start);
                if vp.0.is_multiple_of(rtt_subsample) {
                    data.rtt.push(bin_start, rtt.as_nanos() as f64);
                }
                if let Some(prev) = st.last_site {
                    if prev != site {
                        data.flips.incr_at(bin_start);
                        data.flip_events.push(FlipEvent {
                            at_bin: st.cur_bin,
                            vp,
                            from_site: prev,
                            to_site: site,
                        });
                    }
                }
                if let Some(watch) = data.watches.get_mut(&site) {
                    let n_bins = data.success.len();
                    let bw = data.success.bin_width();
                    watch
                        .counts
                        .entry(server)
                        .or_insert_with(|| BinnedSeries::zeros(bw, n_bins))
                        .incr_at(bin_start);
                    watch
                        .rtts
                        .entry(server)
                        .or_insert_with(|| SampleBins::new(bw, n_bins))
                        .push(bin_start, rtt.as_nanos() as f64);
                    watch.site_rtt.push(bin_start, rtt.as_nanos() as f64);
                }
            }
        }
        // last_site tracking happens in the caller (needs mutable state).
    }

    /// Flush all outstanding bins. Call once after the last record.
    pub fn finalize(&mut self) {
        for (li, &letter) in self.letter_order.iter().enumerate() {
            let data = self.letters.get_mut(&letter).expect("registered");
            for vpi in 0..self.n_vps {
                let slot = li * self.n_vps + vpi;
                let st = self.state[slot];
                Self::commit(data, VpId(vpi as u32), st, self.cfg.rtt_subsample);
                self.state[slot].best = BinBest::Empty;
            }
        }
    }

    /// Accumulated data for a letter, or `None` when it was never
    /// registered — the graceful-degradation accessor analyses use.
    pub fn try_letter(&self, letter: Letter) -> Option<&LetterData> {
        self.letters.get(&letter)
    }

    /// Accumulated data for a letter.
    ///
    /// # Panics
    /// On an unregistered letter — asking for one is a programmer
    /// error; use [`MeasurementPipeline::try_letter`] to degrade.
    pub fn letter(&self, letter: Letter) -> &LetterData {
        self.letters
            .get(&letter)
            .unwrap_or_else(|| panic!("letter {letter} not registered"))
    }

    /// All registered letters, in registration order.
    pub fn registered(&self) -> &[Letter] {
        &self.letter_order
    }
}

fn code_rank(code: u8) -> u8 {
    match code {
        raster_code::MISSING => 0,
        raster_code::TIMEOUT => 1,
        raster_code::ERROR => 2,
        _ => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rootcast_dns::ServerIdentity;

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            bin: SimDuration::from_mins(10),
            horizon: SimTime::from_hours(1),
            rtt_subsample: 1,
            watched_sites: vec![(Letter::K, "FRA".into())],
            raster_letters: vec![Letter::K],
            probe_interval: SimDuration::from_mins(4),
        }
    }

    fn site_obs(code: &str, server: u16, rtt_ms: u64) -> CleanObs {
        CleanObs::Site(
            ServerIdentity::new(Letter::K, code, server),
            SimDuration::from_millis(rtt_ms),
        )
    }

    fn pipeline() -> MeasurementPipeline {
        let mut p = MeasurementPipeline::new(cfg(), 4);
        p.register_letter(Letter::K, vec!["AMS".into(), "FRA".into()]);
        p
    }

    fn t(mins: u64) -> SimTime {
        SimTime::from_mins(mins)
    }

    #[test]
    fn success_counted_per_bin() {
        let mut p = pipeline();
        p.record(VpId(0), Letter::K, t(1), &site_obs("AMS", 1, 30))
            .unwrap();
        p.record(VpId(1), Letter::K, t(2), &site_obs("FRA", 1, 20))
            .unwrap();
        p.record(VpId(2), Letter::K, t(3), &CleanObs::Timeout)
            .unwrap();
        p.finalize();
        let d = p.letter(Letter::K);
        assert_eq!(d.success.values()[0], 2.0);
        assert_eq!(d.site_counts[0].values()[0], 1.0); // AMS
        assert_eq!(d.site_counts[1].values()[0], 1.0); // FRA
        assert_eq!(d.errors.values()[0], 0.0);
    }

    #[test]
    fn site_preferred_over_error_and_timeout_within_bin() {
        let mut p = pipeline();
        p.record(VpId(0), Letter::K, t(0), &CleanObs::Timeout)
            .unwrap();
        p.record(VpId(0), Letter::K, t(4), &CleanObs::Error)
            .unwrap();
        p.record(VpId(0), Letter::K, t(8), &site_obs("AMS", 1, 30))
            .unwrap();
        p.finalize();
        let d = p.letter(Letter::K);
        assert_eq!(d.success.values()[0], 1.0);
        assert_eq!(d.errors.values()[0], 0.0);
    }

    #[test]
    fn error_preferred_over_timeout() {
        let mut p = pipeline();
        p.record(VpId(0), Letter::K, t(0), &CleanObs::Error)
            .unwrap();
        p.record(VpId(0), Letter::K, t(4), &CleanObs::Timeout)
            .unwrap();
        p.finalize();
        let d = p.letter(Letter::K);
        assert_eq!(d.errors.values()[0], 1.0);
        assert_eq!(d.success.values()[0], 0.0);
    }

    #[test]
    fn flip_detected_across_bins() {
        let mut p = pipeline();
        p.record(VpId(0), Letter::K, t(1), &site_obs("FRA", 1, 20))
            .unwrap();
        p.record(VpId(0), Letter::K, t(11), &site_obs("AMS", 1, 30))
            .unwrap();
        p.record(VpId(0), Letter::K, t(21), &site_obs("AMS", 1, 30))
            .unwrap();
        p.record(VpId(0), Letter::K, t(31), &site_obs("FRA", 1, 20))
            .unwrap();
        p.finalize();
        let d = p.letter(Letter::K);
        let total_flips: f64 = d.flips.values().iter().sum();
        assert_eq!(total_flips, 2.0, "FRA->AMS and AMS->FRA");
        assert_eq!(d.flip_events.len(), 2);
        let fra = d.site_idx("FRA").unwrap();
        let ams = d.site_idx("AMS").unwrap();
        assert_eq!(d.flip_events[0].from_site, fra);
        assert_eq!(d.flip_events[0].to_site, ams);
    }

    #[test]
    fn timeout_gap_does_not_count_as_flip() {
        let mut p = pipeline();
        p.record(VpId(0), Letter::K, t(1), &site_obs("FRA", 1, 20))
            .unwrap();
        p.record(VpId(0), Letter::K, t(11), &CleanObs::Timeout)
            .unwrap();
        p.record(VpId(0), Letter::K, t(21), &site_obs("FRA", 1, 20))
            .unwrap();
        p.finalize();
        let d = p.letter(Letter::K);
        assert_eq!(d.flips.values().iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn gap_then_new_site_is_one_flip() {
        let mut p = pipeline();
        p.record(VpId(0), Letter::K, t(1), &site_obs("FRA", 1, 20))
            .unwrap();
        p.record(VpId(0), Letter::K, t(11), &CleanObs::Timeout)
            .unwrap();
        p.record(VpId(0), Letter::K, t(21), &site_obs("AMS", 1, 30))
            .unwrap();
        p.finalize();
        let d = p.letter(Letter::K);
        assert_eq!(d.flips.values().iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn watched_site_tracks_servers() {
        let mut p = pipeline();
        p.record(VpId(0), Letter::K, t(1), &site_obs("FRA", 1, 20))
            .unwrap();
        p.record(VpId(1), Letter::K, t(2), &site_obs("FRA", 2, 25))
            .unwrap();
        p.record(VpId(2), Letter::K, t(3), &site_obs("AMS", 1, 30))
            .unwrap(); // not watched
        p.finalize();
        let d = p.letter(Letter::K);
        let fra = d.site_idx("FRA").unwrap();
        let watch = d.watches.get(&fra).expect("FRA watched");
        assert_eq!(watch.counts[&1].values()[0], 1.0);
        assert_eq!(watch.counts[&2].values()[0], 1.0);
        assert_eq!(watch.site_rtt.count_at(t(0)), 2);
        let ams = d.site_idx("AMS").unwrap();
        assert!(!d.watches.contains_key(&ams));
    }

    #[test]
    fn raster_records_probe_level_timeline() {
        let mut p = pipeline();
        p.record(VpId(0), Letter::K, t(0), &site_obs("FRA", 1, 20))
            .unwrap();
        p.record(VpId(0), Letter::K, t(4), &CleanObs::Timeout)
            .unwrap();
        p.record(VpId(0), Letter::K, t(12), &site_obs("AMS", 1, 30))
            .unwrap();
        p.finalize();
        let d = p.letter(Letter::K);
        let row = &d.raster.as_ref().unwrap()[0];
        let fra = raster_code::SITE_BASE + d.site_idx("FRA").unwrap() as u8;
        let ams = raster_code::SITE_BASE + d.site_idx("AMS").unwrap() as u8;
        assert_eq!(
            row.as_slice(),
            &[fra, raster_code::TIMEOUT, raster_code::MISSING, ams]
        );
    }

    #[test]
    fn rtt_median_ms_converts_units() {
        let mut p = pipeline();
        p.record(VpId(0), Letter::K, t(1), &site_obs("AMS", 1, 30))
            .unwrap();
        p.record(VpId(1), Letter::K, t(2), &site_obs("AMS", 1, 50))
            .unwrap();
        p.finalize();
        let med = p.letter(Letter::K).rtt_median_ms();
        assert!((med.values()[0] - 40.0).abs() < 1e-9);
        assert!(med.values()[1].is_nan());
    }

    #[test]
    fn observations_beyond_horizon_ignored() {
        let mut p = pipeline();
        p.record(
            VpId(0),
            Letter::K,
            SimTime::from_hours(2),
            &site_obs("AMS", 1, 30),
        )
        .unwrap();
        p.finalize();
        let d = p.letter(Letter::K);
        assert_eq!(d.success.values().iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn unregistered_letter_is_a_typed_error() {
        let mut p = pipeline();
        assert_eq!(
            p.record(VpId(0), Letter::E, t(0), &CleanObs::Timeout),
            Err(PipelineError::UnregisteredLetter(Letter::E))
        );
        assert_eq!(
            p.note_missed(Letter::E, t(0)),
            Err(PipelineError::UnregisteredLetter(Letter::E))
        );
        assert!(p.try_letter(Letter::E).is_none());
    }

    #[test]
    fn unknown_site_and_oversized_vp_are_typed_errors() {
        let mut p = pipeline();
        assert_eq!(
            p.record(VpId(0), Letter::K, t(0), &site_obs("ZRH", 1, 20)),
            Err(PipelineError::UnknownSite {
                letter: Letter::K,
                site: "ZRH".into()
            })
        );
        assert_eq!(
            p.record(VpId(99), Letter::K, t(0), &CleanObs::Timeout),
            Err(PipelineError::VpOutOfRange {
                vp: VpId(99),
                n_vps: 4
            })
        );
    }

    #[test]
    fn record_fast_matches_record_and_preserves_error_order() {
        // Same observation stream through both entry points produces
        // identical aggregates (record() is a thin wrapper).
        let mut slow = pipeline();
        let mut fast = pipeline();
        let stream: [(u32, u64, CleanObs); 6] = [
            (0, 1, site_obs("AMS", 1, 30)),
            (1, 2, site_obs("FRA", 2, 20)),
            (2, 3, CleanObs::Timeout),
            (0, 11, CleanObs::Error),
            (1, 12, site_obs("AMS", 1, 25)),
            (1, 22, site_obs("FRA", 1, 25)), // flip
        ];
        for (vp, mins, obs) in &stream {
            slow.record(VpId(*vp), Letter::K, t(*mins), obs).unwrap();
            let f = match obs {
                CleanObs::Timeout => FastObs::Timeout,
                CleanObs::Error => FastObs::Error,
                CleanObs::Site(id, rtt) => FastObs::Site {
                    site: if id.site == "AMS" { 0 } else { 1 },
                    server: id.server,
                    rtt: *rtt,
                },
            };
            fast.record_fast(VpId(*vp), Letter::K, t(*mins), f).unwrap();
        }
        slow.finalize();
        fast.finalize();
        let (s, f) = (slow.letter(Letter::K), fast.letter(Letter::K));
        assert_eq!(s.success.values(), f.success.values());
        assert_eq!(s.errors.values(), f.errors.values());
        assert_eq!(s.flips.values(), f.flips.values());
        assert_eq!(s.flip_events, f.flip_events);
        for (a, b) in s.site_counts.iter().zip(&f.site_counts) {
            assert_eq!(a.values(), b.values());
        }
        assert_eq!(s.raster, f.raster);
        assert_eq!(s.observed_probes, f.observed_probes);

        // Error ordering matches record(): letter registration first,
        // then VP range, then site validity; out-of-range site indices
        // surface as `#idx`.
        let mut p = pipeline();
        let bad = FastObs::Site {
            site: 7,
            server: 1,
            rtt: SimDuration::from_millis(20),
        };
        assert_eq!(
            p.record_fast(VpId(0), Letter::E, t(0), bad),
            Err(PipelineError::UnregisteredLetter(Letter::E))
        );
        assert_eq!(
            p.record_fast(VpId(99), Letter::K, t(0), bad),
            Err(PipelineError::VpOutOfRange {
                vp: VpId(99),
                n_vps: 4
            })
        );
        assert_eq!(
            p.record_fast(VpId(0), Letter::K, t(0), bad),
            Err(PipelineError::UnknownSite {
                letter: Letter::K,
                site: "#7".into()
            })
        );
        // Beyond-horizon observations are ignored, even invalid ones.
        assert_eq!(
            p.record_fast(VpId(0), Letter::K, SimTime::from_hours(2), bad),
            Ok(())
        );
    }

    #[test]
    fn missed_probes_reduce_coverage() {
        let mut p = pipeline();
        p.record(VpId(0), Letter::K, t(1), &site_obs("AMS", 1, 30))
            .unwrap();
        p.note_missed(Letter::K, t(5)).unwrap();
        p.note_missed(Letter::K, t(9)).unwrap();
        // Beyond-horizon slots ignored symmetrically with record().
        p.note_missed(Letter::K, SimTime::from_hours(2)).unwrap();
        p.finalize();
        let cov = p.letter(Letter::K).coverage();
        assert!((cov.fraction() - 1.0 / 3.0).abs() < 1e-12);
        // A letter with no missed probes stays complete.
        let mut q = pipeline();
        q.record(VpId(0), Letter::K, t(1), &site_obs("AMS", 1, 30))
            .unwrap();
        q.finalize();
        assert!(q.letter(Letter::K).coverage().is_complete());
    }
}
