//! RSSAC-002 style operator reporting (§2.4.2).
//!
//! RSSAC-002 defines daily, per-letter operational statistics: query and
//! response volumes, unique source counts, and query/response size
//! distributions in 16-byte bins. At the time of the events only five
//! letters (A, H, J, K, L) published it, and the spec is explicit that
//! collection is *best effort* — monitoring loses data exactly when the
//! service is stressed. The paper leans on that caveat: Table 3's
//! reported rates differ wildly across letters because most letters
//! undercounted during the attack.
//!
//! [`RssacCollector`] reproduces both the format and the failure mode:
//! a per-letter `stressed_capture` factor thins recorded traffic during
//! attack windows, so the generated reports exhibit the same
//! under-reporting the estimation procedure must correct for.

use rootcast_dns::Letter;
use rootcast_netsim::{Coverage, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Width of RSSAC-002 size bins, bytes.
pub const SIZE_BIN: usize = 16;

/// A size histogram in 16-byte bins (key = bin lower edge).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SizeHistogram {
    bins: BTreeMap<u32, f64>,
}

impl SizeHistogram {
    pub fn add(&mut self, size_bytes: usize, count: f64) {
        debug_assert!(count.is_finite() && count >= 0.0, "bad count {count}");
        if !(count.is_finite() && count > 0.0) {
            return;
        }
        let bin = (size_bytes / SIZE_BIN * SIZE_BIN) as u32;
        *self.bins.entry(bin).or_insert(0.0) += count;
    }

    /// Total count across bins.
    pub fn total(&self) -> f64 {
        self.bins.values().sum()
    }

    /// `(bin_lower_edge, count)` pairs ascending.
    pub fn bins(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.bins.iter().map(|(&b, &c)| (b, c))
    }

    /// The bin with the largest count, if any — how the paper identifies
    /// the attack's fixed-qname signature in the reports (§3.1).
    pub fn dominant_bin(&self) -> Option<(u32, f64)> {
        self.bins
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(&b, &c)| (b, c))
    }

    /// Mean size weighted by count (bin midpoints), or NaN when empty.
    pub fn mean_size(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            return f64::NAN;
        }
        let weighted: f64 = self
            .bins
            .iter()
            .map(|(&b, &c)| (b as f64 + SIZE_BIN as f64 / 2.0) * c)
            .sum();
        weighted / total
    }
}

/// One letter-day of RSSAC-002 data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyReport {
    pub letter: Letter,
    /// Day index since scenario start (day 0 = Nov 30).
    pub day: u32,
    /// Queries received (as *recorded* — subject to best-effort capture).
    pub queries: f64,
    /// Responses sent.
    pub responses: f64,
    /// Distinct IPv4 sources observed.
    pub unique_sources: f64,
    pub query_sizes: SizeHistogram,
    pub response_sizes: SizeHistogram,
    /// How much of the day's accounting window was actually observed.
    /// `< 1.0` when monitoring gaps (injected or otherwise) thinned the
    /// record — the consumer should treat the totals as partial.
    pub coverage: Coverage,
}

impl DailyReport {
    /// Mean query rate over the day, q/s.
    pub fn mean_qps(&self) -> f64 {
        self.queries / 86_400.0
    }

    /// Estimated inbound bandwidth in Gb/s over an interval of
    /// `active_secs` (the paper evaluates event traffic over the event
    /// window, not the whole day). Adds IPv4+UDP header bytes.
    pub fn query_gbps_over(&self, active_secs: f64) -> f64 {
        if active_secs <= 0.0 || self.queries == 0.0 {
            return 0.0;
        }
        let mean_packet = self.query_sizes.mean_size() + 28.0;
        self.queries * mean_packet * 8.0 / active_secs / 1e9
    }

    /// Same for responses.
    pub fn response_gbps_over(&self, active_secs: f64) -> f64 {
        if active_secs <= 0.0 || self.responses == 0.0 {
            return 0.0;
        }
        let mean_packet = self.response_sizes.mean_size() + 28.0;
        self.responses * mean_packet * 8.0 / active_secs / 1e9
    }
}

/// Per-letter best-effort collector.
#[derive(Debug, Clone)]
pub struct RssacCollector {
    letter: Letter,
    /// Fraction of traffic actually recorded while the letter is under
    /// stress (1.0 = perfect monitoring, as A-root managed; small values
    /// reproduce H/J/K's undercounting in Table 3).
    stressed_capture: f64,
    days: Vec<DayAcc>,
}

#[derive(Debug, Clone, Default)]
struct DayAcc {
    queries: f64,
    responses: f64,
    unique_sources: f64,
    query_sizes: SizeHistogram,
    response_sizes: SizeHistogram,
    coverage: Coverage,
}

impl RssacCollector {
    pub fn new(letter: Letter, n_days: usize, stressed_capture: f64) -> RssacCollector {
        assert!((0.0..=1.0).contains(&stressed_capture));
        RssacCollector {
            letter,
            stressed_capture,
            days: vec![DayAcc::default(); n_days],
        }
    }

    pub fn letter(&self) -> Letter {
        self.letter
    }

    fn day_index(t: SimTime) -> usize {
        (t.as_secs() / 86_400) as usize
    }

    /// Record fluid traffic over `[from, from+dt)`: `query_qps` arriving
    /// queries and `response_qps` outgoing responses with the given
    /// packet payload sizes. `stressed` applies the best-effort capture
    /// factor. The interval must not span a day boundary (the driver
    /// steps in minutes).
    #[allow(clippy::too_many_arguments)]
    pub fn add_fluid(
        &mut self,
        from: SimTime,
        dt: SimDuration,
        query_qps: f64,
        response_qps: f64,
        query_size: usize,
        response_size: usize,
        stressed: bool,
    ) {
        if dt.is_zero() || (query_qps <= 0.0 && response_qps <= 0.0) {
            return;
        }
        let day = Self::day_index(from);
        let Some(acc) = self.days.get_mut(day) else {
            return;
        };
        let capture = if stressed { self.stressed_capture } else { 1.0 };
        let q = query_qps * dt.as_secs_f64() * capture;
        let r = response_qps * dt.as_secs_f64() * capture;
        acc.queries += q;
        acc.responses += r;
        if q > 0.0 {
            acc.query_sizes.add(query_size, q);
        }
        if r > 0.0 {
            acc.response_sizes.add(response_size, r);
        }
    }

    /// Merge an estimate of distinct sources seen during some traffic
    /// component of `day` (components are additive across disjoint
    /// source populations: baseline resolvers vs. spoofed attack space).
    pub fn add_unique_sources(&mut self, day: usize, estimate: f64) {
        if let Some(acc) = self.days.get_mut(day) {
            acc.unique_sources += estimate;
        }
    }

    /// Record whether the accounting window `[from, from+dt)` was
    /// actually observed by the monitoring pipeline. Drivers call this
    /// once per accounting step; a report gap notes the window with
    /// `observed = false`, pushing the day's [`Coverage`] below 1.0.
    /// Out-of-range days are ignored, like [`RssacCollector::add_fluid`].
    pub fn note_window(&mut self, from: SimTime, dt: SimDuration, observed: bool) {
        if dt.is_zero() {
            return;
        }
        let day = Self::day_index(from);
        if let Some(acc) = self.days.get_mut(day) {
            acc.coverage.note(dt.as_secs_f64(), observed);
        }
    }

    /// Produce the day's report. A day outside the collector's range —
    /// e.g. a consumer asking for day 1 of a short scenario — yields an
    /// empty report with zero coverage instead of panicking, so analyses
    /// degrade to partial results.
    pub fn report(&self, day: usize) -> DailyReport {
        let Some(acc) = self.days.get(day) else {
            return DailyReport {
                letter: self.letter,
                day: day as u32,
                queries: 0.0,
                responses: 0.0,
                unique_sources: 0.0,
                query_sizes: SizeHistogram::default(),
                response_sizes: SizeHistogram::default(),
                coverage: Coverage {
                    observed: 0.0,
                    expected: 86_400.0,
                },
            };
        };
        DailyReport {
            letter: self.letter,
            day: day as u32,
            queries: acc.queries,
            responses: acc.responses,
            unique_sources: acc.unique_sources,
            query_sizes: acc.query_sizes.clone(),
            response_sizes: acc.response_sizes.clone(),
            coverage: acc.coverage,
        }
    }

    pub fn n_days(&self) -> usize {
        self.days.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(hours: u64) -> SimTime {
        SimTime::from_hours(hours)
    }

    #[test]
    fn histogram_bins_by_16() {
        let mut h = SizeHistogram::default();
        h.add(44, 10.0); // 32-47 bin
        h.add(47, 5.0);
        h.add(48, 1.0); // 48-63 bin
        let bins: Vec<(u32, f64)> = h.bins().collect();
        assert_eq!(bins, vec![(32, 15.0), (48, 1.0)]);
        assert_eq!(h.dominant_bin(), Some((32, 15.0)));
        assert_eq!(h.total(), 16.0);
    }

    #[test]
    fn attack_bin_dominates_like_table3() {
        // Baseline traffic: mixed sizes. Attack: fixed 44-byte queries
        // (www.336901.com payload) at 100x volume.
        let mut c = RssacCollector::new(Letter::A, 2, 1.0);
        c.add_fluid(
            t(0),
            SimDuration::from_hours(6),
            40_000.0,
            39_000.0,
            60,
            400,
            false,
        );
        c.add_fluid(
            t(7),
            SimDuration::from_mins(160),
            5_000_000.0,
            3_800_000.0,
            44,
            488,
            false,
        );
        let r = c.report(0);
        let (bin, _) = r.query_sizes.dominant_bin().unwrap();
        assert_eq!(bin, 32, "32-47B bin dominates, as reported for Nov 30");
        let (rbin, _) = r.response_sizes.dominant_bin().unwrap();
        assert_eq!(rbin, 480, "responses in the 480-495 band");
    }

    #[test]
    fn capture_factor_thins_stressed_traffic() {
        let mut full = RssacCollector::new(Letter::K, 1, 1.0);
        let mut lossy = RssacCollector::new(Letter::K, 1, 0.2);
        for c in [&mut full, &mut lossy] {
            c.add_fluid(
                t(1),
                SimDuration::from_hours(1),
                1000.0,
                900.0,
                44,
                488,
                true,
            );
            c.add_fluid(
                t(3),
                SimDuration::from_hours(1),
                1000.0,
                900.0,
                44,
                488,
                false,
            );
        }
        let rf = full.report(0);
        let rl = lossy.report(0);
        assert!((rf.queries - 2000.0 * 3600.0).abs() < 1.0);
        // Lossy letter recorded 20% of the stressed hour + 100% of the
        // calm hour.
        assert!((rl.queries - (0.2 + 1.0) * 1000.0 * 3600.0).abs() < 1.0);
    }

    #[test]
    fn traffic_lands_on_correct_day() {
        let mut c = RssacCollector::new(Letter::J, 2, 1.0);
        c.add_fluid(
            t(5),
            SimDuration::from_hours(1),
            100.0,
            90.0,
            44,
            488,
            false,
        );
        c.add_fluid(
            t(30),
            SimDuration::from_hours(1),
            200.0,
            180.0,
            44,
            488,
            false,
        );
        assert!((c.report(0).queries - 100.0 * 3600.0).abs() < 1e-6);
        assert!((c.report(1).queries - 200.0 * 3600.0).abs() < 1e-6);
        // Day 2 does not exist: adding is a no-op, not a panic.
        c.add_fluid(t(50), SimDuration::from_hours(1), 1.0, 1.0, 44, 488, false);
    }

    #[test]
    fn unique_sources_accumulate() {
        let mut c = RssacCollector::new(Letter::A, 1, 1.0);
        c.add_unique_sources(0, 5.3e6);
        c.add_unique_sources(0, 1.8e9);
        let r = c.report(0);
        assert!((r.unique_sources - (5.3e6 + 1.8e9)).abs() < 1.0);
    }

    #[test]
    fn gbps_accounts_headers() {
        let mut c = RssacCollector::new(Letter::A, 1, 1.0);
        // 1 Mq/s of 44-byte queries for 1000 seconds.
        c.add_fluid(t(0), SimDuration::from_secs(1000), 1e6, 0.0, 44, 488, false);
        let r = c.report(0);
        // Mean packet = bin midpoint (40) + 28 = 68 B -> 0.544 Gb/s.
        let gbps = r.query_gbps_over(1000.0);
        assert!((gbps - 0.544).abs() < 0.01, "gbps={gbps}");
    }

    #[test]
    fn mean_size_nan_when_empty() {
        let h = SizeHistogram::default();
        assert!(h.mean_size().is_nan());
        assert_eq!(h.dominant_bin(), None);
    }

    #[test]
    fn out_of_range_day_reports_empty_with_zero_coverage() {
        let c = RssacCollector::new(Letter::K, 1, 1.0);
        let r = c.report(5);
        assert_eq!(r.queries, 0.0);
        assert_eq!(r.day, 5);
        assert_eq!(r.coverage.fraction(), 0.0);
    }

    #[test]
    fn noted_gaps_reduce_coverage() {
        let mut c = RssacCollector::new(Letter::H, 1, 1.0);
        c.note_window(t(0), SimDuration::from_hours(6), true);
        c.note_window(t(6), SimDuration::from_hours(2), false);
        let cov = c.report(0).coverage;
        assert!((cov.fraction() - 6.0 / 8.0).abs() < 1e-12);
        // Collectors that never note windows stay "complete".
        let quiet = RssacCollector::new(Letter::A, 1, 1.0);
        assert!(quiet.report(0).coverage.is_complete());
        // Out-of-range windows are ignored, not panics.
        c.note_window(t(30), SimDuration::from_hours(1), false);
    }
}
