//! # rootcast-rssac
//!
//! RSSAC-002 operator reporting for the rootcast reproduction of
//! *"Anycast vs. DDoS"* (IMC 2016): daily per-letter query/response
//! volumes, unique-source counts, and 16-byte-binned size histograms —
//! including the *best-effort under-reporting* failure mode that makes
//! Table 3's raw numbers inconsistent across letters and forces the
//! paper's lower/upper-bound estimation.

pub mod report;

pub use report::{DailyReport, RssacCollector, SizeHistogram, SIZE_BIN};
