//! See the example binaries in this directory.
