//! Quickstart: run a scaled-down November 2015 scenario and print the
//! headline results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This uses [`ScenarioConfig::small`] (a few hundred vantage points, a
//! 12-hour horizon covering the first event) so it finishes in seconds.
//! For the full-scale reproduction of every table and figure see the
//! `root_event_nov2015` example.

use rootcast::analysis::{flips, letter_rtt, reachability, site_rtt};
use rootcast::{sim, Letter, ScenarioConfig};

fn main() {
    let cfg = ScenarioConfig::small();
    println!(
        "simulating 13 letters / {} VPs / horizon {} ...",
        cfg.fleet.n_vps, cfg.horizon
    );
    let t0 = std::time::Instant::now();
    let out = sim::run(&cfg).expect("valid scenario");
    println!(
        "done in {:.1?}: {} ASes, {} VPs kept after cleaning\n",
        t0.elapsed(),
        out.n_ases,
        out.n_vps_kept
    );

    // Figure 3: who survived?
    let fig3 = reachability::figure3(&out);
    println!("{}", fig3.render());
    if let Some(reg) = &fig3.sites_vs_worst_attacked {
        println!(
            "site-count vs worst-reachability (attacked letters): R^2 = {:.2} (paper: 0.87)\n",
            reg.r_squared
        );
    }

    // Figure 4: whose RTT moved?
    let fig4 = letter_rtt::figure4(&out);
    let plotted: Vec<String> = fig4
        .significant()
        .iter()
        .map(|r| {
            format!(
                "{} ({:.0} -> {:.0} ms)",
                r.letter, r.baseline_ms, r.event_peak_ms
            )
        })
        .collect();
    println!("letters with visible RTT change: {}\n", plotted.join(", "));

    // The K-AMS absorption story.
    let fig7 = site_rtt::figure7(&out);
    if let Some(ams) = fig7.site(Letter::K, "AMS") {
        println!(
            "K-AMS median RTT: {:.0} ms baseline -> {:.0} ms peak during the event",
            ams.baseline_ms, ams.event_peaks_ms[0]
        );
    }

    // Site flips.
    let fig8 = flips::figure8(&out);
    println!(
        "K-root site flips: {:.0} total, {:.0}% inside the event windows",
        fig8.total(Letter::K),
        fig8.event_share(&out, Letter::K) * 100.0
    );
    let flow = flips::figure10(&out, Letter::K, "LHR");
    if !flow.outflow_during.is_empty() {
        println!(
            "VPs leaving K-LHR during the event went to: {:?}",
            flow.outflow_during
        );
    }
}
