//! Build-your-own anycast deployment and stress-test it.
//!
//! ```text
//! cargo run --release --example custom_deployment
//! ```
//!
//! Shows the substrate API directly — no canonical scenario: generate a
//! topology, place a 4-site anycast service with mixed policies, aim a
//! botnet at it, and watch catchments, loss, and withdrawal dynamics.
//! This is the "operator sandbox" use of the library: what would *my*
//! deployment do under a 2 Mq/s event?

use rootcast_anycast::{AnycastService, FacilityTable, SiteSpec, StressPolicy};
use rootcast_attack::{Botnet, BotnetParams};
use rootcast_netsim::{SimDuration, SimRng, SimTime};
use rootcast_topology::{gen, TopologyParams};

fn main() {
    let rng = SimRng::new(7);
    let graph = gen::generate(&TopologyParams::default(), &rng);
    println!(
        "topology: {} ASes, {} edges",
        graph.len(),
        graph.edge_count()
    );

    // A deployment with one big absorber and three smaller sites, one
    // of which withdraws under stress.
    let host = |city: &str, salt: u64| rootcast::deployment::host_in_city(&graph, city, salt);
    let sites = vec![
        SiteSpec::global("AMS", host("AMS", 1), 800_000.0),
        SiteSpec::global("IAD", host("IAD", 2), 300_000.0)
            .with_policy(StressPolicy::withdraw_default()),
        SiteSpec::global("NRT", host("NRT", 3), 300_000.0),
        SiteSpec::global("GRU", host("GRU", 4), 150_000.0),
    ];
    let mut svc = AnycastService::new("my-anycast", None, &graph, sites);

    let catchments = svc.rib().catchment_sizes(svc.sites().len());
    println!("initial catchments (ASes per site):");
    for (site, n) in svc.sites().iter().zip(&catchments) {
        println!("  {}: {} ASes", site.spec.code, n);
    }

    // A 2 Mq/s botnet.
    let botnet = Botnet::generate(&graph, BotnetParams::default(), &rng);
    let total_qps = 2_000_000.0;
    let offered = svc.offered_per_site(botnet.weights(), total_qps);
    println!("\nattack exposure at {total_qps:.0} q/s:");
    for (site, q) in svc.sites().iter().zip(&offered) {
        println!(
            "  {}: {:.0} q/s offered vs {:.0} capacity ({:.1}x)",
            site.spec.code,
            q,
            site.spec.capacity_qps,
            q / site.spec.capacity_qps
        );
    }

    // Step the fluid model for an hour of attack.
    let facilities = FacilityTable::new();
    let mut t = SimTime::ZERO;
    let step = SimDuration::from_mins(1);
    println!("\ntimeline:");
    for minute in 1..=60 {
        t += step;
        let offered = svc.offered_per_site(botnet.weights(), total_qps);
        svc.advance_queues(t, &offered, &facilities);
        let changes = svc.apply_policies(t, &graph);
        for &idx in &changes.withdrew {
            println!(
                "  t+{minute:02}m: site {} WITHDREW",
                svc.site(idx).spec.code
            );
        }
        for &idx in &changes.reannounced {
            println!(
                "  t+{minute:02}m: site {} re-announced",
                svc.site(idx).spec.code
            );
        }
        if minute % 15 == 0 {
            let report: Vec<String> = svc
                .sites()
                .iter()
                .map(|s| {
                    format!(
                        "{}={:.0}% loss/{}q delay",
                        s.spec.code,
                        s.last_loss * 100.0,
                        s.queue_delay()
                    )
                })
                .collect();
            println!("  t+{minute:02}m: {}", report.join(", "));
        }
    }

    let final_catchments = svc.rib().catchment_sizes(svc.sites().len());
    println!("\nfinal catchments:");
    for (site, (before, after)) in svc
        .sites()
        .iter()
        .zip(catchments.iter().zip(&final_catchments))
    {
        println!(
            "  {}: {} -> {} ASes{}",
            site.spec.code,
            before,
            after,
            if site.announced { "" } else { "  (withdrawn)" }
        );
    }
}
