//! Observability tour: run a scenario with the event trace enabled and
//! the profiler attached, then print the metrics registry, the phase /
//! subsystem wall-time breakdown, and a digest of the structured event
//! trace — and export the profile as chrome://tracing JSON.
//!
//! ```text
//! cargo run --release --example trace_export [-- --small] [--out FILE]
//! ```
//!
//! * `--small` — use the scaled-down configuration (default: the full
//!   Nov-2015 scenario);
//! * `--out FILE` — where to write the trace-event JSON (default
//!   `trace_events.json`). Open it at `chrome://tracing` or in Perfetto.

use rootcast::{render_metrics, run_profiled, ScenarioConfig};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let out_path: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("trace_events.json"));

    let mut cfg = if small {
        ScenarioConfig::small()
    } else {
        ScenarioConfig::nov2015()
    };
    cfg.trace.enabled = true;
    cfg.trace.capacity = 65_536;

    eprintln!(
        "running {} scenario with tracing (capacity {}) ...",
        if small { "small" } else { "full Nov-2015" },
        cfg.trace.capacity
    );
    let t0 = std::time::Instant::now();
    let (out, profile) = run_profiled(&cfg).expect("valid scenario");
    eprintln!("simulation finished in {:.1?}\n", t0.elapsed());

    // 1. The metrics registry, frozen at end of run.
    for table in render_metrics(&out.metrics) {
        println!("{table}\n");
    }

    // 2. Wall-time breakdown per phase and per subsystem.
    for table in profile.breakdown() {
        println!("{table}\n");
    }

    // 3. Structured event trace digest.
    let trace = &out.trace;
    println!(
        "=== Event trace: {} events kept (capacity {}), {} dropped ===",
        trace.events.len(),
        trace.capacity,
        trace.dropped_events
    );
    for ev in trace.events.iter().take(20) {
        println!("  #{:<6} t={:>14}ns  {:?}", ev.seq, ev.t_nanos, ev.kind);
    }
    if trace.events.len() > 20 {
        println!("  ... {} more", trace.events.len() - 20);
    }
    println!();

    // 4. chrome://tracing export.
    let json = profile.chrome_trace();
    std::fs::write(&out_path, &json).expect("write trace JSON");
    eprintln!(
        "wrote {} bytes of trace-event JSON to {}",
        json.len(),
        out_path.display()
    );
}
