//! Grid sweep driver: a 3×2 scenario grid (K-LHR capacity × attack
//! rate) over one shared substrate, with checkpoint/resume wired to the
//! environment so CI can kill a sweep partway and prove it resumes.
//!
//! ```text
//! cargo run --release --example sweep_grid
//!
//! # checkpointed, stopping after 2 runs (the CI smoke job's "kill"):
//! SWEEP_CHECKPOINT=/tmp/sweep.jsonl SWEEP_STOP_AFTER=2 \
//!     cargo run --release --example sweep_grid
//! # ...then resume the rest:
//! SWEEP_CHECKPOINT=/tmp/sweep.jsonl cargo run --release --example sweep_grid
//! ```
//!
//! Environment:
//! * `SWEEP_CHECKPOINT` — JSONL manifest path; completed runs are
//!   appended and reloaded on the next invocation.
//! * `SWEEP_STOP_AFTER` — execute at most N pending runs, then exit
//!   reporting the rest as pending (exit code 2, so scripts can tell a
//!   partial sweep from a finished one).
//! * `SWEEP_CSV` — write the comparison table as CSV to this path.

use rootcast::{
    run_sweep_with, AttackSchedule, ConfigPatch, Letter, ScenarioConfig, SimTime, SiteOverride,
    SiteTuning, SweepAxis, SweepOptions, SweepPlan,
};

fn cap(qps: f64) -> ConfigPatch {
    ConfigPatch::none().with_site_override(SiteOverride::new(
        Letter::K,
        "LHR",
        SiteTuning::none().with_capacity(qps),
    ))
}

fn main() {
    let mut base = ScenarioConfig::small();
    // The smoke grid only needs the first hours of event 1: keep each
    // run cheap so a 6-scenario sweep stays CI-sized.
    base.horizon = SimTime::from_hours(8);
    base.pipeline.horizon = base.horizon;

    let plan = SweepPlan::grid(
        "klhr-capacity-vs-rate",
        base,
        &[
            SweepAxis::new(
                "klhr_cap",
                vec![
                    ("base", ConfigPatch::none()),
                    ("half", cap(50_000.0)),
                    ("tenth", cap(10_000.0)),
                ],
            ),
            SweepAxis::new(
                "rate",
                vec![
                    (
                        "2M",
                        ConfigPatch::none().with_attack(AttackSchedule::nov2015(2_000_000.0)),
                    ),
                    (
                        "5M",
                        ConfigPatch::none().with_attack(AttackSchedule::nov2015(5_000_000.0)),
                    ),
                ],
            ),
        ],
    );

    let opts = SweepOptions {
        checkpoint: std::env::var_os("SWEEP_CHECKPOINT").map(Into::into),
        stop_after: std::env::var("SWEEP_STOP_AFTER")
            .ok()
            .and_then(|v| v.parse().ok()),
        no_substrate_reuse: false,
    };
    let report = match run_sweep_with(&plan, &opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };

    print!("{}", report.render());
    println!(
        "substrates built: {}  resumed from checkpoint: {}",
        report.n_substrates, report.n_resumed
    );

    if let Ok(path) = std::env::var("SWEEP_CSV") {
        if let Err(e) = std::fs::write(&path, report.to_csv()) {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
        println!("comparison CSV written to {path}");
    }

    if report.is_partial() {
        std::process::exit(2);
    }
}
