//! Policy explorer: the §2.2 withdraw-vs-absorb model, swept.
//!
//! ```text
//! cargo run --release --example policy_explorer
//! ```
//!
//! Prints the paper's five cases, then sweeps attack strength A0 = A1
//! from 0 to beyond the big site's capacity and reports which strategy
//! wins at each level — the quantitative version of the paper's
//! "which of the five cases applies depends on attack rate, location,
//! and site capacity".

use rootcast::policy_model::{paper_cases, paper_deployment, render_cases, Strategy};
use rootcast::render::TextTable;

fn main() {
    // The five canonical cases.
    println!("{}", render_cases(&paper_cases()));

    // Sweep: A0 = A1 rising from harmless to overwhelming.
    let mut sweep = TextTable::new(
        "Strategy sweep: s1 = s2 = 1, S3 = 10, A0 = A1 = a",
        &[
            "a",
            "absorb",
            "withdraw ISP1",
            "withdraw small",
            "reroute ISP1",
            "best",
            "winner",
        ],
    );
    let mut transitions: Vec<(f64, &'static str)> = Vec::new();
    let mut last_winner = "";
    for step in 0..=60 {
        let a = step as f64 * 0.2;
        let d = paper_deployment(1.0, a, a);
        let hs: Vec<u32> = Strategy::ALL
            .iter()
            .map(|s| s.apply(&d).happiness())
            .collect();
        let best = d.best_possible();
        // First strategy wins ties, so "absorb" (do nothing) is the
        // winner whenever action does not help.
        let mut winner = Strategy::ALL[0].name();
        let mut best_h = hs[0];
        for (s, &h) in Strategy::ALL.iter().zip(&hs).skip(1) {
            if h > best_h {
                best_h = h;
                winner = s.name();
            }
        }
        if winner != last_winner {
            transitions.push((a, winner));
            last_winner = winner;
        }
        if step % 5 == 0 {
            sweep.row(vec![
                format!("{a:.1}"),
                hs[0].to_string(),
                hs[1].to_string(),
                hs[2].to_string(),
                hs[3].to_string(),
                best.to_string(),
                winner.to_string(),
            ]);
        }
    }
    println!("{sweep}");

    println!("strategy crossover points (first `a` where the winner changes):");
    for (a, winner) in transitions {
        println!("  a >= {a:.1}: {winner}");
    }
    println!("\nreading: small attacks need no action; mid-size attacks reward");
    println!("withdrawing toward spare capacity (\"less can be more\"); attacks");
    println!("beyond any site's capacity make degraded absorption optimal.");
}
