//! Policy explorer: the §2.2 withdraw-vs-absorb model, then the same
//! question asked of the full simulator via the sweep engine.
//!
//! ```text
//! cargo run --release --example policy_explorer
//! ```
//!
//! Part 1 prints the paper's five analytic cases and sweeps attack
//! strength through the closed-form model — the quantitative version of
//! "which of the five cases applies depends on attack rate, location,
//! and site capacity".
//!
//! Part 2 re-asks the question with packets instead of algebra: one
//! shared substrate (topology, baseline RIBs, calibrated fleet), a
//! grid of stress policies for K's overloaded European sites × attack
//! rates, executed by [`rootcast::run_sweep`] and ranked by
//! worst-letter availability.

use rootcast::policy_model::{paper_cases, paper_deployment, render_cases, Strategy};
use rootcast::render::TextTable;
use rootcast::{
    run_sweep, AttackSchedule, ConfigPatch, Letter, ScenarioConfig, SiteOverride, SiteTuning,
    StressPolicy, SweepAxis, SweepPlan,
};

fn analytic_model() {
    // The five canonical cases.
    println!("{}", render_cases(&paper_cases()));

    // Sweep: A0 = A1 rising from harmless to overwhelming.
    let mut sweep = TextTable::new(
        "Strategy sweep: s1 = s2 = 1, S3 = 10, A0 = A1 = a",
        &[
            "a",
            "absorb",
            "withdraw ISP1",
            "withdraw small",
            "reroute ISP1",
            "best",
            "winner",
        ],
    );
    let mut transitions: Vec<(f64, &'static str)> = Vec::new();
    let mut last_winner = "";
    for step in 0..=60 {
        let a = step as f64 * 0.2;
        let d = paper_deployment(1.0, a, a);
        let hs: Vec<u32> = Strategy::ALL
            .iter()
            .map(|s| s.apply(&d).happiness())
            .collect();
        let best = d.best_possible();
        // First strategy wins ties, so "absorb" (do nothing) is the
        // winner whenever action does not help.
        let mut winner = Strategy::ALL[0].name();
        let mut best_h = hs[0];
        for (s, &h) in Strategy::ALL.iter().zip(&hs).skip(1) {
            if h > best_h {
                best_h = h;
                winner = s.name();
            }
        }
        if winner != last_winner {
            transitions.push((a, winner));
            last_winner = winner;
        }
        if step % 5 == 0 {
            sweep.row(vec![
                format!("{a:.1}"),
                hs[0].to_string(),
                hs[1].to_string(),
                hs[2].to_string(),
                hs[3].to_string(),
                best.to_string(),
                winner.to_string(),
            ]);
        }
    }
    println!("{sweep}");

    println!("strategy crossover points (first `a` where the winner changes):");
    for (a, winner) in transitions {
        println!("  a >= {a:.1}: {winner}");
    }
}

/// Retune both of K's overloaded European sites to one stress policy.
fn k_policy(policy: StressPolicy) -> ConfigPatch {
    let mut patch = ConfigPatch::none();
    for site in ["LHR", "FRA"] {
        patch = patch.with_site_override(SiteOverride::new(
            Letter::K,
            site,
            SiteTuning::none().with_policy(policy),
        ));
    }
    patch
}

fn simulated_sweep() {
    let plan = SweepPlan::grid(
        "k-policy-vs-rate",
        ScenarioConfig::small(),
        &[
            SweepAxis::new(
                "policy",
                vec![
                    ("absorb", k_policy(StressPolicy::Absorb)),
                    ("withdraw", k_policy(StressPolicy::withdraw_default())),
                    ("sticky", k_policy(StressPolicy::withdraw_sticky())),
                ],
            ),
            SweepAxis::new(
                "rate",
                vec![
                    (
                        "2M",
                        ConfigPatch::none().with_attack(AttackSchedule::nov2015(2_000_000.0)),
                    ),
                    (
                        "5M",
                        ConfigPatch::none().with_attack(AttackSchedule::nov2015(5_000_000.0)),
                    ),
                ],
            ),
        ],
    );
    println!(
        "\nsimulated: {} scenarios over one shared substrate...",
        plan.runs.len()
    );
    let report = run_sweep(&plan).expect("valid sweep");
    print!("{}", report.render());
    println!(
        "substrates built: {}  engine windows simulated: {}",
        report.n_substrates,
        report.rollup.counter("fluid.windows").unwrap_or(0)
    );
}

fn main() {
    analytic_model();
    println!("\nreading: small attacks need no action; mid-size attacks reward");
    println!("withdrawing toward spare capacity (\"less can be more\"); attacks");
    println!("beyond any site's capacity make degraded absorption optimal.");

    simulated_sweep();
}
