//! The flagship reproduction: run the full-scale Nov 30 / Dec 1 2015
//! scenario (48 hours, ~9300 vantage points, 5 Mq/s per attacked
//! letter) and regenerate **every table and figure** of the paper.
//!
//! ```text
//! cargo run --release --example root_event_nov2015 [-- --small] [--csv DIR]
//! ```
//!
//! * `--small` — use the scaled-down configuration (seconds instead of
//!   ~half a minute);
//! * `--csv DIR` — additionally write every table as CSV into `DIR`.
//!
//! Expected wall time for the full configuration: 30–60 s in release.

use rootcast::analysis::{
    collateral, event_size, flips, letter_rtt, raster, reachability, routing, servers, site_reach,
    site_rtt,
};
use rootcast::render::TextTable;
use rootcast::{policy_model, sim, Letter, ScenarioConfig};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    let cfg = if small {
        ScenarioConfig::small()
    } else {
        ScenarioConfig::nov2015()
    };
    eprintln!(
        "running {} scenario: horizon {}, {} VPs, attack {:.1} Mq/s per letter ...",
        if small { "small" } else { "full Nov-2015" },
        cfg.horizon,
        cfg.fleet.n_vps,
        cfg.attack
            .windows()
            .first()
            .map(|w| w.rate_qps / 1e6)
            .unwrap_or(0.0),
    );
    let t0 = std::time::Instant::now();
    let out = sim::run(&cfg).expect("valid scenario");
    eprintln!("simulation finished in {:.1?}\n", t0.elapsed());

    let mut tables: Vec<(&str, TextTable)> = Vec::new();

    // §2.2 / Figure 2 — the policy model (no simulation needed).
    tables.push((
        "fig2_policy_model",
        policy_model::render_cases(&policy_model::paper_cases()),
    ));

    // Table 2 — reported vs observed sites.
    tables.push(("table2_site_census", site_reach::table2(&out).render()));

    // Table 3 — event size estimation.
    tables.push(("table3_event_size", event_size::table3(&out).render()));

    // Figure 3 — per-letter reachability.
    let fig3 = reachability::figure3(&out);
    tables.push(("fig3_letter_reachability", fig3.render()));

    // Figure 4 — per-letter RTT.
    tables.push(("fig4_letter_rtt", letter_rtt::figure4(&out).render()));

    // Figures 5 & 6 — per-site reachability for E and K.
    for letter in [Letter::E, Letter::K] {
        let tag5: &str = match letter {
            Letter::E => "fig5_sites_e",
            _ => "fig5_sites_k",
        };
        let tag6: &str = match letter {
            Letter::E => "fig6_series_e",
            _ => "fig6_series_k",
        };
        tables.push((tag5, site_reach::figure5(&out, letter).render()));
        tables.push((tag6, site_reach::figure6(&out, letter).render()));
    }

    // Figure 7 — watched-site RTT.
    tables.push(("fig7_site_rtt", site_rtt::figure7(&out).render()));

    // Figure 8 — site flips.
    tables.push(("fig8_site_flips", flips::figure8(&out).render()));

    // Figure 9 — BGP route changes.
    tables.push(("fig9_route_changes", routing::figure9(&out).render()));

    // Figure 10 — flip flows for K-LHR and K-FRA.
    tables.push((
        "fig10_flows_lhr",
        flips::figure10(&out, Letter::K, "LHR").render(),
    ));
    tables.push((
        "fig10_flows_fra",
        flips::figure10(&out, Letter::K, "FRA").render(),
    ));

    // Figure 11 — the VP raster and cohorts.
    let fig11 = raster::figure11(&out, Letter::K, &["LHR", "FRA"], 300).expect("K is rastered");
    tables.push(("fig11_cohorts", fig11.render_cohorts()));

    // Figures 12/13 — per-server behaviour.
    tables.push(("fig12_13_servers", servers::figures12_13(&out).render()));

    // Figures 14/15 — collateral damage.
    tables.push((
        "fig14_collateral_droot",
        collateral::figure14(&out, Letter::D).render(),
    ));
    tables.push(("fig15_collateral_nl", collateral::figure15(&out).render()));

    for (_, table) in &tables {
        println!("{table}\n");
    }

    // A sample of the Figure 11 raster as ASCII art (60 rows).
    println!("=== Figure 11: K-root raster (sample; rows = VPs, cols = 4-min probes) ===");
    println!("legend: lowercase = VP's home site, '.' timeout, 'x' error");
    print!("{}", fig11.render_ascii(60));

    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for (name, table) in &tables {
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, table.to_csv()).expect("write csv");
        }
        eprintln!("\nwrote {} CSV files to {}", tables.len(), dir.display());
    }

    if let (Some(all), Some(att)) = (&fig3.sites_vs_worst, &fig3.sites_vs_worst_attacked) {
        eprintln!(
            "\nheadline: site-count vs worst reachability R^2 = {:.2} over all letters, \
             {:.2} over attacked letters excl. A (paper: 0.87)",
            all.r_squared, att.r_squared
        );
    }
}
