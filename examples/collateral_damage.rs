//! Collateral damage under the microscope (§3.6, Figures 14 & 15).
//!
//! ```text
//! cargo run --release --example collateral_damage
//! ```
//!
//! Runs a 12-hour scenario twice — once with the shared-facility
//! coupling, once with every site on private infrastructure — and
//! contrasts what happens to D-root (never attacked) and the `.nl`
//! anycast sites. The difference *is* the collateral damage.

use rootcast::analysis::{collateral, pre_event_baseline};
use rootcast::{sim, Letter, ScenarioConfig, SimTime};

fn run_variant(shared: bool) -> rootcast::SimOutput {
    let mut cfg = ScenarioConfig::small();
    cfg.horizon = SimTime::from_hours(12);
    cfg.pipeline.horizon = cfg.horizon;
    if !shared {
        // Private infrastructure: give the facility links so much
        // capacity they can never congest.
        for (_, cap) in &mut cfg.facility_capacities {
            *cap = 1e12;
        }
    }
    sim::run(&cfg).expect("valid scenario")
}

fn main() {
    println!("running shared-facility variant ...");
    let shared = run_variant(true);
    println!("running private-infrastructure variant ...\n");
    let private = run_variant(false);

    for (name, out) in [("SHARED", &shared), ("PRIVATE", &private)] {
        println!("--- {name} facilities ---");
        let fig14 = collateral::figure14(out, Letter::D);
        println!(
            "D-root sites with >=10% event dip: {} of {} stable sites",
            fig14.affected.len(),
            fig14.stable_total
        );
        for s in &fig14.affected {
            println!(
                "  D-{}: median {:.0} VPs, event min {:.0} ({:.0}% dip)",
                s.code,
                s.median,
                s.event_min,
                s.dip * 100.0
            );
        }
        let fig15 = collateral::figure15(out);
        for site in &fig15.sites {
            println!(
                "  nl-{}: worst event rate = {:.0}% of baseline",
                site.code,
                site.event_min * 100.0
            );
        }
        println!();
    }

    // The smoking gun: same attack, same letters, different plumbing.
    let d_shared = collateral::figure14(&shared, Letter::D);
    let d_private = collateral::figure14(&private, Letter::D);
    println!(
        "conclusion: shared facilities produced {} collateral D-root site(s); \
         private infrastructure produced {}.",
        d_shared.affected.len(),
        d_private.affected.len()
    );

    // D's letter-level view barely moves either way — exactly why the
    // paper needed per-site analysis to see collateral damage at all.
    for (name, out) in [("shared", &shared), ("private", &private)] {
        let d = out.pipeline.letter(Letter::D);
        let base = pre_event_baseline(out, &d.success);
        let worst = rootcast::analysis::min_during_events(out, &d.success);
        println!(
            "D-root letter-level survival ({name}): {:.1}% of baseline",
            100.0 * worst / base
        );
    }
}
