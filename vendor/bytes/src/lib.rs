//! Offline stand-in for the `bytes` crate.
//!
//! The DNS wire codec is the only user; it needs an append-only byte
//! buffer with big-endian integer writes and random-access patching of
//! previously written bytes (for rdlength back-fill and compression
//! pointers). A `Vec<u8>` wrapper covers all of that.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer, API-compatible with `bytes::BytesMut` for
/// the subset rootcast uses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consume the buffer, yielding its contents. (Upstream returns an
    /// immutable `Bytes`; a `Vec<u8>` serves the same role here.)
    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.inner
    }
}

/// Append-style writes, big-endian for multi-byte integers (network
/// order, as DNS requires).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_writes() {
        let mut buf = BytesMut::new();
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u8(0x7F);
        assert_eq!(&buf[..], &[0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF, 0x7F]);
    }

    #[test]
    fn random_access_patching() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u16(0);
        buf.put_slice(b"abc");
        let patch = (buf.len() as u16 - 2).to_be_bytes();
        buf[0..2].copy_from_slice(&patch);
        assert_eq!(&buf[..2], &patch);
        assert_eq!(buf.to_vec().len(), 5);
    }
}
