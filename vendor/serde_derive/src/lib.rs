//! Offline stand-in for `serde_derive`.
//!
//! Nothing in this workspace ever calls a serializer, so the derives
//! only need to be *accepted*, not to generate working impls. Each
//! derive expands to an empty token stream, which is a valid (if
//! vacuous) derive expansion. Avoids depending on syn/quote, which are
//! unavailable offline.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
