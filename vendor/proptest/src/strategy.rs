//! The `Strategy` trait and the built-in strategies rootcast's tests
//! draw from: numeric ranges, `any::<T>()`, regex-shaped strings (via
//! [`crate::string`]), and mapped strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

/// A bare string literal is treated as a regex, as upstream does.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .expect("invalid regex strategy literal")
            .generate(rng)
    }
}

/// Full-domain generation, the engine behind [`crate::any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy wrapper returned by [`crate::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..5_000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::from_name("map");
        let s = (1u32..10).prop_map(|x| x * 100);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v >= 100 && v < 1000 && v % 100 == 0);
        }
    }
}
