//! String strategies from a regex subset.
//!
//! Supports the patterns rootcast's tests use: a sequence of atoms,
//! where an atom is a character class `[...]` (literal chars and
//! `a-z`-style ranges), a `.` (printable ASCII), or a literal
//! character, each optionally followed by `{m}`, `{m,n}`, `*`, `+`,
//! or `?`. Anything fancier returns an error.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Why a pattern could not be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex strategy: {}", self.0)
    }
}

impl std::error::Error for Error {}

#[derive(Debug, Clone)]
struct Atom {
    /// The alphabet this atom draws from.
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Strategy generating strings matching the compiled pattern.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

/// Compile `pattern` into a generation strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => return Err(Error(format!("unterminated class in {pattern:?}"))),
                        Some(']') => break,
                        Some('-') => match (prev, chars.peek()) {
                            (Some(lo), Some(&hi)) if hi != ']' => {
                                chars.next();
                                if lo > hi {
                                    return Err(Error(format!("bad range in {pattern:?}")));
                                }
                                set.extend((lo..=hi).skip(1));
                                prev = None;
                            }
                            _ => {
                                set.push('-');
                                prev = Some('-');
                            }
                        },
                        Some(ch) => {
                            set.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                if set.is_empty() {
                    return Err(Error(format!("empty class in {pattern:?}")));
                }
                set
            }
            '.' => (' '..='~').collect(),
            '\\' => match chars.next() {
                Some(esc) => vec![esc],
                None => return Err(Error(format!("trailing backslash in {pattern:?}"))),
            },
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                return Err(Error(format!("unsupported construct {c:?} in {pattern:?}")))
            }
            lit => vec![lit],
        };
        let (min, max) = parse_quantifier(&mut chars, pattern)?;
        atoms.push(Atom {
            chars: alphabet,
            min,
            max,
        });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Result<(usize, usize), Error> {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(ch) => spec.push(ch),
                    None => return Err(Error(format!("unterminated quantifier in {pattern:?}"))),
                }
            }
            let parse = |s: &str| {
                s.parse::<usize>()
                    .map_err(|_| Error(format!("bad quantifier {spec:?} in {pattern:?}")))
            };
            match spec.split_once(',') {
                None => {
                    let n = parse(&spec)?;
                    Ok((n, n))
                }
                Some((lo, hi)) => {
                    let lo = parse(lo)?;
                    let hi = if hi.is_empty() { lo + 8 } else { parse(hi)? };
                    if lo > hi {
                        return Err(Error(format!("bad quantifier {spec:?} in {pattern:?}")));
                    }
                    Ok((lo, hi))
                }
            }
        }
        Some('*') => {
            chars.next();
            Ok((0, 8))
        }
        Some('+') => {
            chars.next();
            Ok((1, 8))
        }
        Some('?') => {
            chars.next();
            Ok((0, 1))
        }
        _ => Ok((1, 1)),
    }
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_pattern_generates_valid_labels() {
        let s = string_regex("[a-z0-9]{1,20}").unwrap();
        let mut rng = TestRng::from_name("label");
        for _ in 0..1_000 {
            let v = s.generate(&mut rng);
            assert!((1..=20).contains(&v.len()), "{v:?}");
            assert!(v
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn fixed_count_class() {
        let s = string_regex("[A-Z]{3}").unwrap();
        let mut rng = TestRng::from_name("site");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert_eq!(v.len(), 3);
            assert!(v.chars().all(|c| c.is_ascii_uppercase()));
        }
    }

    #[test]
    fn dot_quantified() {
        let s = string_regex(".{0,60}").unwrap();
        let mut rng = TestRng::from_name("dot");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() <= 60);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literals_and_escapes() {
        let s = string_regex(r"ab\.c").unwrap();
        let mut rng = TestRng::from_name("lit");
        assert_eq!(s.generate(&mut rng), "ab.c");
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(string_regex("(a|b)").is_err());
        assert!(string_regex("[a-").is_err());
    }
}
