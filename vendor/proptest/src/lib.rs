//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API that rootcast's property
//! tests use: the `proptest!` macro, `Strategy` (ranges, a regex
//! subset, `collection::vec`, `any`, `prop_map`), and the
//! `prop_assert*`/`prop_assume!` macros. Cases are generated from a
//! deterministic per-test RNG (seeded by the test name), so failures
//! reproduce exactly. No shrinking: a failing case panics with the
//! assertion message; inputs are printed by the assertion itself.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// A strategy producing arbitrary values of `T` over its full domain.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Runs each `#[test] fn name(pat in strategy, ...) { body }` inside the
/// block `config.cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(100),
                    "proptest {}: too many rejected cases ({} attempts)",
                    stringify!($name),
                    attempts
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed (case {}): {}", stringify!($name), accepted + 1, msg);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a proptest body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({} == {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Discard the current case (counts as rejected, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
