//! Test-runner support types: config, case errors, and the
//! deterministic RNG cases are drawn from.

/// How a generated case ended other than success.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not counted.
    Reject(String),
    /// A `prop_assert*` failed; the test panics with this message.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Subset of proptest's config: only the case count matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64-based deterministic RNG. Seeded from the test name so
/// every test gets an independent, reproducible sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed salt.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased integer in `[0, span)` (widening-multiply rejection).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(span);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("case");
        let mut b = TestRng::from_name("case");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("other");
        assert_ne!(TestRng::from_name("case").next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::from_name("below");
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
        }
    }
}
