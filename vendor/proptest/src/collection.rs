//! Collection strategies: currently just `vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for a `Vec` whose length is drawn from `len` (half-open)
/// and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range for vec strategy");
    VecStrategy { element, len }
}

pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::from_name("vec");
        let s = vec(0u8..255, 1..5);
        for _ in 0..1_000 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
