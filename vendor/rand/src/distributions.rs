//! The `Standard` distribution: full-domain uniform values.

use crate::{unit_f32, unit_f64, RngCore};

/// A sampling distribution over `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform over the whole domain of the type (unit interval for floats).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng)
    }
}

impl<const N: usize> Distribution<[u8; N]> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}
