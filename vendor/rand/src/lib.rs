//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this vendored implementation. It provides exactly
//! the API subset rootcast uses — `RngCore`, `SeedableRng`, `Rng`
//! (`gen`, `gen_range`, `gen_bool`, `fill_bytes`) and the `Standard`
//! distribution — with statistically sound, deterministic algorithms
//! (Lemire-style unbiased integer sampling, 53-bit uniform floats).
//!
//! It is **not** a drop-in replacement for arbitrary rand users; it is
//! the contract rootcast relies on, kept small enough to audit.

pub mod distributions;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Derive a full seed from a `u64` via SplitMix64 (stable across
    /// platforms; the same scheme upstream rand uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed-expansion PRNG (public domain algorithm).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T` over its full domain (unit interval for
    /// floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        if p >= 1.0 {
            return true;
        }
        unit_f64(self) < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A uniform f64 in `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range-shaped arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty inclusive range");
        T::sample_between(rng, start, end, true)
    }
}

/// Unbiased uniform integer in `[0, span)` via Lemire's widening
/// multiply with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as u64) - (low as u64) + u64::from(inclusive);
                if span == 0 {
                    // Inclusive full-u64 domain: every value is fair.
                    return rng.next_u64() as $t;
                }
                low + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i64).wrapping_sub(low as i64) as u64 + u64::from(inclusive);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                ((low as i64).wrapping_add(uniform_u64(rng, span) as i64)) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _incl: bool,
    ) -> Self {
        let v = low + unit_f64(rng) * (high - low);
        // Floating-point rounding can land exactly on `high`; fold it
        // back to keep half-open semantics.
        if v >= high {
            low
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _incl: bool,
    ) -> Self {
        let v = low + unit_f32(rng) * (high - low);
        if v >= high {
            low
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Step(1);
        for _ in 0..10_000 {
            let a = rng.gen_range(0..13usize);
            assert!(a < 13);
            let b = rng.gen_range(-50..=50i32);
            assert!((-50..=50).contains(&b));
            let c = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&c));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Step(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = Step(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn uniform_int_unbiased_small_span() {
        let mut rng = Step(4);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
