//! Offline stand-in for `serde`.
//!
//! rootcast derives `Serialize`/`Deserialize` on its model types for
//! downstream tooling but never invokes a serializer inside this
//! workspace. The vendored stand-in therefore only has to make the
//! derives compile: the traits are empty markers and the derive macros
//! (in `serde_derive`) expand to marker impls.

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {}
impl<'de, T: Deserialize<'de>, S> Deserialize<'de> for std::collections::HashSet<T, S> {}
