//! Offline stand-in for `serde_json`.
//!
//! Provides a minimal JSON `Value` tree with compact `Display`
//! rendering and a recursive-descent [`Value::parse`], which is what
//! rootcast's sweep checkpoint manifest reads and writes. The vendored
//! `serde` derives are vacuous markers, so there is no `to_string` /
//! `from_str` over arbitrary types — callers build and walk `Value`
//! trees by hand.
//!
//! Caveat: numbers are `f64`, so integers above 2^53 do not round-trip
//! through `Number` — encode 64-bit hashes and seeds as strings.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Parse a JSON document. Returns `None` on any syntax error or
    /// trailing garbage — the caller treats the document as absent.
    pub fn parse(s: &str) -> Option<Value> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number; fails on fractional values and values
    /// outside `u64` (including anything past f64's 2^53 exactness).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, lit: &str) -> Option<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Value> {
    skip_ws(b, pos);
    match b.get(*pos)? {
        b'n' => eat(b, pos, "null").map(|()| Value::Null),
        b't' => eat(b, pos, "true").map(|()| Value::Bool(true)),
        b'f' => eat(b, pos, "false").map(|()| Value::Bool(false)),
        b'"' => parse_string(b, pos).map(Value::String),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Value::Array(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos)? != &b':' {
                    return None;
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Value::Object(map));
                    }
                    _ => return None,
                }
            }
        }
        _ => parse_number(b, pos).map(Value::Number),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos)? != &b'"' {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        // Surrogates (only reachable via escapes of
                        // astral-plane chars, which Display never
                        // emits) are rejected rather than paired.
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar, multi-byte sequences whole.
                let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<f64> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&b[start..*pos]).ok()?.parse().ok()
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let mut obj = BTreeMap::new();
        obj.insert("qps".to_string(), Value::Number(35000.0));
        obj.insert("letter".to_string(), Value::String("K".to_string()));
        let v = Value::Object(obj);
        assert_eq!(v.to_string(), r#"{"letter":"K","qps":35000}"#);
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".to_string());
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn display_parse_round_trips() {
        let mut obj = BTreeMap::new();
        obj.insert(
            "label".to_string(),
            Value::String("a=1,b=\"x\"\n".to_string()),
        );
        obj.insert("hash".to_string(), Value::String(u64::MAX.to_string()));
        obj.insert("wall_ms".to_string(), Value::Number(12.75));
        obj.insert("resumed".to_string(), Value::Bool(false));
        obj.insert("none".to_string(), Value::Null);
        obj.insert(
            "counters".to_string(),
            Value::Array(vec![
                Value::Array(vec![
                    Value::String("fluid.windows".into()),
                    Value::Number(3.0),
                ]),
                Value::Array(vec![]),
            ]),
        );
        let v = Value::Object(obj);
        assert_eq!(Value::parse(&v.to_string()), Some(v));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nul",
        ] {
            assert_eq!(Value::parse(bad), None, "should reject {bad:?}");
        }
        // Whitespace and nesting are fine.
        assert!(Value::parse(" { \"a\" : [ 1 , -2.5e3 , true ] } ").is_some());
    }
}
