//! Offline stand-in for `serde_json`.
//!
//! rootcast declares serde_json for future figure/table emission but
//! does not call it anywhere in the workspace yet. This stand-in
//! provides a minimal JSON `Value` plus a `json!`-free surface so the
//! dependency resolves offline; extend it if emission lands.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let mut obj = BTreeMap::new();
        obj.insert("qps".to_string(), Value::Number(35000.0));
        obj.insert("letter".to_string(), Value::String("K".to_string()));
        let v = Value::Object(obj);
        assert_eq!(v.to_string(), r#"{"letter":"K","qps":35000}"#);
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".to_string());
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }
}
