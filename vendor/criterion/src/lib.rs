//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface rootcast's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`/`bench_with_input`,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros — with straightforward
//! wall-clock timing and stderr reporting. No statistics, warm-up
//! phases, or HTML reports; enough to run `cargo bench` and compare
//! medians by eye offline.
//!
//! Two harness extensions beyond plain timing:
//!
//! * `--test` on the command line (upstream criterion's smoke mode, what
//!   `cargo bench -- --test` passes): every benchmark body runs exactly
//!   once with no timing report, so CI can prove bench code still
//!   compiles and runs without paying for samples.
//! * `BENCH_JSON=<path>`: each finished benchmark appends one JSON line
//!   `{"id":…,"median_ns":…,"min_ns":…,"max_ns":…,"samples":…}` to the
//!   file, which `scripts/bench.sh` assembles into the repo-level
//!   benchmark trajectory snapshot.

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Duration, Instant};

/// Smoke mode: run each benchmark once, skip timing entirely.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Append one machine-readable result line when `BENCH_JSON` is set.
fn emit_json(label: &str, samples: &[Duration]) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    // JSON-escape the label defensively; bench ids are plain ASCII today.
    let id: String = label
        .chars()
        .flat_map(|c| c.escape_default())
        .collect::<String>();
    let line = format!(
        "{{\"id\":\"{id}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}\n",
        samples[samples.len() / 2].as_nanos(),
        samples[0].as_nanos(),
        samples[samples.len() - 1].as_nanos(),
        samples.len(),
    );
    match OpenOptions::new().create(true).append(true).open(&path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(line.as_bytes()) {
                eprintln!("criterion stand-in: write to BENCH_JSON {path}: {e}");
            }
        }
        Err(e) => eprintln!("criterion stand-in: open BENCH_JSON {path}: {e}"),
    }
}

/// How `iter_batched` setup outputs are batched. The stand-in runs one
/// measurement per batch element regardless, so this is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Times closures and reports elapsed medians.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Criterion's entry point for configuration in `criterion_group!`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn final_summary(&self) {}
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if test_mode() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        eprintln!("bench {label}: ok (--test mode, 1 run, untimed)");
        return;
    }
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    eprintln!(
        "bench {label}: median {median:?} over {sample_size} samples (min {:?}, max {:?})",
        samples[0],
        samples[samples.len() - 1]
    );
    emit_json(label, &samples);
}

/// Passed to benchmark closures; measures the routine under test.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        drop(out);
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed = start.elapsed();
        drop(out);
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        let start = Instant::now();
        let out = routine(&mut input);
        self.elapsed = start.elapsed();
        drop(out);
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Define a benchmark group runner. Both upstream forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0;
        c.bench_function("smoke", |b| {
            runs += 1;
            b.iter(|| black_box(40 + 2));
        });
        assert_eq!(runs, 2);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::new("n", 7), &7u64, |b, &n| {
            b.iter(|| n * 2);
            total += 7;
        });
        g.finish();
        assert_eq!(total, 14);
    }

    #[test]
    fn iter_batched_passes_setup_output() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.elapsed <= Duration::from_secs(1));
    }
}
