//! Offline stand-in for `rand_chacha`: the ChaCha8 stream cipher used
//! as a deterministic RNG.
//!
//! Implements the original (djb) ChaCha variant with a 64-bit block
//! counter in words 12–13 and a 64-bit stream/nonce in words 14–15 —
//! the same layout `rand_chacha` uses — reduced to 8 rounds. Output is
//! the keystream words in order, which makes streams reproducible,
//! well-specified, and platform-independent.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// ChaCha with 8 rounds, keyed by a 256-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    stream: u64,
    /// Index of the next 64-byte block to generate.
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 = empty.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Select one of 2^64 independent streams under the same key.
    /// Discards any buffered output so draws come from the new stream.
    pub fn set_stream(&mut self, stream: u64) {
        if self.stream != stream {
            self.stream = stream;
            // Unread buffered words belong to the old stream; restart
            // the current block under the new one.
            if self.idx < 16 {
                self.counter = self.counter.wrapping_sub(1);
            }
            self.idx = 16;
        }
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Position the generator at an absolute 64-byte-block boundary.
    pub fn set_word_pos(&mut self, word: u128) {
        self.counter = (word / 16) as u64;
        self.idx = 16;
        let offset = (word % 16) as usize;
        if offset != 0 {
            self.refill();
            self.idx = offset;
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let initial = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(lo) | (u64::from(hi) << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            stream: 0,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::from_seed([1; 32]);
        let mut b = ChaCha8Rng::from_seed([1; 32]);
        b.set_stream(9);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn set_stream_after_draws_restarts_block() {
        let mut a = ChaCha8Rng::from_seed([2; 32]);
        let _ = a.next_u32();
        a.set_stream(5);
        let mut b = ChaCha8Rng::from_seed([2; 32]);
        b.set_stream(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn seed_from_u64_is_stable() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::from_seed([3; 32]);
        let mut b = ChaCha8Rng::from_seed([3; 32]);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..], &w1);
    }
}
