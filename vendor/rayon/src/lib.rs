//! Offline stand-in for `rayon`.
//!
//! Provides genuinely parallel `par_iter`/`par_iter_mut`/`into_par_iter`
//! over slices, vectors, and `usize` ranges, built on `std::thread::scope`.
//! Work is split into contiguous chunks (one per worker) and chunk
//! outputs are merged **in input order**, so `collect` is deterministic
//! regardless of thread scheduling — the property rootcast's engine
//! relies on. Unlike upstream rayon there is no work stealing; chunks
//! are static, which is fine for the uniform per-letter workloads here.

use std::ops::Range;
use std::thread;

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

thread_local! {
    static POOL_THREADS: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Number of worker threads the current scope would use.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|n| n.get()).unwrap_or_else(|| {
        thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            n: self.num_threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// A "pool" that scopes a worker-count override; parallel iterators run
/// inside `install` see its thread count.
#[derive(Debug)]
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(Some(self.n)));
        let out = op();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }

    pub fn current_num_threads(&self) -> usize {
        self.n
    }
}

/// Split `len` items into at most `current_num_threads()` contiguous
/// chunk ranges, in order.
fn chunk_ranges(len: usize) -> Vec<Range<usize>> {
    let workers = current_num_threads().max(1).min(len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// The core contract: apply `f` to every item, chunked across worker
/// threads, returning per-chunk outputs **in input order**.
pub trait ParallelIterator: Sized {
    type Item: Send;

    #[doc(hidden)]
    fn run<R, F>(self, f: F) -> Vec<Vec<R>>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.run(|x| {
            f(x);
        });
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run(|x| x).into_iter().flatten().collect()
    }
}

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn run<R2, G>(self, g: G) -> Vec<Vec<R2>>
    where
        R2: Send,
        G: Fn(R) -> R2 + Sync,
    {
        let f = self.f;
        self.base.run(move |x| g(f(x)))
    }
}

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn run<R, F>(self, f: F) -> Vec<Vec<R>>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        let ranges = chunk_ranges(self.slice.len());
        if ranges.len() <= 1 {
            return vec![self.slice.iter().map(|x| f(x)).collect()];
        }
        let slice = self.slice;
        thread::scope(|s| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| {
                    let f = &f;
                    s.spawn(move || slice[r].iter().map(|x| f(x)).collect::<Vec<R>>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon stand-in worker panicked"))
                .collect()
        })
    }
}

pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;

    fn run<R, F>(self, f: F) -> Vec<Vec<R>>
    where
        R: Send,
        F: Fn(&'a mut T) -> R + Sync,
    {
        let ranges = chunk_ranges(self.slice.len());
        if ranges.len() <= 1 {
            return vec![self.slice.iter_mut().map(|x| f(x)).collect()];
        }
        // Carve the slice into disjoint mutable chunks up front.
        let mut chunks: Vec<&'a mut [T]> = Vec::with_capacity(ranges.len());
        let mut rest = self.slice;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            chunks.push(head);
            rest = tail;
        }
        thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let f = &f;
                    s.spawn(move || chunk.iter_mut().map(|x| f(x)).collect::<Vec<R>>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon stand-in worker panicked"))
                .collect()
        })
    }
}

pub struct ParRange {
    range: Range<usize>,
}

impl ParallelIterator for ParRange {
    type Item = usize;

    fn run<R, F>(self, f: F) -> Vec<Vec<R>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let start = self.range.start;
        let ranges = chunk_ranges(self.range.len());
        if ranges.len() <= 1 {
            return vec![self.range.map(|i| f(i)).collect()];
        }
        thread::scope(|s| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| {
                    let f = &f;
                    s.spawn(move || {
                        (start + r.start..start + r.end)
                            .map(|i| f(i))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon stand-in worker panicked"))
                .collect()
        })
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = ParIterMut<'a, T>;
    fn into_par_iter(self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Iter = ParIterMut<'a, T>;
    fn into_par_iter(self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, S: ?Sized + 'a> IntoParallelRefIterator<'a> for S
where
    &'a S: IntoParallelIterator,
{
    type Item = <&'a S as IntoParallelIterator>::Item;
    type Iter = <&'a S as IntoParallelIterator>::Iter;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, S: ?Sized + 'a> IntoParallelRefMutIterator<'a> for S
where
    &'a mut S: IntoParallelIterator,
{
    type Item = <&'a mut S as IntoParallelIterator>::Item;
    type Iter = <&'a mut S as IntoParallelIterator>::Iter;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_touches_every_item() {
        let mut v = vec![1u32; 513];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn range_fan_out() {
        let squares: Vec<usize> = (0..13).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 13);
        assert_eq!(squares[12], 144);
    }

    #[test]
    fn single_thread_pool_matches_parallel_output() {
        let input: Vec<u64> = (0..777).collect();
        let par: Vec<u64> = input.par_iter().map(|x| x * 3 + 1).collect();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let seq: Vec<u64> = pool.install(|| input.par_iter().map(|x| x * 3 + 1).collect());
        assert_eq!(par, seq);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [42u8];
        let out: Vec<u8> = one.par_iter().map(|x| *x).collect();
        assert_eq!(out, vec![42]);
    }
}
