#!/usr/bin/env bash
# Fail the build if non-test `unwrap()` / `expect()` use creeps back
# into the layers that were converted to typed errors. Lines inside a
# file's trailing `#[cfg(test)]` module do not count: tests may unwrap
# freely.
#
# The per-directory baselines below are the post-conversion counts.
# Lowering a baseline after removing panicking calls is encouraged;
# raising one needs a very good reason in review.
set -euo pipefail
cd "$(dirname "$0")/.."

declare -A UNWRAP_BASELINE=(
  [crates/dns/src]=0
  [crates/atlas/src]=0
  [crates/rssac/src]=0
  [crates/core/src/analysis]=0
  [crates/topology/src]=0
  [crates/attack/src]=0
  [crates/bgp/src]=0
  [crates/anycast/src]=0
)

# `.expect(` baselines: dns and atlas carry a handful of provably
# infallible expects (writes into Vec/String buffers and the like);
# everything else — including the analysis layer, where figure11's
# raster expect used to panic on non-rastered letters — holds at zero.
declare -A EXPECT_BASELINE=(
  [crates/dns/src]=9
  [crates/atlas/src]=4
  [crates/rssac/src]=0
  [crates/core/src/analysis]=0
  [crates/topology/src]=0
  [crates/attack/src]=0
  [crates/bgp/src]=0
  [crates/anycast/src]=0
)

count_nontest() { # dir, pattern
  local dir=$1 pattern=$2 total=0 in_file
  while IFS= read -r file; do
    in_file=$(awk '/#\[cfg\(test\)\]/ { in_test = 1 } !in_test' "$file" \
      | grep -c "$pattern" || true)
    total=$((total + in_file))
  done < <(find "$dir" -name '*.rs')
  echo "$total"
}

status=0
check() { # label, pattern, baseline-map-name
  local label=$1 pattern=$2 count allowed
  declare -n baseline=$3
  for dir in "${!baseline[@]}"; do
    count=$(count_nontest "$dir" "$pattern")
    allowed=${baseline[$dir]}
    if ((count > allowed)); then
      echo "FAIL $dir: $count non-test $label calls (baseline $allowed)" >&2
      status=1
    else
      echo "ok   $dir: $count non-test $label calls (baseline $allowed)"
    fi
  done
}

check "unwrap()" '\.unwrap(' UNWRAP_BASELINE
check "expect()" '\.expect(' EXPECT_BASELINE

if ((status != 0)); then
  echo >&2
  echo "Replace unwrap()/expect() with typed errors (RootcastError and" >&2
  echo "friends) or graceful degradation; see DESIGN.md's fault-model" >&2
  echo "section." >&2
fi
exit "$status"
