#!/usr/bin/env bash
# Fail the build if non-test `unwrap()` use creeps back into the layers
# that were converted to typed errors. Lines inside a file's trailing
# `#[cfg(test)]` module do not count: tests may unwrap freely.
#
# The per-directory baselines below are the post-conversion counts.
# Lowering a baseline after removing unwraps is encouraged; raising one
# needs a very good reason in review.
set -euo pipefail
cd "$(dirname "$0")/.."

declare -A BASELINE=(
  [crates/dns/src]=0
  [crates/atlas/src]=0
  [crates/rssac/src]=0
  [crates/core/src/analysis]=0
  [crates/topology/src]=0
  [crates/attack/src]=0
  [crates/bgp/src]=0
  [crates/anycast/src]=0
)

status=0
for dir in "${!BASELINE[@]}"; do
  count=0
  while IFS= read -r file; do
    in_file=$(awk '/#\[cfg\(test\)\]/ { in_test = 1 } !in_test' "$file" \
      | grep -c '\.unwrap(' || true)
    count=$((count + in_file))
  done < <(find "$dir" -name '*.rs')
  allowed=${BASELINE[$dir]}
  if ((count > allowed)); then
    echo "FAIL $dir: $count non-test unwrap() calls (baseline $allowed)" >&2
    status=1
  else
    echo "ok   $dir: $count non-test unwrap() calls (baseline $allowed)"
  fi
done

if ((status != 0)); then
  echo >&2
  echo "Replace unwrap() with typed errors (RootcastError and friends)" >&2
  echo "or graceful degradation; see DESIGN.md's fault-model section." >&2
fi
exit "$status"
