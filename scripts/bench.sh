#!/usr/bin/env bash
# Benchmark trajectory harness.
#
# Runs every criterion suite in crates/bench with the fixed sample
# budget each group pins (10 samples for whole-scenario runs and
# sweeps, 20 for kernels and figure regeneration) and assembles a
# machine-readable snapshot, BENCH_PR5.json, at the repo root:
#
#   {
#     "baseline": { "<bench id>": {median_ns, min_ns, max_ns, samples} },
#     "current":  { ... same shape, this run ... },
#     "speedup":  { "<bench id>": baseline_median / current_median }
#   }
#
# The "baseline" block is sticky: when BENCH_PR5.json already exists its
# baseline is carried forward unchanged, so the committed pre-PR numbers
# stay the fixed reference point and "speedup" always reads as
# improvement-over-baseline. A fresh file seeds its baseline from the
# previous snapshot's "current" block (BENCH_PR3.json) where bench ids
# overlap, so the trajectory stays comparable across PRs. Delete the
# file (or the block) to re-freeze.
#
# Usage: scripts/bench.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_PR5.json
PREV=BENCH_PR3.json
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

for bench in kernels simulation figures ablations sweep; do
    BENCH_JSON="$TMP" cargo bench -p rootcast-bench --bench "$bench"
done

current=$(jq -s 'map({(.id): {median_ns, min_ns, max_ns, samples}}) | add' "$TMP")
if [ -f "$OUT" ]; then
    baseline=$(jq '.baseline' "$OUT")
elif [ -f "$PREV" ]; then
    # New snapshot file: freeze this run as the baseline, but keep the
    # previous PR's measurements for every bench id that still exists.
    baseline=$(jq --argjson current "$current" '.current as $prev
        | $current | with_entries(.value = ($prev[.key] // .value))' "$PREV")
else
    baseline=$current
fi
jq -n --argjson baseline "$baseline" --argjson current "$current" '{
    baseline: $baseline,
    current: $current,
    speedup: (
        $current | to_entries | map(
            select($baseline[.key] != null and .value.median_ns > 0) |
            {(.key): (($baseline[.key].median_ns / .value.median_ns * 100 | round) / 100)}
        ) | add
    )
}' > "$OUT"
echo "wrote $OUT"
