#!/usr/bin/env bash
# Export and validate a chrome://tracing profile of the small scenario.
#
# Runs the `trace_export` example (tracing enabled, profiler attached),
# then validates the emitted trace-event JSON:
#   1. it parses as a JSON array of objects,
#   2. timestamps are monotonically non-decreasing (chrome://tracing
#      requires sorted events),
#   3. every duration ("B") begin has a matching end ("E") with the same
#      name, and "X" complete events carry a non-negative `dur`.
#
# Usage: scripts/trace.sh [output.json]   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-trace_events.json}

cargo run --release -q --example trace_export -- --small --out "$OUT"

echo "validating $OUT ..."

# 1. Parses as a non-empty array of objects.
jq -e 'type == "array" and length > 0 and all(.[]; type == "object")' \
    "$OUT" > /dev/null || { echo "FAIL: not a JSON array of objects" >&2; exit 1; }

# 2. Timestamps sorted ascending.
jq -e '[.[].ts] as $ts | $ts == ($ts | sort)' "$OUT" > /dev/null \
    || { echo "FAIL: timestamps not monotonically non-decreasing" >&2; exit 1; }

# 3. Balanced B/E pairs and well-formed X events.
jq -e '([.[] | select(.ph == "B") | .name] | sort) ==
       ([.[] | select(.ph == "E") | .name] | sort)' "$OUT" > /dev/null \
    || { echo "FAIL: unbalanced B/E phase events" >&2; exit 1; }
jq -e 'all(.[] | select(.ph == "X"); .dur >= 0 and (.args.sim_time_s != null))' \
    "$OUT" > /dev/null \
    || { echo "FAIL: malformed X (complete) events" >&2; exit 1; }

n_events=$(jq 'length' "$OUT")
n_ticks=$(jq '[.[] | select(.ph == "X")] | length' "$OUT")
echo "ok: $n_events events ($n_ticks subsystem ticks), sorted and balanced"
echo "open $OUT at chrome://tracing or https://ui.perfetto.dev"
